//! Time-travel equivalence battery: every query answered through the
//! persisted checkpoint index must be byte-identical to the same slice
//! of a from-scratch serial replay — the index bounds seek latency,
//! never changes answers.
//!
//! Covers the full workload suite across every chunk-log encoding
//! round-trip, a seeded random sweep of seek targets (including the
//! boundary positions and out-of-range targets), and a SplitMix64
//! mutation sweep over the `checkpoints.qrc` bytes proving corrupt
//! indexes are structured errors that silently degrade to from-scratch
//! replay.

use qr_common::SplitMix64;
use quickrec::workloads::{find, suite, Scale};
use quickrec::{
    record, CheckpointIndex, Encoding, Program, QueryEngine, Recording, RecordingConfig,
    ReplayQuery, ThreadId,
};

const THREADS: usize = 3;

fn recorded(name: &str) -> (Program, Recording) {
    let spec = find(name).expect("suite workload");
    let program = (spec.build)(THREADS, Scale::Test).expect("builds");
    let recording = record(program.clone(), RecordingConfig::with_cores(THREADS)).expect("records");
    (program, recording)
}

/// Round-trips a recording through its serialized parts, as it would
/// arrive from the store or over the wire.
fn reloaded(recording: &Recording, encoding: Encoding) -> Recording {
    Recording::from_parts(&recording.to_parts(encoding)).expect("parts decode")
}

/// The query mix exercised against every recording: chunk ranges,
/// thread slices, instruction windows, the pre-divergence tail, and
/// reverse steps, sized from the recording itself.
fn query_mix(recording: &Recording, timeline_len: u64) -> Vec<ReplayQuery> {
    let chunks = recording.chunks.len() as u64;
    vec![
        ReplayQuery::Range { start: 0, end: chunks.max(1) / 2 },
        ReplayQuery::Range { start: chunks / 3, end: chunks },
        ReplayQuery::Thread { tid: ThreadId(0) },
        ReplayQuery::Thread { tid: ThreadId(1) },
        ReplayQuery::Window { start: recording.instructions / 4, end: recording.instructions / 2 },
        ReplayQuery::BeforeDivergence { instructions: 64 },
        ReplayQuery::ReverseStep { events: 1 },
        ReplayQuery::ReverseStep { events: timeline_len / 2 },
    ]
}

#[test]
fn every_query_matches_scratch_replay_across_workloads_and_encodings() {
    for spec in suite() {
        let (program, original) = recorded(spec.name);
        for encoding in Encoding::ALL {
            let recording = reloaded(&original, encoding);
            let index = CheckpointIndex::build(&program, &recording, 16).expect("index builds");
            let persisted = index.to_bytes();

            let scratch = QueryEngine::new(&program, &recording).expect("engine");
            let mut indexed = QueryEngine::new(&program, &recording).expect("engine");
            assert!(
                indexed.attach_index_bytes(&persisted),
                "{}/{}: a freshly persisted index must attach",
                spec.name,
                encoding.name()
            );
            assert!(indexed.has_index() && !scratch.has_index());

            for query in query_mix(&recording, scratch.timeline_len() as u64) {
                let context = format!("{}/{}/{query}", spec.name, encoding.name());
                let from_scratch =
                    scratch.execute(query, None).unwrap_or_else(|e| panic!("{context}: {e}"));
                let from_index =
                    indexed.execute(query, None).unwrap_or_else(|e| panic!("{context}: {e}"));
                assert_eq!(
                    from_index.to_bytes(),
                    from_scratch.to_bytes(),
                    "indexed answer diverged from the from-scratch answer: {context}"
                );
            }
        }
    }
}

#[test]
fn query_results_match_slices_of_a_full_serial_replay() {
    // Cross-check the engine against the slice computed by hand: step a
    // plain replayer to the span boundaries and diff its console and
    // instruction counters.
    let (program, recording) = recorded("lu");
    let index = CheckpointIndex::build(&program, &recording, 8).expect("index builds");
    let mut engine = QueryEngine::new(&program, &recording).expect("engine");
    assert!(engine.attach_index_bytes(&index.to_bytes()));

    let at = |position: u64| {
        let mut r = qr_replay::Replayer::new(&program, &recording).unwrap();
        while (r.position() as u64) < position && r.step_timeline().unwrap() {}
        (r.console_so_far().to_vec(), r.instructions_so_far(), r.partial_fingerprint())
    };

    let len = engine.timeline_len() as u64;
    for query in query_mix(&recording, len) {
        let result = engine.execute(query, None).unwrap_or_else(|e| panic!("{query}: {e}"));
        let (console_start, instructions_start, _) = at(result.start);
        let (console_end, instructions_end, fingerprint_end) = at(result.end);
        assert_eq!(
            result.console,
            console_end[console_start.len()..].to_vec(),
            "{query}: console slice"
        );
        assert_eq!(
            result.instructions,
            instructions_end - instructions_start,
            "{query}: instruction delta"
        );
        assert_eq!(result.fingerprint, fingerprint_end, "{query}: end-of-span fingerprint");
    }
}

#[test]
fn seeded_seek_sweep_agrees_with_scratch_and_rejects_out_of_range() {
    let (program, recording) = recorded("lu");
    let index = CheckpointIndex::build(&program, &recording, 8).expect("index builds");
    let scratch = QueryEngine::new(&program, &recording).expect("engine");
    let mut indexed = QueryEngine::new(&program, &recording).expect("engine");
    assert!(indexed.attach_index_bytes(&index.to_bytes()));

    let len = scratch.timeline_len();
    let mut rng = SplitMix64::new(0xC0FFEE_5EED);
    let mut targets = vec![0, len / 3, len - 1, len];
    targets.extend((0..24).map(|_| rng.below(len as u64 + 1) as usize));
    for target in targets {
        let a = indexed.seek(target).unwrap_or_else(|e| panic!("indexed seek {target}: {e}"));
        let b = scratch.seek(target).unwrap_or_else(|e| panic!("scratch seek {target}: {e}"));
        assert_eq!(a.position(), target, "seek lands exactly on the target");
        assert_eq!(a.position(), b.position());
        assert_eq!(a.partial_fingerprint(), b.partial_fingerprint(), "target {target}");
        assert_eq!(a.console_so_far(), b.console_so_far(), "target {target}");
        assert_eq!(a.instructions_so_far(), b.instructions_so_far(), "target {target}");
    }

    // Out-of-range targets are structured errors, not panics, on both
    // engines; so are queries over spans that do not exist.
    for bad in [len + 1, len + 1000, usize::MAX] {
        for engine in [&indexed, &scratch] {
            match engine.seek(bad) {
                Err(quickrec::QrError::InvalidConfig(msg)) => {
                    assert!(msg.contains("beyond"), "{msg}")
                }
                other => panic!("seek {bad}: expected InvalidConfig, got {other:?}"),
            }
        }
    }
    assert!(matches!(
        indexed.execute(ReplayQuery::Thread { tid: ThreadId(200) }, None),
        Err(quickrec::QrError::InvalidConfig(_))
    ));
}

/// One deterministic mutation of `bytes`, chosen by `rng`: truncate,
/// flip one bit, or swap two bytes (a reorder). Retries until the
/// result actually differs (a swap can pick two equal bytes).
fn mutate(bytes: &[u8], rng: &mut SplitMix64) -> Vec<u8> {
    loop {
        let mut out = bytes.to_vec();
        match rng.below(3) {
            0 => {
                let keep = rng.below(out.len() as u64) as usize;
                out.truncate(keep);
            }
            1 => {
                let at = rng.below(out.len() as u64) as usize;
                out[at] ^= 1 << rng.below(8);
            }
            _ => {
                let a = rng.below(out.len() as u64) as usize;
                let b = rng.below(out.len() as u64) as usize;
                out.swap(a, b);
            }
        }
        if out != bytes {
            return out;
        }
    }
}

#[test]
fn mutated_indexes_are_structured_errors_and_degrade_to_scratch() {
    let was_enabled = qr_obs::enabled();
    qr_obs::set_enabled(true);
    let (program, recording) = recorded("fft");
    let pristine = CheckpointIndex::build(&program, &recording, 8).expect("index builds");
    let bytes = pristine.to_bytes();
    let scratch = QueryEngine::new(&program, &recording).expect("engine");
    let baseline = scratch
        .execute(ReplayQuery::ReverseStep { events: 3 }, None)
        .expect("baseline query")
        .to_bytes();

    let corrupt_before = index_corrupt_count();
    let mut rng = SplitMix64::new(0xBAD_1DE5);
    let mut degraded = 0u64;
    for round in 0..48 {
        let mutated = mutate(&bytes, &mut rng);
        // Decoding damage is always a structured error, never a panic.
        match CheckpointIndex::from_bytes(&mutated) {
            Ok(_) => panic!("round {round}: a mutated index decoded cleanly"),
            Err(e @ (quickrec::QrError::Corrupt { .. } | quickrec::QrError::Unsupported(_))) => {
                let _ = e.to_string(); // error formatting is panic-free too
            }
            Err(other) => panic!("round {round}: unstructured error {other:?}"),
        }
        // Attaching the damaged sidecar silently degrades: the engine
        // reports no index and answers queries bit-for-bit like scratch.
        let mut engine = QueryEngine::new(&program, &recording).expect("engine");
        assert!(!engine.attach_index_bytes(&mutated), "round {round}: damaged index attached");
        assert!(!engine.has_index());
        degraded += 1;
        if round % 12 == 0 {
            let answer = engine
                .execute(ReplayQuery::ReverseStep { events: 3 }, None)
                .unwrap_or_else(|e| panic!("round {round}: degraded query failed: {e}"));
            assert_eq!(answer.to_bytes(), baseline, "round {round}");
        }
    }
    assert!(degraded >= 40, "the sweep must actually exercise mutations");
    let corrupt_after = index_corrupt_count();
    qr_obs::set_enabled(was_enabled);
    assert!(
        corrupt_after >= corrupt_before + degraded,
        "every rejected attach increments qr_replay_index_corrupt_total \
         ({corrupt_before} -> {corrupt_after}, {degraded} rejects)"
    );
}

/// Current value of the `qr_replay_index_corrupt_total` counter, read
/// from the registry's text exposition.
fn index_corrupt_count() -> u64 {
    qr_obs::global()
        .render()
        .lines()
        .find(|l| l.starts_with("qr_replay_index_corrupt_total"))
        .and_then(|l| l.rsplit(' ').next()?.parse().ok())
        .unwrap_or(0)
}
