//! Tamper matrix: perturbing any dimension of a recording must make
//! replay *fail loudly* (divergence error or verification failure) —
//! never silently produce a different execution that verifies.

use qr_common::Cycle;
use quickrec::{record, ChunkPacket, RecordingConfig};

fn recorded() -> (quickrec::Program, quickrec::Recording) {
    let spec = quickrec::workloads::find("barnes").expect("barnes exists");
    let program = (spec.build)(3, quickrec::workloads::Scale::Test).expect("builds");
    let recording = record(program.clone(), RecordingConfig::with_cores(3)).expect("records");
    (program, recording)
}

fn assert_rejected(program: &quickrec::Program, tampered: quickrec::Recording, what: &str) {
    assert!(
        qr_replay::replay_and_verify(program, &tampered).is_err(),
        "tampering with {what} must not verify"
    );
}

fn with_packets(
    recording: &quickrec::Recording,
    edit: impl FnOnce(&mut Vec<ChunkPacket>),
) -> quickrec::Recording {
    let mut packets: Vec<ChunkPacket> = recording.chunks.packets().to_vec();
    edit(&mut packets);
    let mut out = recording.clone();
    out.chunks = packets.into_iter().collect();
    out
}

#[test]
fn inflated_chunk_icount_is_rejected() {
    let (program, recording) = recorded();
    let mid = recording.chunks.len() / 2;
    assert_rejected(
        &program,
        with_packets(&recording, |p| p[mid].icount += 1),
        "a chunk's instruction count (+1)",
    );
}

#[test]
fn deflated_chunk_icount_is_rejected() {
    let (program, recording) = recorded();
    let mid = recording.chunks.len() / 2;
    assert_rejected(
        &program,
        with_packets(&recording, |p| p[mid].icount = p[mid].icount.saturating_sub(1).max(1)),
        "a chunk's instruction count (-1)",
    );
}

#[test]
fn dropped_chunk_is_rejected() {
    let (program, recording) = recorded();
    let mid = recording.chunks.len() / 2;
    assert_rejected(&program, with_packets(&recording, |p| {
        p.remove(mid);
    }), "a missing chunk");
}

#[test]
fn swapped_timestamps_are_rejected() {
    let (program, recording) = recorded();
    // Swap the timestamps of two adjacent same-thread chunks: the
    // schedule reorders and replay must notice.
    let schedule = recording.chunks.replay_schedule().unwrap();
    let pair = schedule
        .windows(2)
        .find(|w| w[0].tid == w[1].tid)
        .map(|w| (w[0].timestamp, w[1].timestamp))
        .expect("some thread has consecutive chunks");
    let tampered = with_packets(&recording, |p| {
        for packet in p.iter_mut() {
            if packet.timestamp == pair.0 {
                packet.timestamp = pair.1;
            } else if packet.timestamp == pair.1 {
                packet.timestamp = pair.0;
            }
        }
    });
    assert_rejected(&program, tampered, "chunk timestamp order");
}

#[test]
fn corrupted_rsw_is_rejected() {
    let (program, recording) = recorded();
    assert_rejected(
        &program,
        with_packets(&recording, |p| p[0].rsw = p[0].rsw.wrapping_add(3)),
        "the reordered-store-window field",
    );
}

#[test]
fn wrong_thread_attribution_is_rejected() {
    let (program, recording) = recorded();
    let other = qr_common::ThreadId(1);
    let mid = recording.chunks.len() / 2;
    let tampered = with_packets(&recording, |p| {
        if p[mid].tid == other {
            p[mid].tid = qr_common::ThreadId(0);
        } else {
            p[mid].tid = other;
        }
    });
    assert_rejected(&program, tampered, "a chunk's thread id");
}

#[test]
fn duplicate_timestamp_is_rejected() {
    let (program, recording) = recorded();
    let tampered = with_packets(&recording, |p| {
        let ts = p[0].timestamp;
        p[1].timestamp = ts;
    });
    assert_rejected(&program, tampered, "duplicate timestamps");
}

#[test]
fn tampered_syscall_result_is_rejected() {
    // A program whose exit code IS a syscall result: tampering with the
    // logged result must change the replayed outcome and fail
    // verification. (Tampering with an architecturally *dead* result —
    // e.g. an ignored join return value — is legitimately unobservable.)
    use qr_isa::{abi, Asm, Reg};
    let mut a = Asm::new();
    a.movi_u(Reg::R0, abi::SYS_TIME);
    a.syscall();
    a.mov(Reg::R1, Reg::R0);
    a.movi_u(Reg::R0, abi::SYS_EXIT);
    a.syscall();
    let program = a.finish().unwrap();
    let recording = record(program.clone(), RecordingConfig::with_cores(1)).unwrap();
    let mut log = quickrec::InputLog::new();
    let mut flipped = false;
    for ev in recording.inputs.events() {
        match ev {
            quickrec::InputEvent::Syscall { ts, record } => {
                let mut record = record.clone();
                if !flipped && record.number == abi::SYS_TIME {
                    record.result ^= 0x55;
                    flipped = true;
                }
                log.push_event(quickrec::InputEvent::Syscall { ts: *ts, record });
            }
            other => log.push_event(other.clone()),
        }
    }
    assert!(flipped, "the recording contains a time record");
    let mut tampered = recording.clone();
    tampered.inputs = log;
    assert_rejected(&program, tampered, "a live syscall result");
}

#[test]
fn missing_nondet_values_are_rejected() {
    // A program that uses rdtsc: dropping its logged value must fail.
    use qr_isa::{abi, Asm, Reg};
    let mut a = Asm::new();
    a.rdtsc(Reg::R4);
    a.movi_u(Reg::R0, abi::SYS_EXIT);
    a.mov(Reg::R1, Reg::R4);
    a.syscall();
    let program = a.finish().unwrap();
    let recording = record(program.clone(), RecordingConfig::with_cores(1)).unwrap();
    let mut tampered = recording.clone();
    tampered.inputs = quickrec::InputLog::new();
    // Keep the syscall events, drop only the nondet queue.
    for ev in recording.inputs.events() {
        tampered.inputs.push_event(ev.clone());
    }
    assert!(
        qr_replay::replay(&program, &tampered).is_err(),
        "replay must fail when nondet values are missing"
    );
}

#[test]
fn mismatched_fingerprint_fails_verification() {
    let (program, recording) = recorded();
    let mut tampered = recording.clone();
    tampered.fingerprint ^= 1;
    assert!(qr_replay::replay_and_verify(&program, &tampered).is_err());
}

#[test]
fn timestamps_in_logs_survive_cycle_wrap_arithmetic() {
    // Shifting all timestamps by a constant preserves order — replay
    // still works (the absolute value never matters, only the order).
    let (program, recording) = recorded();
    let shifted = with_packets(&recording, |p| {
        for packet in p.iter_mut() {
            packet.timestamp = Cycle(packet.timestamp.0 + 1_000_000);
        }
    });
    // The input-event timestamps must shift equally, or ordering against
    // syscalls breaks; rebuild them too.
    let mut inputs = quickrec::InputLog::new();
    for ev in recording.inputs.events() {
        match ev {
            quickrec::InputEvent::Syscall { ts, record } => {
                inputs.push_event(quickrec::InputEvent::Syscall {
                    ts: Cycle(ts.0 + 1_000_000),
                    record: record.clone(),
                });
            }
            quickrec::InputEvent::Signal { ts, tid } => {
                inputs.push_event(quickrec::InputEvent::Signal {
                    ts: Cycle(ts.0 + 1_000_000),
                    tid: *tid,
                });
            }
        }
    }
    let mut shifted = shifted;
    shifted.inputs = inputs;
    // Nondet queues are per-thread and unshifted.
    for (tid, values) in quickrec::workloads::suite()
        .iter()
        .flat_map(|_| std::iter::empty::<(qr_common::ThreadId, Vec<u8>)>())
    {
        let _ = (tid, values);
    }
    // (nondet values live in the same InputLog; copy them over)
    let mut final_inputs = shifted.inputs.clone();
    for tid in 0..8u32 {
        for &(kind, value) in recording.inputs.nondet_for(qr_common::ThreadId(tid)) {
            final_inputs.push_nondet(qr_common::ThreadId(tid), kind, value);
        }
    }
    shifted.inputs = final_inputs;
    qr_replay::replay_and_verify(&program, &shifted)
        .expect("uniformly shifted timestamps preserve the schedule");
}
