//! Record/replay across the machine-configuration matrix: every
//! combination must stay self-validating and replay-exact, because none
//! of these knobs is allowed to affect *correctness* — only logs and
//! timing.

use quickrec::{record, replay_and_verify, RecordingConfig, TsoMode};

fn workload() -> quickrec::Program {
    let spec = quickrec::workloads::find("radix").expect("radix exists");
    (spec.build)(4, quickrec::workloads::Scale::Test).expect("builds")
}

fn expected() -> u32 {
    let spec = quickrec::workloads::find("radix").expect("radix exists");
    (spec.expected)(4, quickrec::workloads::Scale::Test)
}

fn check(cfg: RecordingConfig, label: &str) {
    let program = workload();
    let recording = record(program.clone(), cfg).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(recording.exit_code, expected(), "{label}: wrong checksum");
    replay_and_verify(&program, &recording).unwrap_or_else(|e| panic!("{label}: {e}"));
}

#[test]
fn core_counts() {
    for cores in 1..=4 {
        check(RecordingConfig::with_cores(cores), &format!("cores={cores}"));
    }
}

#[test]
fn tso_modes_and_drain_intervals() {
    for mode in [TsoMode::DrainAtChunk, TsoMode::Rsw] {
        for interval in [1u64, 2, 8, 32] {
            let mut cfg = RecordingConfig::with_cores(2);
            cfg.cpu.mem.tso_mode = mode;
            cfg.cpu.drain_interval = interval;
            check(cfg, &format!("{mode:?}/interval={interval}"));
        }
    }
}

#[test]
fn store_buffer_sizes() {
    for entries in [1usize, 2, 16] {
        let mut cfg = RecordingConfig::with_cores(2);
        cfg.cpu.mem.store_buffer_entries = entries;
        check(cfg, &format!("sb={entries}"));
    }
}

#[test]
fn tiny_caches_force_evictions() {
    let mut cfg = RecordingConfig::with_cores(2);
    cfg.cpu.mem.l1_sets = 2;
    cfg.cpu.mem.l1_ways = 1;
    check(cfg, "l1=2x1");
}

#[test]
fn tiny_signatures_force_saturation_terminations() {
    let mut cfg = RecordingConfig::with_cores(4);
    cfg.mrr.read_sig_bits = 64;
    cfg.mrr.write_sig_bits = 64;
    cfg.mrr.sig_saturation_permille = 300;
    let program = workload();
    let recording = record(program.clone(), cfg).unwrap();
    let sat = recording.recorder_stats.chunks_by_reason
        [quickrec::TerminationReason::SigSaturation.code() as usize];
    assert!(sat > 0, "64-bit signatures must saturate");
    replay_and_verify(&program, &recording).unwrap();
}

#[test]
fn tiny_chunk_limit_forces_ic_overflow() {
    let mut cfg = RecordingConfig::with_cores(2);
    cfg.mrr.max_chunk_icount = 50;
    let program = workload();
    let recording = record(program.clone(), cfg).unwrap();
    let ovf = recording.recorder_stats.chunks_by_reason
        [quickrec::TerminationReason::IcOverflow.code() as usize];
    assert!(ovf > 0, "a 50-instruction cap must overflow");
    replay_and_verify(&program, &recording).unwrap();
}

#[test]
fn aggressive_preemption() {
    for quantum in [500u64, 2_000, 10_000] {
        let mut cfg = RecordingConfig::with_cores(2);
        cfg.os.quantum_cycles = quantum;
        check(cfg, &format!("quantum={quantum}"));
    }
}

#[test]
fn tiny_cbuf_and_cmem_still_record_correctly() {
    let mut cfg = RecordingConfig::with_cores(4);
    cfg.mrr.cbuf_entries = 1;
    cfg.mrr.cbuf_drain_cycles = 256;
    cfg.mrr.cmem_capacity = 256;
    cfg.mrr.cmem_interrupt_threshold = 64;
    let program = workload();
    let recording = record(program.clone(), cfg).unwrap();
    assert!(recording.overhead.hw_stall_cycles > 0, "a 1-entry CBUF must stall");
    replay_and_verify(&program, &recording).unwrap();
}

#[test]
fn exact_set_tracking_does_not_change_behaviour() {
    let mut with = RecordingConfig::with_cores(2);
    with.mrr.track_exact_sets = true;
    let a = record(workload(), with).unwrap();
    let b = record(workload(), RecordingConfig::with_cores(2)).unwrap();
    assert_eq!(a.chunks, b.chunks, "exact tracking is observation-only");
    assert_eq!(a.fingerprint, b.fingerprint);
}
