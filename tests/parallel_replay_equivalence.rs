//! Parallel replay must be indistinguishable from serial replay.
//!
//! The parallel replayer relaxes the recorded total order to a
//! conflict-dependency DAG, so its one correctness obligation is
//! producing the exact architectural outcome the serial replayer
//! produces: same memory image and exit codes (both folded into the
//! fingerprint), same console bytes, same replayed-event counts. This
//! battery checks that for every suite workload, across every chunk-log
//! encoding round-trip and several worker counts.

use quickrec::workloads::{suite, Scale};
use quickrec::{record, replay, ChunkLog, Encoding, ParallelReplayer, RecordingConfig, ReplayOutcome};

/// Asserts the parallel outcome matches serial byte for byte (cycles are
/// exempt: parallel reports a simulated makespan, not a serialization).
fn assert_equivalent(parallel: &ReplayOutcome, serial: &ReplayOutcome, context: &str) {
    assert_eq!(parallel.fingerprint, serial.fingerprint, "fingerprint diverged: {context}");
    assert_eq!(parallel.console, serial.console, "console diverged: {context}");
    assert_eq!(parallel.exit_code, serial.exit_code, "exit code diverged: {context}");
    assert_eq!(parallel.instructions, serial.instructions, "instructions diverged: {context}");
    assert_eq!(parallel.chunks_replayed, serial.chunks_replayed, "chunk count diverged: {context}");
    assert_eq!(parallel.inputs_injected, serial.inputs_injected, "input count diverged: {context}");
}

#[test]
fn every_workload_encoding_and_job_count_matches_serial() {
    for spec in suite() {
        let program = (spec.build)(3, Scale::Test).expect("workload builds");
        let recording =
            record(program.clone(), RecordingConfig::with_cores(4)).expect("workload records");
        let serial = replay(&program, &recording).expect("serial replay");
        for encoding in Encoding::ALL {
            // Round-trip the chunk log through this encoding, as a
            // stored recording would arrive from disk.
            let bytes = recording.chunks.to_bytes(encoding);
            let mut reloaded = recording.clone();
            reloaded.chunks = ChunkLog::from_bytes(&bytes).expect("chunk log decodes");
            for jobs in [1usize, 2, 4] {
                let context = format!("{} / {encoding:?} / {jobs} jobs", spec.name);
                let replayer =
                    ParallelReplayer::new(&program, &reloaded, jobs).expect("replayer builds");
                assert_eq!(
                    replayer.fallback_reason(),
                    None,
                    "fresh recordings must carry full footprints: {context}"
                );
                let outcome = replayer.run().unwrap_or_else(|e| panic!("{context}: {e}"));
                assert_equivalent(&outcome, &serial, &context);
                outcome.verify_against(&recording).expect("verifies against the recording");
            }
        }
    }
}

#[test]
fn rsw_mode_suite_recordings_match_serial_in_parallel() {
    // Reordered-store-window recordings leave stores in flight across
    // chunk boundaries; each lane owns its thread's store buffer, so the
    // drains must land identically. One pass over the suite at 4 jobs.
    for spec in suite() {
        let program = (spec.build)(3, Scale::Test).expect("workload builds");
        let mut cfg = RecordingConfig::with_cores(4);
        cfg.cpu.mem.tso_mode = quickrec::TsoMode::Rsw;
        cfg.cpu.drain_interval = 12;
        let recording = record(program.clone(), cfg).expect("workload records");
        let serial = replay(&program, &recording).expect("serial replay");
        let parallel = quickrec::replay_parallel_and_verify(&program, &recording, 4)
            .unwrap_or_else(|e| panic!("{} (rsw): {e}", spec.name));
        assert_equivalent(&parallel, &serial, &format!("{} (rsw)", spec.name));
    }
}
