//! CLI contract of the `quickrec` binary: bad invocations exit nonzero
//! with usage, `verify` distinguishes intact from corrupted recordings,
//! and `replay --salvage` recovers a prefix from a damaged log.

use std::path::PathBuf;
use std::process::{Command, Output};

/// A two-syscall program (write + exit) so the recording has console
/// output, input events and chunks on both threads of a 2-core run.
const PROGRAM: &str = "
.entry main
.text
main:
    movi r0, 2        ; SYS_WRITE
    movi r1, msg
    movi r2, 6
    syscall
    movi r0, 1        ; SYS_EXIT
    movi r1, 0
    syscall
.data
msg: .byte 0x68 0x65 0x6c 0x6c 0x6f 0x0a
";

fn quickrec(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_quickrec")).args(args).output().expect("spawn quickrec")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quickrec-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Records PROGRAM through the CLI, returning (program path, log dir).
fn recorded(dir: &std::path::Path) -> (String, String) {
    let prog = dir.join("prog.pasm");
    std::fs::write(&prog, PROGRAM).expect("write program");
    let logs = dir.join("rec");
    let prog = prog.to_str().unwrap().to_string();
    let logs = logs.to_str().unwrap().to_string();
    let out = quickrec(&["record", &prog, "-o", &logs, "--cores", "2"]);
    assert!(out.status.success(), "record failed: {}", String::from_utf8_lossy(&out.stderr));
    (prog, logs)
}

#[test]
fn missing_and_bad_args_exit_nonzero_with_usage() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["replay"][..],
        &["replay", "only-one-arg"][..],
        &["verify"][..],
        &["record", "prog.pasm"][..], // missing -o
    ] {
        let out = quickrec(args);
        assert!(!out.status.success(), "args {args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage") || err.contains("needs"), "args {args:?}: {err}");
    }
}

#[test]
fn verify_passes_fresh_recordings_and_fails_corrupted_ones() {
    let dir = scratch("verify");
    let (_prog, logs) = recorded(&dir);

    let out = quickrec(&["verify", &logs]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("chunks.qrl"), "per-file report: {stdout}");
    assert!(stdout.contains("framed v1"), "format reported: {stdout}");

    // One flipped bit in the chunk log must flip the verdict.
    let chunks = dir.join("rec").join("chunks.qrl");
    let mut bytes = std::fs::read(&chunks).expect("read chunk log");
    *bytes.last_mut().unwrap() ^= 0x01;
    std::fs::write(&chunks, &bytes).expect("rewrite chunk log");

    let out = quickrec(&["verify", &logs]);
    assert!(!out.status.success(), "corrupted recording must fail verification");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "fault named per file: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jobs_flag_runs_parallel_replay_and_rejects_conflicting_modes() {
    let dir = scratch("jobs");
    let (prog, logs) = recorded(&dir);

    // Happy path: parallel replay verifies and reports its schedule.
    let out = quickrec(&["replay", &prog, &logs, "--jobs", "2"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verified exact"), "outcome verified: {stdout}");
    assert!(stdout.contains("parallel replay"), "schedule reported: {stdout}");

    // The race detector needs the serial timestamp order; salvage is a
    // serial prefix walk. Both must refuse --jobs, loudly.
    for conflicting in ["--races", "--salvage"] {
        let out = quickrec(&["replay", &prog, &logs, conflicting, "--jobs", "2"]);
        assert!(!out.status.success(), "{conflicting} + --jobs should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--jobs cannot be combined with") && err.contains(conflicting),
            "{conflicting}: {err}"
        );
    }

    // Malformed worker counts are rejected before any replay work.
    for bad in ["0", "none", "-1"] {
        let out = quickrec(&["replay", &prog, &logs, "--jobs", bad]);
        assert!(!out.status.success(), "--jobs {bad} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("bad --jobs value"), "--jobs {bad}: {err}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_handles_directories_mixing_framed_and_legacy_logs() {
    let dir = scratch("mixed");
    let (prog, logs) = recorded(&dir);

    // Rewrite the chunk log in the legacy unframed layout, as a
    // pre-framing recorder would have left it; the other files keep the
    // framed container. One directory, two generations of format.
    let logs_path = PathBuf::from(&logs);
    let recording = quickrec::Recording::load(&logs_path).expect("load recording");
    let legacy = quickrec::Encoding::Raw.encode_stream(recording.chunks.packets());
    std::fs::write(logs_path.join("chunks.qrl"), &legacy).expect("rewrite chunk log");

    // With the format manifest still claiming the original encoding, the
    // mismatch is diagnosed instead of silently accepted.
    let out = quickrec(&["replay", &prog, &logs]);
    assert!(!out.status.success(), "stale format manifest must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("format manifest"), "mismatch diagnosed: {err}");
    // A genuinely old file set has no manifest at all; drop it.
    std::fs::remove_file(logs_path.join("format.qrv")).expect("drop format manifest");

    let out = quickrec(&["verify", &logs]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("legacy"), "legacy format named: {stdout}");
    assert!(stdout.contains("framed v1"), "framed files still reported: {stdout}");

    // The mixed directory still replays — serially and in parallel (the
    // footprint sidecar is framed and intact).
    for extra in [&[][..], &["--jobs", "2"][..]] {
        let mut args = vec!["replay", &prog, &logs];
        args.extend_from_slice(extra);
        let out = quickrec(&args);
        assert!(
            out.status.success(),
            "replay {extra:?} on mixed dir: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("verified exact"), "replay {extra:?}: {stdout}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn migrate_upgrades_legacy_recordings_and_is_idempotent() {
    let dir = scratch("migrate");
    let (prog, logs) = recorded(&dir);
    let logs_path = PathBuf::from(&logs);

    // Downgrade the fresh recording to the v1 legacy shape: bare QRM1
    // meta blob, unframed tag-prefixed logs, no sidecar, no manifest.
    let recording = quickrec::Recording::load(&logs_path).expect("load recording");
    let parts = quickrec::RecordingParts::read(&logs_path).expect("read parts");
    let meta_records =
        qr_common::frame::read(&parts.meta, qr_common::frame::PayloadKind::Meta, "meta")
            .expect("unwrap meta frame");
    std::fs::write(logs_path.join("meta.qrm"), meta_records[0]).unwrap();
    std::fs::write(
        logs_path.join("chunks.qrl"),
        quickrec::Encoding::Delta.encode_stream(recording.chunks.packets()),
    )
    .unwrap();
    std::fs::write(logs_path.join("inputs.qrl"), recording.inputs.to_legacy_bytes()).unwrap();
    std::fs::remove_file(logs_path.join("footprints.qrl")).unwrap();
    std::fs::remove_file(logs_path.join("format.qrv")).unwrap();

    // Migrate upgrades in place and names both generations.
    let out = quickrec(&["migrate", &logs]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("migrated v1 -> v3"), "report: {stdout}");
    assert!(logs_path.join("format.qrv").exists(), "manifest written");

    // The upgraded recording verifies and replays to the same execution.
    assert!(quickrec(&["verify", &logs]).status.success());
    let out = quickrec(&["replay", &prog, &logs]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("verified exact"));

    // Second migrate is a reported no-op that changes no bytes.
    let before: Vec<(String, Vec<u8>)> = {
        let mut files: Vec<_> = std::fs::read_dir(&logs_path)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (e.file_name().into_string().unwrap(), std::fs::read(e.path()).unwrap())
            })
            .collect();
        files.sort();
        files
    };
    let out = quickrec(&["migrate", &logs]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("nothing to do"));
    let mut after: Vec<_> = std::fs::read_dir(&logs_path)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (e.file_name().into_string().unwrap(), std::fs::read(e.path()).unwrap())
        })
        .collect();
    after.sort();
    assert_eq!(after, before, "second migrate modified bytes");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn migrate_rejects_missing_directories_and_corrupt_recordings() {
    let dir = scratch("migrate-bad");

    // Missing directory: one clear diagnosis.
    let missing = dir.join("nope").to_str().unwrap().to_string();
    let out = quickrec(&["migrate", &missing]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not a recording directory"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Corrupt source: refused, and the directory is left untouched.
    let (_prog, logs) = recorded(&dir);
    let logs_path = PathBuf::from(&logs);
    let chunks = logs_path.join("chunks.qrl");
    let mut bytes = std::fs::read(&chunks).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&chunks, &bytes).unwrap();
    let before = std::fs::read(&chunks).unwrap();
    let out = quickrec(&["migrate", &logs]);
    assert!(!out.status.success(), "corrupt recording must not migrate");
    assert_eq!(std::fs::read(&chunks).unwrap(), before, "failed migrate touched the source");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_diagnoses_missing_and_empty_directories_clearly() {
    let dir = scratch("verify-missing");

    // Nonexistent path: one clear line, no per-file OS-error cascade.
    let missing = dir.join("nope").to_str().unwrap().to_string();
    let out = quickrec(&["verify", &missing]);
    assert!(!out.status.success(), "missing dir must fail verification");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not a recording directory"), "clear diagnosis: {err}");
    assert!(err.contains("no such directory"), "cause named: {err}");
    assert!(!err.contains("os error"), "no raw OS errors: {err}");

    // An existing-but-empty directory names the files it expected.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).expect("empty dir");
    let out = quickrec(&["verify", empty.to_str().unwrap()]);
    assert!(!out.status.success(), "empty dir must fail verification");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not a recording directory"), "clear diagnosis: {err}");
    assert!(err.contains("meta.qrm"), "expected files named: {err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_round_trip_submit_fetch_verify_shutdown() {
    let dir = scratch("daemon");
    let socket = dir.join("qd.sock");
    let socket = socket.to_str().unwrap();
    let store = dir.join("store");
    let prog = dir.join("prog.pasm");
    std::fs::write(&prog, PROGRAM).expect("write program");

    let mut server = Command::new(env!("CARGO_BIN_EXE_quickrec"))
        .args(["serve", "--socket", socket, "--store", store.to_str().unwrap(), "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn quickrec serve");

    // The daemon needs a moment to bind; submit retries via the client's
    // own connect loop would be nicer, but a bounded poll keeps the CLI
    // surface honest.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !socket_exists(socket) && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let out = quickrec(&[
        "submit",
        "--socket",
        socket,
        prog.to_str().unwrap(),
        "--cores",
        "2",
        "--name",
        "hello",
    ]);
    assert!(out.status.success(), "submit failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("session 1 done"), "completion reported: {stdout}");

    let out = quickrec(&["jobs", "--socket", socket]);
    assert!(out.status.success(), "jobs failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hello") && stdout.contains("done"), "job listed: {stdout}");

    let fetched = dir.join("fetched");
    let out = quickrec(&["fetch", "--socket", socket, "1", "-o", fetched.to_str().unwrap()]);
    assert!(out.status.success(), "fetch failed: {}", String::from_utf8_lossy(&out.stderr));

    // The fetched directory is a plain recording: verify and replay work
    // on it exactly as on a directly-recorded one.
    let out = quickrec(&["verify", fetched.to_str().unwrap()]);
    assert!(out.status.success(), "verify failed: {}", String::from_utf8_lossy(&out.stderr));
    let out = quickrec(&["replay", prog.to_str().unwrap(), fetched.to_str().unwrap()]);
    assert!(out.status.success(), "replay failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("verified exact"));

    let out = quickrec(&["shutdown", "--socket", socket]);
    assert!(out.status.success(), "shutdown failed: {}", String::from_utf8_lossy(&out.stderr));
    let status = server.wait().expect("server exit");
    assert!(status.success(), "daemon must exit cleanly after shutdown");

    // Graceful shutdown leaves no torn store entries behind.
    let staged: Vec<_> = std::fs::read_dir(&store)
        .expect("store dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp"))
        .collect();
    assert!(staged.is_empty(), "no staging dirs after shutdown: {staged:?}");

    std::fs::remove_dir_all(&dir).ok();
}

fn socket_exists(path: &str) -> bool {
    std::fs::metadata(path).is_ok()
}

#[test]
fn daemon_time_travel_queries_cover_every_variant_dry_run_and_limits() {
    let dir = scratch("query");
    let socket = dir.join("qd.sock");
    let socket = socket.to_str().unwrap();
    let store = dir.join("store");
    let prog = dir.join("prog.pasm");
    std::fs::write(&prog, PROGRAM).expect("write program");

    let mut server = Command::new(env!("CARGO_BIN_EXE_quickrec"))
        .args(["serve", "--socket", socket, "--store", store.to_str().unwrap(), "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn quickrec serve");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !socket_exists(socket) && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let out = quickrec(&["submit", "--socket", socket, prog.to_str().unwrap(), "--cores", "2"]);
    assert!(out.status.success(), "submit failed: {}", String::from_utf8_lossy(&out.stderr));

    // Every query variant answers over the wire.
    for variant in [
        &["--range", "0..2"][..],
        &["--thread", "0"][..],
        &["--window", "0..4"][..],
        &["--before-divergence", "8"][..],
        &["--reverse-step", "1"][..],
    ] {
        let mut args = vec!["query", "--socket", socket, "1"];
        args.extend_from_slice(variant);
        let out = quickrec(&args);
        assert!(
            out.status.success(),
            "query {variant:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("query:") && stdout.contains("fingerprint"), "{variant:?}: {stdout}");
    }

    // Dry run prints the plan — span, resume point, cost — and no result.
    let out = quickrec(&["query", "--socket", socket, "1", "--range", "0..2", "--dry-run"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("plan: chunks 0..2"), "plan rendered: {stdout}");
    assert!(stdout.contains("events to re-execute"), "cost rendered: {stdout}");
    assert!(!stdout.contains("fingerprint"), "dry run must not execute: {stdout}");

    // A query over the safety limit is refused with a clean nonzero
    // exit; an out-of-range span is a structured error, not a panic.
    let out = quickrec(&["query", "--socket", socket, "1", "--thread", "0", "--max-events", "1"]);
    assert!(!out.status.success(), "over-limit query must exit nonzero");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("exceeding max-events 1"), "limit named: {err}");
    let out = quickrec(&["query", "--socket", socket, "1", "--window", "0..100000"]);
    assert!(!out.status.success(), "out-of-range window must exit nonzero");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("beyond the recording"), "range fault named: {err}");

    // Repeating a replay id is served from the idempotence cache.
    let first = quickrec(&["query", "--socket", socket, "1", "--thread", "0", "--replay-id", "7"]);
    assert!(first.status.success(), "{}", String::from_utf8_lossy(&first.stderr));
    let repeat = quickrec(&["query", "--socket", socket, "1", "--thread", "0", "--replay-id", "7"]);
    assert!(repeat.status.success(), "{}", String::from_utf8_lossy(&repeat.stderr));
    let stdout = String::from_utf8_lossy(&repeat.stdout);
    assert!(stdout.contains("idempotence cache"), "cache hit reported: {stdout}");

    // Zero or several variants, and malformed spans, are usage errors.
    for bad in [
        &[][..],
        &["--range", "0..2", "--thread", "0"][..],
        &["--range", "2"][..],
        &["--thread", "minus-one"][..],
    ] {
        let mut args = vec!["query", "--socket", socket, "1"];
        args.extend_from_slice(bad);
        let out = quickrec(&args);
        assert!(!out.status.success(), "query {bad:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("query") || err.contains("bad --"), "{bad:?}: {err}");
    }

    let out = quickrec(&["shutdown", "--socket", socket]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let status = server.wait().expect("server exit");
    assert!(status.success(), "daemon must exit cleanly after shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn salvage_replay_recovers_from_a_torn_log_where_strict_replay_refuses() {
    let dir = scratch("salvage");
    let (prog, logs) = recorded(&dir);

    // Tear the tail off the chunk log, as a crash mid-write would.
    let chunks = dir.join("rec").join("chunks.qrl");
    let bytes = std::fs::read(&chunks).expect("read chunk log");
    std::fs::write(&chunks, &bytes[..bytes.len() - 3]).expect("tear chunk log");

    let strict = quickrec(&["replay", &prog, &logs]);
    assert!(!strict.status.success(), "strict replay must refuse a torn log");

    let salvage = quickrec(&["replay", &prog, &logs, "--salvage"]);
    assert!(
        salvage.status.success(),
        "salvage replay failed: {}",
        String::from_utf8_lossy(&salvage.stderr)
    );
    let stdout = String::from_utf8_lossy(&salvage.stdout);
    assert!(stdout.contains("chunk log: corrupt"), "fault reported: {stdout}");
    assert!(stdout.contains("bytes dropped"), "loss quantified: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}
