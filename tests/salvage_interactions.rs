//! Interplay of crash salvage with checkpointed and parallel replay: a
//! recording that survives salvage is a first-class recording, so every
//! replay mode built on top of the serial replayer must work on it —
//! checkpoint collection, checkpoint resume, and the parallel
//! conflict-dependency scheduler (which must instead *fall back* to
//! serial when the footprint sidecar itself lost its tail).

use qr_replay::{salvage_replay_dir, CheckpointIndex, ParallelReplayer, QueryEngine, ReplayQuery, Replayer};
use quickrec::workloads::{find, Scale};
use quickrec::{record, Encoding, Program, Recording, RecordingConfig, RecordingParts};

fn recorded() -> (Program, Recording) {
    let spec = find("lu").expect("lu exists");
    let program = (spec.build)(3, Scale::Test).expect("builds");
    let recording = record(program.clone(), RecordingConfig::with_cores(3)).expect("records");
    (program, recording)
}

fn saved(recording: &Recording, tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("quickrec-interplay-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    recording.save(&dir, Encoding::Delta).unwrap();
    dir
}

/// Appends garbage to the chunk log, as a crash mid-append would leave
/// it: the framed prefix — here the *whole* timeline — survives, the
/// trailing bytes are detected and dropped.
fn append_garbage(dir: &std::path::Path) {
    let path = dir.join(Recording::CHUNKS_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&[0xFF; 7]);
    std::fs::write(&path, &bytes).unwrap();
}

#[test]
fn a_salvage_survivor_supports_checkpointed_resume() {
    let (program, recording) = recorded();
    let dir = saved(&recording, "checkpoint");
    append_garbage(&dir);

    // Salvage confirms the damage cost only the garbage bytes.
    let report = salvage_replay_dir(&program, &dir).unwrap();
    assert!(report.chunk_corruption.is_some(), "{}", report.summary());
    assert!(report.chunk_bytes_dropped > 0);
    assert!(report.prefix_ok(), "{}", report.summary());
    assert_eq!(report.events_replayed, report.timeline_len, "full timeline survived");

    // The survivor then replays with checkpoints like any recording.
    let (salvaged, recovery) = Recording::load_salvaged(&dir).unwrap();
    assert!(!recovery.is_clean());
    let (outcome, checkpoints) =
        Replayer::new(&program, &salvaged).unwrap().run_with_checkpoints(25).unwrap();
    assert_eq!(Some(outcome.fingerprint), report.fingerprint);
    assert_eq!(outcome.console, report.console);
    assert!(!checkpoints.is_empty(), "multi-chunk survivor yields checkpoints");
    for (i, cp) in checkpoints.into_iter().enumerate() {
        let resumed = Replayer::resume(&program, &salvaged, cp)
            .unwrap()
            .run()
            .unwrap_or_else(|e| panic!("resume from checkpoint {i}: {e}"));
        assert_eq!(resumed.fingerprint, outcome.fingerprint, "checkpoint {i}");
        resumed.verify_against(&salvaged).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_salvage_survivor_replays_in_parallel_when_footprints_survive() {
    let (program, recording) = recorded();
    let dir = saved(&recording, "parallel");
    append_garbage(&dir);

    let (salvaged, recovery) = Recording::load_salvaged(&dir).unwrap();
    assert!(recovery.chunks.corruption.is_some());
    let serial = qr_replay::replay(&program, &salvaged).unwrap();

    // The footprint sidecar is intact, so the conflict-dependency
    // scheduler accepts the survivor outright.
    let replayer = ParallelReplayer::new(&program, &salvaged, 4).unwrap();
    assert_eq!(replayer.fallback_reason(), None);
    let parallel = replayer.run().unwrap();
    assert_eq!(parallel.fingerprint, serial.fingerprint);
    assert_eq!(parallel.console, serial.console);
    assert_eq!(parallel.exit_code, serial.exit_code);
    assert_eq!(parallel.instructions, serial.instructions);
    parallel.verify_against(&salvaged).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_salvage_survivor_keeps_its_seek_index_and_a_torn_one_degrades() {
    let (program, recording) = recorded();
    let index = CheckpointIndex::build(&program, &recording, 8).unwrap();
    let dir = saved(&recording, "timetravel");
    std::fs::write(dir.join(Recording::CHECKPOINTS_FILE), index.to_bytes()).unwrap();
    append_garbage(&dir);

    // The tear cost only the appended garbage, so the survivor still
    // carries the recorded fingerprint and the persisted index binds.
    let (salvaged, recovery) = Recording::load_salvaged(&dir).unwrap();
    assert!(!recovery.is_clean());
    let sidecar = RecordingParts::read(&dir).unwrap().checkpoints.expect("sidecar survives");
    let scratch = QueryEngine::new(&program, &salvaged).unwrap();
    let mut engine = QueryEngine::new(&program, &salvaged).unwrap();
    assert!(engine.attach_index_bytes(&sidecar), "survivor keeps its seek index");
    let query = ReplayQuery::ReverseStep { events: 4 };
    let indexed = engine.execute(query, None).unwrap();
    assert_eq!(
        indexed.to_bytes(),
        scratch.execute(query, None).unwrap().to_bytes(),
        "indexed query over a salvage survivor matches scratch bit for bit"
    );

    // A tear through the sidecar itself must not take queries down:
    // attach refuses, the engine silently answers from scratch.
    let mut degraded = QueryEngine::new(&program, &salvaged).unwrap();
    assert!(!degraded.attach_index_bytes(&sidecar[..sidecar.len() / 2]));
    assert!(!degraded.has_index());
    assert_eq!(degraded.execute(query, None).unwrap().to_bytes(), indexed.to_bytes());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_torn_footprint_sidecar_forces_the_serial_fallback() {
    let (program, recording) = recorded();
    let dir = saved(&recording, "fallback");
    // Tear the *footprint* log instead: chunks and inputs stay intact,
    // but the dependency DAG can no longer be trusted for every chunk.
    let path = dir.join(Recording::FOOTPRINTS_FILE);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let (salvaged, recovery) = Recording::load_salvaged(&dir).unwrap();
    assert!(recovery.is_clean(), "chunk and input logs are untouched");
    let serial = qr_replay::replay_and_verify(&program, &salvaged).unwrap();

    let replayer = ParallelReplayer::new(&program, &salvaged, 4).unwrap();
    assert!(
        replayer.fallback_reason().is_some(),
        "partial footprint coverage must not be scheduled in parallel"
    );
    let outcome = replayer.run().unwrap();
    assert_eq!(outcome, serial, "the fallback is the serial replayer, bit for bit");
    std::fs::remove_dir_all(&dir).ok();
}
