//! The observability determinism battery: `qr-obs` is observational
//! only. Recordings must be byte-identical with the metrics registry
//! enabled and disabled, and the trace journal's framed format must
//! round-trip exactly and degrade gracefully (never panic) under the
//! same mutators the log fault-injection suite uses.

use quickrec::workloads::{find, Scale};
use quickrec::{record, Encoding, Recording, RecordingConfig};
use std::path::PathBuf;

const THREADS: usize = 2;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qr-obs-det-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn record_workload(name: &str) -> Recording {
    let spec = find(name).expect("suite workload");
    let program = (spec.build)(THREADS, Scale::Test).expect("build");
    record(program, RecordingConfig::with_cores(THREADS)).expect("record")
}

/// Reads every file of a saved recording directory, sorted by name.
fn dir_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| {
            let e = e.expect("dir entry");
            let name = e.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(e.path()).expect("read file");
            (name, bytes)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn recordings_are_byte_identical_with_metrics_on_and_off() {
    let dir = scratch("onoff");
    let was_enabled = qr_obs::enabled();

    qr_obs::set_enabled(true);
    let observed = record_workload("fft");
    qr_obs::set_enabled(false);
    let blind = record_workload("fft");
    qr_obs::set_enabled(was_enabled);

    assert_eq!(
        observed.fingerprint, blind.fingerprint,
        "enabling metrics must not change the recorded execution"
    );
    // The full on-disk artifact — metadata, chunk log, input log — must
    // be byte-identical, for every encoding.
    for encoding in Encoding::ALL {
        let on_dir = dir.join(format!("on-{}", encoding.name()));
        let off_dir = dir.join(format!("off-{}", encoding.name()));
        observed.save(&on_dir, encoding).expect("save observed");
        blind.save(&off_dir, encoding).expect("save blind");
        let on = dir_bytes(&on_dir);
        let off = dir_bytes(&off_dir);
        assert_eq!(
            on.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            off.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            "{}: same file set",
            encoding.name()
        );
        for ((name, on_bytes), (_, off_bytes)) in on.iter().zip(&off) {
            assert_eq!(
                on_bytes, off_bytes,
                "{}/{name}: saved bytes differ with metrics enabled",
                encoding.name()
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_journal_round_trips_through_the_frame_container() {
    let journal = qr_obs::Journal::new();
    journal.set_enabled(true);
    {
        let _outer = journal.span("record", 7);
        journal.instant("chunk_flush", 7);
        let _inner = journal.span("save", 7);
    }
    let events = journal.drain();
    assert!(events.len() >= 5, "2 spans + 1 instant = 5 events, got {}", events.len());

    let bytes = qr_obs::trace::to_bytes(&events);
    let decoded = qr_obs::trace::from_bytes(&bytes).expect("clean journal decodes");
    assert_eq!(decoded, events, "frame round trip must be exact");

    // Sequence numbers are dense and ordered — the replayable spine of
    // the journal.
    for (i, event) in decoded.iter().enumerate() {
        assert_eq!(event.seq, i as u64, "event {i}");
        assert_eq!(event.session, 7);
    }
}

/// SplitMix64 — the same keyed generator the log fault-injection suite
/// uses, so journal mutations are reproducible.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn mutated_trace_journals_never_panic_and_salvage_a_true_prefix() {
    let journal = qr_obs::Journal::new();
    journal.set_enabled(true);
    for i in 0..64u64 {
        let _span = journal.span("work", i);
        journal.instant("tick", i);
    }
    let events = journal.drain();
    let clean = qr_obs::trace::to_bytes(&events);

    let mut rng = SplitMix64(0x0B5E_D15E_A5E1);
    for case in 0..600 {
        let mut bytes = clean.clone();
        match case % 3 {
            // Truncation at an arbitrary offset.
            0 => bytes.truncate((rng.next() as usize) % (bytes.len() + 1)),
            // Single bit flip.
            1 => {
                let pos = (rng.next() as usize) % bytes.len();
                bytes[pos] ^= 1 << (rng.next() % 8);
            }
            // Byte replacement.
            _ => {
                let pos = (rng.next() as usize) % bytes.len();
                bytes[pos] = rng.next() as u8;
            }
        }
        // Strict decode: either clean success (mutation hit dead space —
        // impossible here, but allowed) or a structured error. Salvage:
        // whatever survives must be a true prefix of the clean journal.
        match qr_obs::trace::from_bytes(&bytes) {
            Ok(decoded) => assert_eq!(decoded, events, "case {case}: silent corruption"),
            Err(_) => {
                let (prefix, _fault) = qr_obs::trace::salvage(&bytes);
                assert!(
                    prefix.len() <= events.len(),
                    "case {case}: salvage invented events"
                );
                assert_eq!(
                    prefix,
                    events[..prefix.len()],
                    "case {case}: salvaged prefix diverges from the clean journal"
                );
            }
        }
    }
}

#[test]
fn trace_journal_disabled_by_default_and_costs_nothing_when_off() {
    let journal = qr_obs::Journal::new();
    assert!(!journal.enabled(), "journals must start disabled");
    {
        let _span = journal.span("ignored", 1);
        journal.instant("ignored", 1);
    }
    assert!(journal.is_empty(), "a disabled journal must record nothing");
}
