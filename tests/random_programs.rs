//! The soundness property test: **any** recorded execution replays
//! exactly.
//!
//! Random multithreaded programs full of unsynchronized races, atomics,
//! fences and nondeterministic reads are recorded under random machine
//! configurations and then replayed; the replay must reproduce the
//! architectural outcome bit for bit. This exercises the chunk-ordering
//! argument (DESIGN.md decision 1) far beyond what the structured
//! workloads reach.

use qr_common::SplitMix64;
use qr_isa::{abi, Asm, Program, Reg};
use qr_mem::TsoMode;
use quickrec::{record, replay_and_verify, ParallelReplayer, RecordingConfig};

/// One random guest operation on the shared array.
#[derive(Debug, Clone)]
enum Op {
    Load(u8),
    Store(u8, u8),
    FetchAdd(u8, u8),
    Cas(u8, u8, u8),
    Xchg(u8, u8),
    Fence,
    Arith(u8),
    Rdtsc,
    Rdrand,
    Yield,
    Time,
    ReadInput(u8),
}

const SLOTS: usize = 6;

fn random_op(rng: &mut SplitMix64) -> Op {
    let slot = |rng: &mut SplitMix64| rng.below(SLOTS as u64) as u8;
    let byte = |rng: &mut SplitMix64| rng.next_u64() as u8;
    // Weighted like the retired proptest strategy: plain loads, stores
    // and arithmetic dominate; atomics, syscalls and nondeterministic
    // reads appear often enough to race.
    match rng.below(21) {
        0..=3 => Op::Load(slot(rng)),
        4..=7 => Op::Store(slot(rng), byte(rng)),
        8..=9 => Op::FetchAdd(slot(rng), byte(rng)),
        10 => Op::Cas(slot(rng), byte(rng), byte(rng)),
        11 => Op::Xchg(slot(rng), byte(rng)),
        12 => Op::Fence,
        13..=15 => Op::Arith(byte(rng)),
        16 => Op::Rdtsc,
        17 => Op::Rdrand,
        18 => Op::Yield,
        19 => Op::Time,
        _ => Op::ReadInput(slot(rng)),
    }
}

/// Emits one op. Uses R6 (slot base), R7 (accumulator), R8/R9 scratch.
fn emit_op(a: &mut Asm, op: &Op) {
    match *op {
        Op::Load(slot) => {
            a.ld(Reg::R8, Reg::R6, slot as i32 * 4);
            a.add(Reg::R7, Reg::R7, Reg::R8);
        }
        Op::Store(slot, v) => {
            a.addi(Reg::R8, Reg::R7, v as i32);
            a.st(Reg::R6, slot as i32 * 4, Reg::R8);
        }
        Op::FetchAdd(slot, v) => {
            a.addi(Reg::R9, Reg::R6, slot as i32 * 4);
            a.movi(Reg::R8, v as i32);
            a.fetch_add(Reg::R8, Reg::R9, Reg::R8);
            a.add(Reg::R7, Reg::R7, Reg::R8);
        }
        Op::Cas(slot, e, v) => {
            a.addi(Reg::R9, Reg::R6, slot as i32 * 4);
            a.movi(Reg::R8, e as i32);
            a.movi(Reg::R10, v as i32);
            a.cas(Reg::R8, Reg::R9, Reg::R10);
            a.add(Reg::R7, Reg::R7, Reg::R8);
        }
        Op::Xchg(slot, v) => {
            a.addi(Reg::R9, Reg::R6, slot as i32 * 4);
            a.movi(Reg::R8, v as i32);
            a.xchg(Reg::R8, Reg::R9);
            a.add(Reg::R7, Reg::R7, Reg::R8);
        }
        Op::Fence => {
            a.fence();
        }
        Op::Arith(v) => {
            a.muli(Reg::R7, Reg::R7, 1 + (v as i32 % 7));
            a.addi(Reg::R7, Reg::R7, v as i32);
        }
        Op::Rdtsc => {
            a.rdtsc(Reg::R8);
            a.xor(Reg::R7, Reg::R7, Reg::R8);
        }
        Op::Rdrand => {
            a.rdrand(Reg::R8);
            a.add(Reg::R7, Reg::R7, Reg::R8);
        }
        Op::Yield => {
            // Preserve the accumulator around the syscall (R0 clobbered).
            a.push(Reg::R7);
            a.movi_u(Reg::R0, abi::SYS_YIELD);
            a.syscall();
            a.pop(Reg::R7);
        }
        Op::Time => {
            a.push(Reg::R7);
            a.movi_u(Reg::R0, abi::SYS_TIME);
            a.syscall();
            a.mov(Reg::R8, Reg::R0);
            a.pop(Reg::R7);
            a.xor(Reg::R7, Reg::R7, Reg::R8);
        }
        Op::ReadInput(slot) => {
            a.push(Reg::R7);
            a.movi_u(Reg::R0, abi::SYS_READ);
            a.addi(Reg::R1, Reg::R6, slot as i32 * 4);
            a.movi(Reg::R2, 4);
            a.syscall();
            a.pop(Reg::R7);
        }
    }
}

/// Builds a program: main spawns the worker threads, every thread runs
/// its op sequence and stores its accumulator into a private result
/// slot, main joins and exits with the xor of shared state.
fn build_program(threads: &[Vec<Op>]) -> Program {
    let mut a = Asm::with_name("random");
    a.align_data_line();
    a.data_word("shared", &[0u32; SLOTS]);
    a.data_word("results", &vec![0u32; threads.len()]);
    // main
    for i in 1..threads.len() {
        a.movi_u(Reg::R0, abi::SYS_SPAWN);
        a.movi_sym(Reg::R1, &format!("thread{i}"));
        a.movi(Reg::R2, i as i32);
        a.syscall();
        a.push(Reg::R0);
    }
    a.movi(Reg::R1, 0);
    a.call("thread_body0");
    for _ in 1..threads.len() {
        a.pop(Reg::R1);
        a.movi_u(Reg::R0, abi::SYS_JOIN);
        a.syscall();
    }
    // exit(xor of shared slots + results)
    a.movi_sym(Reg::R6, "shared");
    a.movi(Reg::R7, 0);
    for s in 0..SLOTS {
        a.ld(Reg::R8, Reg::R6, s as i32 * 4);
        a.xor(Reg::R7, Reg::R7, Reg::R8);
    }
    a.movi_sym(Reg::R6, "results");
    for i in 0..threads.len() {
        a.ld(Reg::R8, Reg::R6, i as i32 * 4);
        a.xor(Reg::R7, Reg::R7, Reg::R8);
    }
    a.movi_u(Reg::R0, abi::SYS_EXIT);
    a.mov(Reg::R1, Reg::R7);
    a.syscall();
    // worker entries
    for i in 1..threads.len() {
        a.label(&format!("thread{i}"));
        a.call(&format!("thread_body{i}"));
        a.movi_u(Reg::R0, abi::SYS_EXIT);
        a.movi(Reg::R1, 0);
        a.syscall();
    }
    // bodies: R1 = thread index on entry
    for (i, ops) in threads.iter().enumerate() {
        a.label(&format!("thread_body{i}"));
        a.movi_sym(Reg::R6, "shared");
        a.movi(Reg::R7, i as i32 + 1);
        for op in ops {
            emit_op(&mut a, op);
        }
        a.movi_sym(Reg::R8, "results");
        a.st(Reg::R8, i as i32 * 4, Reg::R7);
        a.ret();
    }
    a.finish().expect("random program assembles")
}

#[test]
fn every_recorded_execution_replays_exactly() {
    let mut rng = SplitMix64::new(0x0_5eed_c0de);
    for case in 0..32 {
        let n_threads = 2 + rng.below(2) as usize;
        let thread_ops: Vec<Vec<Op>> = (0..n_threads)
            .map(|_| {
                let n = 5 + rng.below(55) as usize;
                (0..n).map(|_| random_op(&mut rng)).collect()
            })
            .collect();
        let cores = 1 + rng.below(4) as usize;
        let drain_interval = [1u64, 4, 16][rng.below(3) as usize];
        let rsw_mode = rng.chance(1, 2);
        let quantum = [800u64, 50_000][rng.below(2) as usize];
        let program = build_program(&thread_ops);
        let mut cfg = RecordingConfig::with_cores(cores);
        cfg.cpu.drain_interval = drain_interval;
        cfg.cpu.mem.tso_mode = if rsw_mode { TsoMode::Rsw } else { TsoMode::DrainAtChunk };
        cfg.os.quantum_cycles = quantum;
        let context = format!(
            "case {case}: cores={cores} drain={drain_interval} rsw={rsw_mode} quantum={quantum}"
        );
        let recording =
            record(program.clone(), cfg).unwrap_or_else(|e| panic!("{context}: record: {e}"));
        let outcome = replay_and_verify(&program, &recording)
            .unwrap_or_else(|e| panic!("{context}: replay: {e}"));
        assert_eq!(outcome.exit_code, recording.exit_code, "{context}");
        assert_eq!(outcome.instructions, recording.instructions, "{context}");
        // The same racy execution must also replay exactly through the
        // parallel conflict-dependency scheduler. The job count comes
        // from a per-case RNG so the main stream (and thus the generated
        // programs) stays byte-stable.
        let jobs = 1 + SplitMix64::new(0x9e37_79b9 ^ case as u64).below(4) as usize;
        let replayer = ParallelReplayer::new(&program, &recording, jobs)
            .unwrap_or_else(|e| panic!("{context}: parallel setup: {e}"));
        assert_eq!(replayer.fallback_reason(), None, "{context}");
        let parallel = replayer
            .run()
            .unwrap_or_else(|e| panic!("{context}: parallel replay ({jobs} jobs): {e}"));
        assert_eq!(parallel.fingerprint, outcome.fingerprint, "{context} ({jobs} jobs)");
        assert_eq!(parallel.console, outcome.console, "{context} ({jobs} jobs)");
        assert_eq!(parallel.exit_code, outcome.exit_code, "{context} ({jobs} jobs)");
        assert_eq!(parallel.instructions, outcome.instructions, "{context} ({jobs} jobs)");
        parallel
            .verify_against(&recording)
            .unwrap_or_else(|e| panic!("{context}: parallel verify: {e}"));
    }
}

#[test]
fn a_known_racy_program_replays_under_every_core_count() {
    let ops: Vec<Vec<Op>> = vec![
        vec![Op::Store(0, 1), Op::Load(1), Op::FetchAdd(2, 3), Op::Rdtsc, Op::Store(1, 9)],
        vec![Op::Store(1, 2), Op::Load(0), Op::Cas(2, 0, 7), Op::Yield, Op::Load(2)],
        vec![Op::Xchg(0, 5), Op::Fence, Op::Load(2), Op::ReadInput(3), Op::Load(3)],
    ];
    let program = build_program(&ops);
    for cores in 1..=4 {
        let recording = record(program.clone(), RecordingConfig::with_cores(cores)).unwrap();
        replay_and_verify(&program, &recording)
            .unwrap_or_else(|e| panic!("cores={cores}: {e}"));
    }
}
