//! Partial-order recording equivalence battery.
//!
//! A partial-order recording replaces the global chunk timestamps with
//! recorded happens-before edges as the replay-ordering authority. Its
//! correctness obligations, checked here across the whole workload
//! suite:
//!
//! 1. **Fingerprint equivalence.** Replaying under the recorded partial
//!    order — serially or on any worker count — produces the exact
//!    outcome a total-order recording of the same seeded execution
//!    replays to, for every chunk-log encoding round-trip.
//! 2. **Differential discipline.** Turning partial-order recording on
//!    changes nothing about the other logs: meta, chunks, inputs and
//!    footprints stay byte-identical to the total-order recording;
//!    default-mode recordings never grow an `order.qrp`.
//! 3. **Observability neutrality.** The new ordering metrics follow the
//!    metrics-on/off byte-identity gate like every other counter.

use quickrec::workloads::{suite, Scale};
use quickrec::{
    record, replay, replay_ordered, replay_ordered_and_verify, ChunkLog, Encoding, OrderMode,
    Recording, RecordingConfig, ReplayOutcome,
};

const THREADS: usize = 3;
const CORES: usize = 4;

fn config(order: OrderMode) -> RecordingConfig {
    let mut cfg = RecordingConfig::with_cores(CORES);
    cfg.order = order;
    cfg
}

fn assert_equivalent(ordered: &ReplayOutcome, serial: &ReplayOutcome, context: &str) {
    assert_eq!(ordered.fingerprint, serial.fingerprint, "fingerprint diverged: {context}");
    assert_eq!(ordered.console, serial.console, "console diverged: {context}");
    assert_eq!(ordered.exit_code, serial.exit_code, "exit code diverged: {context}");
    assert_eq!(ordered.instructions, serial.instructions, "instructions diverged: {context}");
    assert_eq!(ordered.chunks_replayed, serial.chunks_replayed, "chunk count diverged: {context}");
    assert_eq!(ordered.inputs_injected, serial.inputs_injected, "input count diverged: {context}");
}

#[test]
fn partial_order_replay_matches_total_order_for_every_workload_encoding_and_job_count() {
    for spec in suite() {
        let program = (spec.build)(THREADS, Scale::Test).expect("workload builds");
        // The seeded execution is deterministic, so the total-order and
        // partial-order recordings capture the same run.
        let total = record(program.clone(), config(OrderMode::TotalOrder)).expect("total record");
        let partial =
            record(program.clone(), config(OrderMode::PartialOrder)).expect("partial record");
        assert!(total.order.is_none(), "{}: total-order recording grew an order log", spec.name);
        let order = partial.order.as_ref().expect("partial-order recording has a log");
        assert!(order.node_count() > 0, "{}: empty order log", spec.name);
        let serial = replay(&program, &total).expect("serial total-order replay");
        for encoding in Encoding::ALL {
            // Round-trip the chunk log through this encoding, as a
            // stored recording would arrive from disk.
            let bytes = partial.chunks.to_bytes(encoding);
            let mut reloaded = partial.clone();
            reloaded.chunks = ChunkLog::from_bytes(&bytes).expect("chunk log decodes");
            for jobs in [1usize, 2, 4] {
                let context = format!("{} / {encoding:?} / {jobs} jobs", spec.name);
                let outcome = replay_ordered_and_verify(&program, &reloaded, jobs)
                    .unwrap_or_else(|e| panic!("{context}: {e}"));
                assert_equivalent(&outcome, &serial, &context);
            }
        }
    }
}

#[test]
fn partial_order_recording_changes_only_the_sidecar_and_manifest() {
    for spec in suite() {
        let program = (spec.build)(THREADS, Scale::Test).expect("workload builds");
        let total = record(program.clone(), config(OrderMode::TotalOrder)).expect("total record");
        let partial =
            record(program, config(OrderMode::PartialOrder)).expect("partial record");
        let total_parts = total.to_parts(Encoding::Delta);
        let partial_parts = partial.to_parts(Encoding::Delta);
        // Same execution, same logs: only format.qrv (version bump) and
        // order.qrp (the new sidecar) may differ.
        assert_eq!(total_parts.meta, partial_parts.meta, "{}: meta drifted", spec.name);
        assert_eq!(total_parts.chunks, partial_parts.chunks, "{}: chunks drifted", spec.name);
        assert_eq!(total_parts.inputs, partial_parts.inputs, "{}: inputs drifted", spec.name);
        assert_eq!(
            total_parts.footprints, partial_parts.footprints,
            "{}: footprints drifted",
            spec.name
        );
        assert!(total_parts.order.is_none(), "{}: total order grew order.qrp", spec.name);
        assert!(partial_parts.order.is_some(), "{}: partial order lost order.qrp", spec.name);
        assert_ne!(total_parts.format, partial_parts.format, "{}: same format version", spec.name);
    }
}

#[test]
fn partial_order_recordings_round_trip_through_disk() {
    let dir = std::env::temp_dir().join(format!("quickrec-order-rt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let spec = quickrec::workloads::find("lu").expect("lu exists");
    let program = (spec.build)(THREADS, Scale::Test).expect("workload builds");
    let partial = record(program.clone(), config(OrderMode::PartialOrder)).expect("record");
    for encoding in Encoding::ALL {
        let enc_dir = dir.join(encoding.name());
        partial.save(&enc_dir, encoding).expect("save");
        assert!(enc_dir.join("order.qrp").is_file(), "order.qrp not written");
        let loaded = Recording::load(&enc_dir).expect("load");
        assert_eq!(loaded.order, partial.order, "{}: order log drifted", encoding.name());
        let outcome = replay_ordered(&program, &loaded, 2).expect("ordered replay");
        assert_eq!(outcome.fingerprint, partial.fingerprint);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ordering_metrics_do_not_change_recorded_bytes() {
    let spec = quickrec::workloads::find("fft").expect("fft exists");
    let program = (spec.build)(THREADS, Scale::Test).expect("workload builds");
    let was_enabled = qr_obs::enabled();

    qr_obs::set_enabled(true);
    let observed = record(program.clone(), config(OrderMode::PartialOrder)).expect("record");
    let observed_replay = replay_ordered(&program, &observed, 2).expect("ordered replay");
    qr_obs::set_enabled(false);
    let blind = record(program.clone(), config(OrderMode::PartialOrder)).expect("record");
    let blind_replay = replay_ordered(&program, &blind, 2).expect("ordered replay");
    qr_obs::set_enabled(was_enabled);

    assert_eq!(observed_replay.fingerprint, blind_replay.fingerprint);
    for encoding in Encoding::ALL {
        let on = observed.to_parts(encoding);
        let off = blind.to_parts(encoding);
        for ((name, on_bytes), (_, off_bytes)) in on.files().iter().zip(off.files()) {
            assert_eq!(
                *on_bytes, off_bytes,
                "{}/{name}: bytes differ with metrics enabled",
                encoding.name()
            );
        }
    }
}
