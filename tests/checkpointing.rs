//! Replay checkpointing: resuming from any checkpoint must reach exactly
//! the same outcome as a from-scratch replay — checkpoints only bound
//! latency, never change semantics.

use quickrec::{record, RecordingConfig};
use qr_replay::Replayer;

fn recorded() -> (quickrec::Program, quickrec::Recording) {
    let spec = quickrec::workloads::find("lu").expect("lu exists");
    let program = (spec.build)(3, quickrec::workloads::Scale::Test).expect("builds");
    let recording = record(program.clone(), RecordingConfig::with_cores(3)).expect("records");
    (program, recording)
}

#[test]
fn checkpointed_run_matches_plain_replay() {
    let (program, recording) = recorded();
    let plain = qr_replay::replay_and_verify(&program, &recording).unwrap();
    let (with_cp, checkpoints) = Replayer::new(&program, &recording)
        .unwrap()
        .run_with_checkpoints(25)
        .unwrap();
    assert_eq!(with_cp, plain, "checkpoint collection must not perturb replay");
    assert!(!checkpoints.is_empty(), "a multi-chunk recording yields checkpoints");
    // Positions are strictly increasing multiples of the interval.
    for (i, cp) in checkpoints.iter().enumerate() {
        assert_eq!(cp.position(), (i + 1) * 25);
    }
}

#[test]
fn resuming_from_every_checkpoint_reaches_the_same_outcome() {
    let (program, recording) = recorded();
    let plain = qr_replay::replay_and_verify(&program, &recording).unwrap();
    let (_, checkpoints) = Replayer::new(&program, &recording)
        .unwrap()
        .run_with_checkpoints(40)
        .unwrap();
    assert!(checkpoints.len() >= 2, "want several checkpoints to resume from");
    for (i, cp) in checkpoints.into_iter().enumerate() {
        let resumed = Replayer::resume(&program, &recording, cp)
            .unwrap()
            .run()
            .unwrap_or_else(|e| panic!("resume from checkpoint {i}: {e}"));
        assert_eq!(resumed.fingerprint, plain.fingerprint, "checkpoint {i}");
        assert_eq!(resumed.exit_code, plain.exit_code);
        assert_eq!(resumed.instructions, plain.instructions, "instruction totals include the prefix");
        resumed.verify_against(&recording).unwrap();
    }
}

#[test]
fn checkpoints_are_reusable() {
    // The same checkpoint can seed multiple independent resumes (e.g. a
    // debugger stepping forward repeatedly from one snapshot).
    let (program, recording) = recorded();
    let (_, checkpoints) = Replayer::new(&program, &recording)
        .unwrap()
        .run_with_checkpoints(50)
        .unwrap();
    let cp = checkpoints.into_iter().next().expect("at least one checkpoint");
    let a = Replayer::resume(&program, &recording, cp.clone()).unwrap().run().unwrap();
    let b = Replayer::resume(&program, &recording, cp).unwrap().run().unwrap();
    assert_eq!(a, b);
}

#[test]
fn foreign_checkpoints_are_rejected() {
    let (program, recording) = recorded();
    let (_, checkpoints) = Replayer::new(&program, &recording)
        .unwrap()
        .run_with_checkpoints(50)
        .unwrap();
    let cp = checkpoints.into_iter().next().expect("checkpoint");
    // A different program/recording pair must refuse the checkpoint.
    let spec = quickrec::workloads::find("fft").unwrap();
    let other_program = (spec.build)(3, quickrec::workloads::Scale::Test).unwrap();
    let other_recording = record(other_program.clone(), RecordingConfig::with_cores(3)).unwrap();
    assert!(Replayer::resume(&other_program, &other_recording, cp).is_err());
}

#[test]
fn zero_interval_is_rejected_and_race_detection_excluded() {
    let (program, recording) = recorded();
    assert!(Replayer::new(&program, &recording)
        .unwrap()
        .run_with_checkpoints(0)
        .is_err());
    let mut replayer = Replayer::new(&program, &recording).unwrap();
    replayer.enable_race_detection();
    assert!(replayer.run_with_checkpoints(10).is_err());
}

#[test]
fn step_timeline_inspection_matches_full_replay() {
    let (program, recording) = recorded();
    let full = qr_replay::replay_and_verify(&program, &recording).unwrap();
    let mut stepper = Replayer::new(&program, &recording).unwrap();
    assert_eq!(stepper.position(), 0);
    let total = stepper.timeline_len();
    assert!(total > 0);
    let mut steps = 0;
    while stepper.step_timeline().unwrap() {
        steps += 1;
        assert_eq!(stepper.position(), steps);
    }
    assert_eq!(steps, total);
    assert!(!stepper.step_timeline().unwrap(), "exhausted timeline stays exhausted");
    assert_eq!(stepper.console_so_far(), full.console.as_slice());
}

#[test]
fn mid_timeline_inspection_is_deterministic() {
    let (program, recording) = recorded();
    let mat = program.symbol("mat").expect("lu matrix symbol");
    let probe = |position: usize| {
        let mut r = Replayer::new(&program, &recording).unwrap();
        while r.position() < position && r.step_timeline().unwrap() {}
        r.inspect_memory(mat, 64).unwrap()
    };
    let total = Replayer::new(&program, &recording).unwrap().timeline_len();
    for pos in [1, total / 3, total / 2, total - 1] {
        assert_eq!(probe(pos), probe(pos), "inspection at {pos} must be stable");
    }
    // State actually evolves along the timeline.
    assert_ne!(probe(1), probe(total - 1));
}

#[test]
fn thread_registers_visible_only_while_alive() {
    let (program, recording) = recorded();
    let mut r = Replayer::new(&program, &recording).unwrap();
    assert!(r.thread_registers(quickrec::ThreadId(0)).is_some(), "main exists at start");
    assert!(r.thread_registers(quickrec::ThreadId(1)).is_none(), "worker not yet spawned");
    while r.step_timeline().unwrap() {}
    assert!(r.thread_registers(quickrec::ThreadId(0)).is_none(), "all exited at the end");
}
