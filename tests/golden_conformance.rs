//! Golden-trace conformance battery.
//!
//! `tests/golden/` holds small canonical recordings — every encoding in
//! both the current (v3, framed + format manifest) and legacy (v1, bare
//! meta + unframed logs) shapes — plus a committed store, a trace
//! journal, a wire-protocol capture, and a registry of intentionally
//! rejected artifacts. `MANIFEST.toml` pins replay fingerprints, file
//! CRCs and salvage outcomes; `KNOWN_FAILURES.toml` pins the structured
//! error each unsupported shape must produce.
//!
//! Regenerate the fixture tree (after an intentional format change)
//! with:
//!
//! ```text
//! QR_GOLDEN_REGEN=1 cargo test --test golden_conformance
//! ```
//!
//! and review the resulting diff: every changed byte is a format
//! change shipping to disk.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use qr_common::frame::{self, PayloadKind};
use qr_common::{crc32, tomlmini, varint, QrError, SplitMix64};
use quickrec::workloads::Scale;
use quickrec::{
    record, replay_and_verify, replay_ordered_and_verify, CheckpointIndex, ChunkLog, Encoding,
    FormatManifest, OrderLog, OrderMode, Program, QueryEngine, Recording, RecordingConfig,
    RecordingParts, RecordingVersion,
};

/// Same two-syscall program the CLI contract tests record: console
/// output, input events and chunks on both threads of a 2-core run.
const PROGRAM: &str = "
.entry main
.text
main:
    movi r0, 2        ; SYS_WRITE
    movi r1, msg
    movi r2, 6
    syscall
    movi r0, 1        ; SYS_EXIT
    movi r1, 0
    syscall
.data
msg: .byte 0x68 0x65 0x6c 0x6c 0x6f 0x0a
";

fn golden_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quickrec-golden-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn parse_hex(s: &str) -> u64 {
    let digits = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(digits, 16).unwrap_or_else(|e| panic!("bad hex {s:?}: {e}"))
}

fn encoding_named(name: &str) -> Encoding {
    Encoding::ALL
        .into_iter()
        .find(|e| e.name() == name)
        .unwrap_or_else(|| panic!("unknown encoding {name:?} in manifest"))
}

/// The workloads whose recordings are checked in. Both run on 2 cores so
/// the logs exercise cross-thread chunk ordering without bloating the
/// repo.
fn generator_program(name: &str) -> Program {
    match name {
        "hello" => qr_isa::text::assemble("hello", PROGRAM).expect("assemble hello"),
        "fft2" => {
            let spec = quickrec::workloads::find("fft").expect("fft is in the suite");
            (spec.build)(2, Scale::Test).expect("build fft")
        }
        other => panic!("unknown generator {other:?}"),
    }
}

const GENERATORS: [&str; 2] = ["hello", "fft2"];

/// Records each generator exactly once per test binary; every test that
/// needs a live recording shares these.
fn recordings() -> &'static [(&'static str, Recording)] {
    static CACHE: OnceLock<Vec<(&'static str, Recording)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        GENERATORS
            .iter()
            .map(|&name| {
                let rec = record(generator_program(name), RecordingConfig::with_cores(2))
                    .unwrap_or_else(|e| panic!("recording {name} failed: {e}"));
                (name, rec)
            })
            .collect()
    })
}

fn recording_for(name: &str) -> &'static Recording {
    &recordings().iter().find(|(n, _)| *n == name).expect("known generator").1
}

/// The generator whose partial-order recordings are checked in: `fft2`
/// runs two real threads, so its `order.qrp` carries spawn, input and
/// conflict edges (not just a header).
const ORDER_GENERATOR: &str = "fft2";

/// Partial-order sibling of [`recordings`]: the same seeded `fft2`
/// execution recorded once under `--order partial`.
fn order_recording() -> &'static Recording {
    static CACHE: OnceLock<Recording> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut cfg = RecordingConfig::with_cores(2);
        cfg.order = OrderMode::PartialOrder;
        record(generator_program(ORDER_GENERATOR), cfg).expect("partial-order recording")
    })
}

/// Downgrades a recording to the v1 (legacy) on-disk shape: bare `QRM1`
/// meta, unframed chunk stream, legacy input log, no sidecars.
fn legacy_parts(rec: &Recording, encoding: Encoding) -> RecordingParts {
    let v3 = rec.to_parts(encoding);
    let meta = frame::read(&v3.meta, PayloadKind::Meta, "meta").expect("framed meta")[0].to_vec();
    RecordingParts {
        meta,
        chunks: encoding.encode_stream(rec.chunks.packets()),
        inputs: rec.inputs.to_legacy_bytes(),
        footprints: None,
        format: None,
        checkpoints: None,
        order: None,
    }
}

/// Checkpoint-index fixtures: (generator, encoding, checkpoint interval).
const CHECKPOINT_FIXTURES: [(&str, Encoding, usize); 2] =
    [("hello", Encoding::Delta, 4), ("fft2", Encoding::Raw, 16)];

/// A recording's parts with a freshly built checkpoint index attached
/// (and the format manifest rewritten to list it).
fn checkpoint_parts(gen: &str, encoding: Encoding, interval: usize) -> RecordingParts {
    let rec = recording_for(gen);
    let program = generator_program(gen);
    let index = CheckpointIndex::build(&program, rec, interval)
        .unwrap_or_else(|e| panic!("building {gen} checkpoint index: {e}"));
    let mut parts = rec.to_parts(encoding);
    parts.attach_checkpoints(index.to_bytes()).expect("attach checkpoint index");
    parts
}

/// Seek targets every checkpoint fixture pins: the start, an interior
/// position, the last event, and one-past-the-end.
fn checkpoint_seek_targets(timeline_len: usize) -> Vec<usize> {
    vec![0, timeline_len / 3, timeline_len.saturating_sub(1), timeline_len]
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy target");
    for entry in std::fs::read_dir(src).expect("read fixture dir") {
        let entry = entry.expect("dir entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy fixture file");
        }
    }
}

fn dir_snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| {
            let e = e.expect("dir entry");
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).expect("read"))
        })
        .collect();
    files.sort();
    files
}

/// The deterministic trace journal committed as `trace/hello.qrt`.
/// Wall-clock stamps are hand-set: golden bytes must not depend on the
/// generating machine.
fn golden_trace_events() -> Vec<qr_obs::TraceEvent> {
    use qr_obs::{EventKind, TraceEvent};
    let ev = |seq, kind, name: &str, thread, micros| TraceEvent {
        seq,
        kind,
        name: name.to_string(),
        thread,
        session: 1,
        micros,
    };
    vec![
        ev(0, EventKind::Begin, "record.run", 0, 10),
        ev(1, EventKind::Begin, "store.put", 0, 25),
        ev(2, EventKind::Instant, "store.block", 1, 30),
        ev(3, EventKind::End, "store.put", 0, 40),
        ev(4, EventKind::End, "record.run", 0, 90),
    ]
}

/// The wire capture committed as `wire/requests.qrw`: one framed Wire
/// container, one request per record.
fn golden_wire_requests() -> Vec<qr_server::proto::Request> {
    use qr_server::proto::Request;
    vec![
        Request::Ping,
        Request::SubmitWorkload {
            name: "golden".to_string(),
            workload: "fft".to_string(),
            threads: 2,
            scale: Scale::Test,
            encoding: Encoding::Delta,
            order: OrderMode::TotalOrder,
        },
        Request::Fetch { id: 3 },
    ]
}

/// The byte offset at which the salvage pin truncates a chunk log.
fn salvage_cut(chunks: &[u8]) -> usize {
    chunks.len() * 2 / 3
}

fn salvage_count(chunks: &[u8], cut: usize) -> usize {
    let (log, _report) = ChunkLog::salvage_from_bytes(&chunks[..cut]);
    log.packets().len()
}

/// One entry in the known-failures registry, with its generator.
struct Reject {
    name: &'static str,
    file: &'static str,
    decoder: &'static str,
    error_contains: String,
    reason: &'static str,
    bytes: Vec<u8>,
}

fn reject_fixtures() -> Vec<Reject> {
    let hello = recording_for("hello");
    let parts = hello.to_parts(Encoding::Raw);

    let mut bad_version = parts.chunks.clone();
    bad_version[4] = 2; // container version byte

    let mut format_v99 = frame::Writer::new(PayloadKind::FormatManifest);
    let mut payload = Vec::new();
    varint::write_u64(&mut payload, 99);
    payload.push(frame::VERSION);
    payload.push(Encoding::Raw.tag());
    varint::write_u64(&mut payload, 0);
    format_v99.record(&payload);

    let mut store_v2 = frame::Writer::new(PayloadKind::StoreManifest);
    let mut payload = Vec::new();
    varint::write_u64(&mut payload, 2);
    store_v2.record(&payload);

    let mut trace_bad_kind = frame::Writer::new(PayloadKind::TraceJournal);
    trace_bad_kind.record(&[0x01]); // count record: 1 committed event
    trace_bad_kind.record(&[0x00, 0x07]); // seq 0, event-kind byte 7

    let mut checkpoints_v99 = frame::Writer::new(PayloadKind::CheckpointIndex);
    let mut payload = Vec::new();
    varint::write_u64(&mut payload, 99);
    checkpoints_v99.record(&payload);

    // A v4 manifest that does not list the order-log payload: the
    // version/payload cross-check must refuse the contradiction.
    let mut format_v4_no_order = frame::Writer::new(PayloadKind::FormatManifest);
    let mut payload = Vec::new();
    varint::write_u64(&mut payload, 4);
    payload.push(frame::VERSION);
    payload.push(Encoding::Raw.tag());
    varint::write_u64(&mut payload, 0);
    format_v4_no_order.record(&payload);

    // An order log whose edge record opens with an unassigned edge-kind
    // byte — the shape a future edge taxonomy would produce.
    let mut order_bad_kind = frame::Writer::new(PayloadKind::OrderLog);
    let mut payload = Vec::new();
    varint::write_u64(&mut payload, 2); // two threads
    varint::write_u64(&mut payload, 0); // tid 0 ..
    varint::write_u64(&mut payload, 1); // .. one node
    varint::write_u64(&mut payload, 1); // tid 1 ..
    varint::write_u64(&mut payload, 1); // .. one node
    varint::write_u64(&mut payload, 1); // one edge
    order_bad_kind.record(&payload);
    order_bad_kind.record(&[9]); // unassigned edge-kind byte

    let bare_meta =
        frame::read(&parts.meta, PayloadKind::Meta, "meta").expect("framed meta")[0].to_vec();
    let mut meta_trailing = frame::Writer::new(PayloadKind::Meta);
    meta_trailing.record(&[bare_meta, vec![0]].concat());

    vec![
        Reject {
            name: "future-frame-version",
            file: "rejects/chunks-bad-version.qrl",
            decoder: "chunk-log",
            error_contains: "bad-version (found v2, newest supported v1)".to_string(),
            reason: "containers from a future frame format are refused naming both versions",
            bytes: bad_version,
        },
        Reject {
            name: "wrong-payload-kind",
            file: "rejects/meta-as-chunks.qrl",
            decoder: "chunk-log",
            error_contains: "expected a chunk log".to_string(),
            reason: "a well-formed container of the wrong kind is never silently decoded",
            bytes: parts.meta.clone(),
        },
        Reject {
            name: "legacy-unknown-tag",
            file: "rejects/legacy-tag9.qrl",
            decoder: "chunk-log-legacy",
            error_contains: "unknown encoding tag 9".to_string(),
            reason: "legacy streams with an unassigned encoding tag are refused up front",
            bytes: vec![9],
        },
        Reject {
            name: "future-recording-format",
            file: "rejects/format-v99.qrv",
            decoder: "format-manifest",
            error_contains: "recording format version 99 (newest supported 4)".to_string(),
            reason: "recordings from a future format generation are refused, not misread",
            bytes: format_v99.finish(),
        },
        Reject {
            name: "v4-manifest-without-order-log",
            file: "rejects/format-v4-no-order.qrv",
            decoder: "format-manifest",
            error_contains: "contradicts its payload list".to_string(),
            reason: "a partial-order format version must list the order-log payload it implies",
            bytes: format_v4_no_order.finish(),
        },
        Reject {
            name: "order-unknown-edge-kind",
            file: "rejects/order-bad-edge-kind.qrp",
            decoder: "order-log",
            error_contains: "unknown edge kind 9".to_string(),
            reason: "order logs with an unassigned edge kind (a future taxonomy) are refused",
            bytes: order_bad_kind.finish(),
        },
        Reject {
            name: "future-store-manifest",
            file: "rejects/store-manifest-v2.qrs",
            decoder: "store-manifest",
            error_contains: "unsupported manifest version 2".to_string(),
            reason: "store entries written by a newer store are refused by version",
            bytes: store_v2.finish(),
        },
        Reject {
            name: "trace-unknown-event-kind",
            file: "rejects/trace-bad-kind.qrt",
            decoder: "trace",
            error_contains: "unknown event kind 7".to_string(),
            reason: "trace journals with unassigned event kinds fail structurally",
            bytes: trace_bad_kind.finish(),
        },
        Reject {
            name: "wire-unknown-request",
            file: "rejects/wire-bad-tag.qrw",
            decoder: "wire-request",
            error_contains: "unknown request tag 200".to_string(),
            reason: "unassigned wire request tags are a protocol error, not a crash",
            bytes: vec![200],
        },
        Reject {
            name: "future-checkpoint-index",
            file: "rejects/checkpoints-v99.qrc",
            decoder: "checkpoint-index",
            error_contains: "checkpoint index version 99".to_string(),
            reason: "checkpoint indexes from a future layout are refused by version, not misread",
            bytes: checkpoints_v99.finish(),
        },
        Reject {
            name: "meta-trailing-bytes",
            file: "rejects/meta-trailing.qrm",
            decoder: "recording",
            error_contains: "trailing bytes".to_string(),
            reason: "metadata blobs longer than their declared fields are refused",
            bytes: meta_trailing.finish(),
        },
    ]
}

fn run_decoder(decoder: &str, bytes: &[u8]) -> std::result::Result<(), QrError> {
    match decoder {
        "chunk-log" => ChunkLog::from_bytes(bytes).map(|_| ()),
        "chunk-log-legacy" => ChunkLog::from_legacy_bytes(bytes).map(|_| ()),
        "format-manifest" => FormatManifest::from_bytes(bytes).map(|_| ()),
        "store-manifest" => qr_store::Manifest::from_bytes(bytes).map(|_| ()),
        "trace" => qr_obs::trace::from_bytes(bytes).map(|_| ()),
        "wire-request" => qr_server::proto::decode_request(bytes).map(|_| ()),
        "checkpoint-index" => CheckpointIndex::from_bytes(bytes).map(|_| ()),
        "order-log" => OrderLog::from_bytes(bytes).map(|_| ()),
        "recording" => {
            // The reject file replaces the meta of an otherwise-good
            // recording; the whole-recording decoder must refuse it.
            let mut parts = recording_for("hello").to_parts(Encoding::Raw);
            parts.meta = bytes.to_vec();
            Recording::from_parts(&parts).map(|_| ())
        }
        other => panic!("unknown decoder {other:?} in KNOWN_FAILURES.toml"),
    }
}

// ---------------------------------------------------------------------
// Regeneration
// ---------------------------------------------------------------------

/// Regenerates the whole fixture tree when `QR_GOLDEN_REGEN=1`.
/// Every test funnels through here first, so a regen run both rewrites
/// and immediately re-validates the tree.
fn maybe_regen() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        if std::env::var("QR_GOLDEN_REGEN").as_deref() == Ok("1") {
            regenerate();
        }
    });
}

fn regenerate() {
    let root = golden_root();
    for sub in ["v3", "v1", "order", "checkpoints", "store", "trace", "wire", "rejects"] {
        let dir = root.join(sub);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create fixture subdir");
    }

    let mut manifest = String::from(
        "# Golden-trace conformance manifest. Every value here is a pinned\n\
         # compatibility promise. Regenerate (and review the diff!) with:\n\
         #   QR_GOLDEN_REGEN=1 cargo test --test golden_conformance\n\
         version = 3\n",
    );

    for &gen in &GENERATORS {
        let rec = recording_for(gen);
        for encoding in Encoding::ALL {
            let name = format!("{gen}-{}", encoding.name());

            let v3 = rec.to_parts(encoding);
            let v3_dir = root.join("v3").join(&name);
            v3.save(&v3_dir).expect("save v3 fixture");
            let cut = salvage_cut(&v3.chunks);
            manifest.push_str(&format!(
                "\n[[fixture]]\nname = \"{name}\"\ngenerator = \"{gen}\"\n\
                 encoding = \"{}\"\npath = \"v3/{name}\"\nfingerprint = \"0x{:016x}\"\n\
                 chunks = {}\nsalvage_cut = {cut}\nsalvage_chunks = {}\n",
                encoding.name(),
                rec.fingerprint,
                rec.chunks.packets().len(),
                salvage_count(&v3.chunks, cut),
            ));
            let files = v3.files();
            let names: Vec<String> = files.iter().map(|(n, _)| format!("\"{n}\"")).collect();
            let crcs: Vec<String> = files
                .iter()
                .map(|(_, bytes)| format!("\"0x{:08x}\"", crc32::checksum(bytes)))
                .collect();
            manifest.push_str(&format!(
                "files = [{}]\ncrcs = [{}]\n",
                names.join(", "),
                crcs.join(", ")
            ));

            let v1 = legacy_parts(rec, encoding);
            let v1_dir = root.join("v1").join(&name);
            std::fs::create_dir_all(&v1_dir).expect("create v1 dir");
            for (file, bytes) in v1.files() {
                std::fs::write(v1_dir.join(file), bytes).expect("write v1 file");
            }
            let cut = salvage_cut(&v1.chunks);
            manifest.push_str(&format!(
                "\n[[legacy]]\nname = \"{name}\"\ngenerator = \"{gen}\"\n\
                 encoding = \"{}\"\npath = \"v1/{name}\"\nfingerprint = \"0x{:016x}\"\n\
                 salvage_cut = {cut}\nsalvage_chunks = {}\n",
                encoding.name(),
                rec.fingerprint,
                salvage_count(&v1.chunks, cut),
            ));
        }
    }

    // Partial-order fixtures: the same seeded fft2 execution recorded
    // under `--order partial`, saved per encoding. The `order.qrp`
    // bytes are a pure function of the execution, so they are pinned by
    // CRC like every other part.
    let order_rec = order_recording();
    for encoding in Encoding::ALL {
        let name = format!("{ORDER_GENERATOR}-{}", encoding.name());
        let parts = order_rec.to_parts(encoding);
        let dir = root.join("order").join(&name);
        parts.save(&dir).expect("save order fixture");
        let order = order_rec.order.as_ref().expect("partial-order recording has a log");
        manifest.push_str(&format!(
            "\n[[order]]\nname = \"{name}\"\ngenerator = \"{ORDER_GENERATOR}\"\n\
             encoding = \"{}\"\npath = \"order/{name}\"\nfingerprint = \"0x{:016x}\"\n\
             nodes = {}\nedges = {}\norder_crc = \"0x{:08x}\"\n",
            encoding.name(),
            order_rec.fingerprint,
            order.node_count(),
            order.edges().len(),
            crc32::checksum(parts.order.as_ref().expect("order bytes")),
        ));
    }

    // Checkpoint-index fixtures: full recording directories with a
    // `checkpoints.qrc` sidecar attached, plus pinned seek-result
    // fingerprints (the time-travel compatibility promise).
    for (gen, encoding, interval) in CHECKPOINT_FIXTURES {
        let name = format!("{gen}-{}", encoding.name());
        let parts = checkpoint_parts(gen, encoding, interval);
        let dir = root.join("checkpoints").join(&name);
        parts.save(&dir).expect("save checkpoint fixture");
        let rec = recording_for(gen);
        let program = generator_program(gen);
        let engine = QueryEngine::new(&program, rec).expect("build query engine");
        let targets = checkpoint_seek_targets(engine.timeline_len());
        let fingerprints: Vec<String> = targets
            .iter()
            .map(|&t| {
                let rp = engine.seek(t).expect("seek for pin");
                format!("\"0x{:016x}\"", rp.partial_fingerprint())
            })
            .collect();
        let index_bytes = parts.checkpoints.as_ref().expect("attached index");
        manifest.push_str(&format!(
            "\n[[checkpoint]]\nname = \"{name}\"\ngenerator = \"{gen}\"\nencoding = \"{}\"\n\
             path = \"checkpoints/{name}\"\ninterval = {interval}\ntimeline_len = {}\n\
             crc = \"0x{:08x}\"\nseek_targets = [{}]\nseek_fingerprints = [{}]\n",
            encoding.name(),
            engine.timeline_len(),
            crc32::checksum(index_bytes),
            targets.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", "),
            fingerprints.join(", "),
        ));
    }

    // Store: two committed entries, one per generator. The store layout
    // (manifest + block compression) is timestamp-free, so these bytes
    // are reproducible.
    let store = qr_store::RecordingStore::open(&root.join("store")).expect("open golden store");
    for (gen, encoding) in [("hello", Encoding::Delta), ("fft2", Encoding::Raw)] {
        let rec = recording_for(gen);
        let id = store
            .put_parts(gen, &rec.to_parts(encoding), encoding, rec.fingerprint)
            .expect("commit store fixture");
        manifest.push_str(&format!(
            "\n[[store_entry]]\nid = {id}\nname = \"{gen}\"\ngenerator = \"{gen}\"\n\
             encoding = \"{}\"\nfingerprint = \"0x{:016x}\"\n",
            encoding.name(),
            rec.fingerprint,
        ));
    }

    let trace = qr_obs::trace::to_bytes(&golden_trace_events());
    std::fs::write(root.join("trace/hello.qrt"), &trace).expect("write trace fixture");
    manifest.push_str(&format!(
        "\n[[aux]]\nname = \"trace-hello\"\npath = \"trace/hello.qrt\"\nkind = \"trace-journal\"\n\
         records = {}\ncrc = \"0x{:08x}\"\n",
        golden_trace_events().len(),
        crc32::checksum(&trace),
    ));

    let mut wire = frame::Writer::new(PayloadKind::Wire);
    for req in &golden_wire_requests() {
        wire.record(&qr_server::proto::encode_request(req));
    }
    let wire = wire.finish();
    std::fs::write(root.join("wire/requests.qrw"), &wire).expect("write wire fixture");
    manifest.push_str(&format!(
        "\n[[aux]]\nname = \"wire-requests\"\npath = \"wire/requests.qrw\"\nkind = \"wire\"\n\
         records = {}\ncrc = \"0x{:08x}\"\n",
        golden_wire_requests().len(),
        crc32::checksum(&wire),
    ));

    let mut failures = String::from(
        "# Shapes the current readers must REFUSE, and how. Each entry is\n\
         # asserted by tests/golden_conformance.rs; the reject files are\n\
         # regenerated together with this registry by:\n\
         #   QR_GOLDEN_REGEN=1 cargo test --test golden_conformance\n",
    );
    for reject in reject_fixtures() {
        std::fs::write(root.join(reject.file), &reject.bytes).expect("write reject fixture");
        failures.push_str(&format!(
            "\n[[reject]]\nname = \"{}\"\nfile = \"{}\"\ndecoder = \"{}\"\n\
             error_contains = \"{}\"\nreason = \"{}\"\n",
            reject.name,
            reject.file,
            reject.decoder,
            tomlmini::escape(&reject.error_contains),
            reject.reason,
        ));
    }

    std::fs::write(root.join("MANIFEST.toml"), manifest).expect("write manifest");
    std::fs::write(root.join("KNOWN_FAILURES.toml"), failures).expect("write known failures");
}

fn manifest_doc() -> tomlmini::Doc {
    maybe_regen();
    let text = std::fs::read_to_string(golden_root().join("MANIFEST.toml"))
        .expect("tests/golden/MANIFEST.toml (run QR_GOLDEN_REGEN=1 to create)");
    tomlmini::parse(&text).expect("parse MANIFEST.toml")
}

// ---------------------------------------------------------------------
// Conformance battery
// ---------------------------------------------------------------------

#[test]
fn fixtures_replay_to_pinned_fingerprints() {
    let doc = manifest_doc();
    let fixtures = doc.sections_named("fixture");
    assert_eq!(fixtures.len(), GENERATORS.len() * Encoding::ALL.len());
    for fx in fixtures {
        let name = fx.require_str("name").unwrap();
        let dir = golden_root().join(fx.require_str("path").unwrap());
        let parts = RecordingParts::read(&dir).expect("read fixture");
        assert_eq!(RecordingVersion::detect(&parts), RecordingVersion::V3, "{name}");
        let rec = Recording::from_parts(&parts).expect("decode fixture");
        let program = generator_program(fx.require_str("generator").unwrap());
        let outcome = replay_and_verify(&program, &rec)
            .unwrap_or_else(|e| panic!("replaying {name}: {e}"));
        let pinned = parse_hex(fx.require_str("fingerprint").unwrap());
        assert_eq!(outcome.fingerprint, pinned, "fixture {name} diverged from its pin");
        assert_eq!(
            rec.chunks.packets().len() as i64,
            fx.require_int("chunks").unwrap(),
            "{name}"
        );
    }
}

#[test]
fn fixture_file_crcs_match_manifest() {
    let doc = manifest_doc();
    for fx in doc.sections_named("fixture") {
        let dir = golden_root().join(fx.require_str("path").unwrap());
        let names = fx.get("files").and_then(|v| v.as_array()).expect("files array");
        let crcs = fx.get("crcs").and_then(|v| v.as_array()).expect("crcs array");
        assert_eq!(names.len(), crcs.len());
        for (file, crc) in names.iter().zip(crcs) {
            let file = file.as_str().expect("file name");
            let bytes = std::fs::read(dir.join(file)).expect("read pinned file");
            assert_eq!(
                crc32::checksum(&bytes),
                parse_hex(crc.as_str().expect("crc string")) as u32,
                "{} drifted from its pinned CRC",
                dir.join(file).display()
            );
        }
    }
}

#[test]
fn regenerating_fixtures_is_byte_identical() {
    let doc = manifest_doc();
    for fx in doc.sections_named("fixture") {
        let name = fx.require_str("name").unwrap();
        let rec = recording_for(fx.require_str("generator").unwrap());
        let encoding = encoding_named(fx.require_str("encoding").unwrap());
        let dir = golden_root().join(fx.require_str("path").unwrap());
        for (file, bytes) in rec.to_parts(encoding).files() {
            let pinned = std::fs::read(dir.join(file)).expect("read pinned file");
            assert_eq!(
                bytes,
                pinned.as_slice(),
                "re-recording {name} no longer reproduces {file} byte-for-byte"
            );
        }
    }
    // Partial-order fixtures regenerate byte-identically too: the
    // derived order log is a pure function of the seeded execution.
    for fx in doc.sections_named("order") {
        let name = fx.require_str("name").unwrap();
        let encoding = encoding_named(fx.require_str("encoding").unwrap());
        let dir = golden_root().join(fx.require_str("path").unwrap());
        for (file, bytes) in order_recording().to_parts(encoding).files() {
            let pinned = std::fs::read(dir.join(file)).expect("read pinned file");
            assert_eq!(
                bytes,
                pinned.as_slice(),
                "re-recording {name} no longer reproduces {file} byte-for-byte"
            );
        }
    }
}

#[test]
fn salvage_outcomes_match_pins() {
    let doc = manifest_doc();
    let mut checked = 0;
    for section in ["fixture", "legacy"] {
        for fx in doc.sections_named(section) {
            let name = fx.require_str("name").unwrap();
            let dir = golden_root().join(fx.require_str("path").unwrap());
            let chunks = std::fs::read(dir.join("chunks.qrl")).expect("read chunk log");
            let cut = fx.require_int("salvage_cut").unwrap() as usize;
            let (log, _report) = ChunkLog::salvage_from_bytes(&chunks[..cut]);
            assert_eq!(
                log.packets().len() as i64,
                fx.require_int("salvage_chunks").unwrap(),
                "salvage of {section}/{name} cut at {cut} drifted from its pin"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 2 * GENERATORS.len() * Encoding::ALL.len());
}

#[test]
fn version_matrix_migrates_every_generation_to_current() {
    let doc = manifest_doc();
    let tmp = scratch("matrix");
    for fx in doc.sections_named("legacy") {
        let name = fx.require_str("name").unwrap();
        let pinned = parse_hex(fx.require_str("fingerprint").unwrap());
        let v3_dir = golden_root().join(format!("v3/{name}"));

        // v1 → v3.
        let dir = tmp.join(format!("v1-{name}"));
        copy_dir(&golden_root().join(fx.require_str("path").unwrap()), &dir);
        let report = quickrec::migrate::migrate(&dir).expect("migrate v1");
        assert!(report.changed, "{name}: v1 migrate must rewrite");
        assert_eq!((report.from.number(), report.to.number()), (1, 3), "{name}");
        assert_eq!(report.fingerprint, pinned, "{name}: migrate changed the execution");

        // v2 (v3 minus the format manifest) → v3 must land byte-identical
        // to the committed v3 fixture.
        let dir = tmp.join(format!("v2-{name}"));
        copy_dir(&v3_dir, &dir);
        std::fs::remove_file(dir.join("format.qrv")).expect("strip format manifest");
        let report = quickrec::migrate::migrate(&dir).expect("migrate v2");
        assert_eq!(
            (report.from.number(), report.to.number(), report.changed),
            (2, 3, true),
            "{name}"
        );
        assert_eq!(
            dir_snapshot(&dir),
            dir_snapshot(&v3_dir),
            "{name}: v2 migrate is not byte-identical to the committed v3 fixture"
        );

        // Migrating a current recording is a byte-level no-op.
        let before = dir_snapshot(&dir);
        let report = quickrec::migrate::migrate(&dir).expect("re-migrate");
        assert!(!report.changed, "{name}: second migrate must be a no-op");
        assert_eq!(dir_snapshot(&dir), before, "{name}: no-op migrate changed bytes");

        // Replay after migration still matches the pin.
        let rec = Recording::load(&dir).expect("load migrated");
        let program = generator_program(fx.require_str("generator").unwrap());
        let outcome = replay_and_verify(&program, &rec).expect("replay migrated");
        assert_eq!(outcome.fingerprint, pinned, "{name}");
    }
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn interrupted_migrations_always_recover() {
    use quickrec::migrate::{migrate_with_crash, CrashPoint};
    maybe_regen();
    let tmp = scratch("crash");
    let src = golden_root().join("v1/hello-delta");
    let pinned = {
        let doc = manifest_doc();
        let fx = doc.sections_named("legacy");
        let fx = fx.iter().find(|f| f.require_str("name").unwrap() == "hello-delta").unwrap();
        parse_hex(fx.require_str("fingerprint").unwrap())
    };
    for (i, crash) in
        [CrashPoint::AfterStage, CrashPoint::AfterBackup, CrashPoint::AfterSwap].iter().enumerate()
    {
        let dir = tmp.join(format!("crash-{i}"));
        copy_dir(&src, &dir);
        let err = migrate_with_crash(&dir, Some(*crash)).expect_err("injected crash");
        assert!(err.to_string().contains("injected crash"), "{err}");
        // A fresh migrate (which runs recovery first) must complete the
        // upgrade no matter where the previous run died.
        let report = quickrec::migrate::migrate(&dir).expect("migrate after crash");
        assert_eq!(report.to.number(), 3);
        assert_eq!(report.fingerprint, pinned, "crash point {i} corrupted the recording");
        let leftovers: Vec<String> = std::fs::read_dir(&tmp)
            .expect("read scratch")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".qr-migrate-"))
            .collect();
        assert!(leftovers.is_empty(), "crash point {i} left protocol dirs: {leftovers:?}");
    }
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn checkpoint_fixtures_seek_to_pinned_fingerprints() {
    let doc = manifest_doc();
    let sections = doc.sections_named("checkpoint");
    assert_eq!(sections.len(), CHECKPOINT_FIXTURES.len());
    for fx in sections {
        let name = fx.require_str("name").unwrap();
        let gen = fx.require_str("generator").unwrap();
        let interval = fx.require_int("interval").unwrap() as usize;
        let dir = golden_root().join(fx.require_str("path").unwrap());
        let parts = RecordingParts::read(&dir).expect("read checkpoint fixture");
        let index_bytes = parts.checkpoints.clone().expect("fixture has checkpoints.qrc");
        assert_eq!(
            crc32::checksum(&index_bytes),
            parse_hex(fx.require_str("crc").unwrap()) as u32,
            "{name}: checkpoints.qrc drifted from its pinned CRC"
        );

        // The rewritten format manifest must list the new payload kind.
        let manifest = FormatManifest::from_bytes(parts.format.as_ref().expect("format manifest"))
            .expect("decode manifest");
        assert!(
            manifest.payloads.contains(&PayloadKind::CheckpointIndex),
            "{name}: manifest does not list the checkpoint index"
        );

        let rec = Recording::from_parts(&parts).expect("decode checkpoint fixture");
        let program = generator_program(gen);

        // Rebuilding the index from the logs is byte-identical: the
        // sidecar is a pure function of the recording.
        let rebuilt = CheckpointIndex::build(&program, &rec, interval).expect("rebuild index");
        assert_eq!(rebuilt.to_bytes(), index_bytes, "{name}: index regeneration drifted");

        // Every pinned seek target lands on the pinned fingerprint,
        // both through the persisted index and from scratch.
        let mut with_index = QueryEngine::new(&program, &rec).expect("engine");
        assert!(with_index.attach_index_bytes(&index_bytes), "{name}: fixture index rejected");
        let without_index = QueryEngine::new(&program, &rec).expect("engine");
        let targets = fx.get("seek_targets").and_then(|v| v.as_array()).expect("seek_targets");
        let pins = fx.get("seek_fingerprints").and_then(|v| v.as_array()).expect("pins");
        assert_eq!(targets.len(), pins.len());
        for (target, pin) in targets.iter().zip(pins) {
            let target = target.as_int().expect("seek target") as usize;
            let pin = parse_hex(pin.as_str().expect("fingerprint"));
            for (engine, how) in [(&with_index, "indexed"), (&without_index, "from scratch")] {
                let rp = engine.seek(target).expect("seek");
                assert_eq!(rp.position(), target, "{name}@{target} ({how})");
                assert_eq!(
                    rp.partial_fingerprint(),
                    pin,
                    "{name}: {how} seek to {target} diverged from its pin"
                );
            }
        }

        // Out of range: a structured error, never a panic.
        let len = fx.require_int("timeline_len").unwrap() as usize;
        let err = with_index.seek(len + 1).expect_err("out-of-range seek");
        assert!(matches!(err, QrError::InvalidConfig(_)), "{name}: {err:?}");

        // `quickrec migrate` treats the sidecar-bearing recording as
        // current (byte-level no-op, sidecar preserved) and treats an
        // index-less copy as equally valid: the index is optional and
        // regenerable, never required.
        let tmp = scratch(&format!("ckpt-{name}"));
        let with_dir = tmp.join("with-index");
        copy_dir(&dir, &with_dir);
        let report = quickrec::migrate::migrate(&with_dir).expect("migrate with index");
        assert!(!report.changed, "{name}: migrate rewrote a current recording");
        assert_eq!(dir_snapshot(&with_dir), dir_snapshot(&dir), "{name}: migrate changed bytes");
        let stripped_dir = tmp.join("index-less");
        copy_dir(&dir, &stripped_dir);
        std::fs::remove_file(stripped_dir.join("checkpoints.qrc")).expect("strip index");
        let report = quickrec::migrate::migrate(&stripped_dir).expect("migrate index-less");
        assert!(!report.changed, "{name}: index-less recording is not treated as current");
        Recording::load(&stripped_dir).expect("index-less recording loads");
        std::fs::remove_dir_all(&tmp).ok();
    }
}

#[test]
fn store_entries_fetch_byte_identical_parts() {
    let doc = manifest_doc();
    // Copy the committed store first: opening a store is allowed to sweep
    // staging litter, and the golden tree must never be written by tests.
    let tmp = scratch("store");
    copy_dir(&golden_root().join("store"), &tmp);
    let store = qr_store::RecordingStore::open(&tmp).expect("open store fixture");
    let entries = doc.sections_named("store_entry");
    assert_eq!(entries.len(), 2);
    for entry in entries {
        let id = entry.require_int("id").unwrap() as u64;
        let (manifest, parts) = store.fetch_parts(id).expect("fetch store entry");
        assert_eq!(manifest.name, entry.require_str("name").unwrap());
        assert_eq!(manifest.encoding, encoding_named(entry.require_str("encoding").unwrap()));
        let pinned = parse_hex(entry.require_str("fingerprint").unwrap());
        assert_eq!(manifest.fingerprint, pinned);
        // The store round-trip must hand back exactly the committed v3
        // fixture bytes for the same generator + encoding.
        let golden =
            golden_root().join(format!("v3/{}-{}", manifest.name, manifest.encoding.name()));
        for (file, bytes) in parts.files() {
            let pinned = std::fs::read(golden.join(file)).expect("read pinned file");
            assert_eq!(bytes, pinned.as_slice(), "store entry {id} {file} differs from fixture");
        }
        assert!(store.verify(id).expect("verify store entry").all_ok());
    }
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn trace_and_wire_fixtures_round_trip() {
    let doc = manifest_doc();
    for aux in doc.sections_named("aux") {
        let path = golden_root().join(aux.require_str("path").unwrap());
        let bytes = std::fs::read(&path).expect("read aux fixture");
        assert_eq!(crc32::checksum(&bytes), parse_hex(aux.require_str("crc").unwrap()) as u32);
        let records = aux.require_int("records").unwrap() as usize;
        match aux.require_str("kind").unwrap() {
            "trace-journal" => {
                let events = qr_obs::trace::from_bytes(&bytes).expect("decode trace");
                assert_eq!(events.len(), records);
                assert_eq!(events, golden_trace_events());
                assert_eq!(qr_obs::trace::to_bytes(&events), bytes, "trace re-encode drifted");
            }
            "wire" => {
                let payloads =
                    frame::read(&bytes, PayloadKind::Wire, "wire capture").expect("framed wire");
                assert_eq!(payloads.len(), records);
                for (payload, expected) in payloads.iter().zip(golden_wire_requests()) {
                    let req = qr_server::proto::decode_request(payload).expect("decode request");
                    assert_eq!(req, expected);
                    assert_eq!(
                        qr_server::proto::encode_request(&req).as_slice(),
                        *payload,
                        "wire re-encode drifted"
                    );
                }
            }
            other => panic!("unknown aux kind {other:?}"),
        }
    }
}

#[test]
fn encodings_are_differentially_equivalent() {
    maybe_regen();
    // The same seeded execution, stored under every encoding, must
    // round-trip through disk to one replay fingerprint.
    let tmp = scratch("diff");
    let mut rng = SplitMix64::new(0x90_1d_e2);
    for case in 0..3u32 {
        let mut cfg = RecordingConfig::with_cores(2);
        cfg.os.input_seed = rng.next_u64();
        let program = generator_program("hello");
        let rec = record(program.clone(), cfg).expect("record seeded run");
        let mut fingerprints = Vec::new();
        for encoding in Encoding::ALL {
            let dir = tmp.join(format!("case-{case}-{}", encoding.name()));
            rec.to_parts(encoding).save(&dir).expect("save");
            let loaded = Recording::load(&dir).expect("load");
            let outcome = replay_and_verify(&program, &loaded).expect("replay");
            fingerprints.push(outcome.fingerprint);
        }
        assert_eq!(fingerprints[0], rec.fingerprint, "case {case}");
        assert!(
            fingerprints.iter().all(|&f| f == fingerprints[0]),
            "case {case}: encodings diverged: {fingerprints:x?}"
        );
    }
    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn mutated_fixtures_fail_structurally_never_panic() {
    maybe_regen();
    // The order fixture carries every recording part the format has —
    // meta, chunks, inputs, footprints, format manifest AND order.qrp —
    // so one campaign covers them all.
    for dir in ["v3/hello-packed", "order/fft2-packed"] {
        let dir = golden_root().join(dir);
        let clean = RecordingParts::read(&dir).expect("read fixture");
        let baseline = Recording::from_parts(&clean).expect("clean fixture decodes").fingerprint;
        let mut rng = SplitMix64::new(0xbadf00d);
        let files = clean.files().len();
        for trial in 0..120 {
            let mut parts = clean.clone();
            let target = rng.below(files as u64) as usize;
            {
                let (name, _) = parts.files()[target];
                let bytes: &mut Vec<u8> = match name {
                    "meta.qrm" => &mut parts.meta,
                    "chunks.qrl" => &mut parts.chunks,
                    "inputs.qrl" => &mut parts.inputs,
                    "footprints.qrl" => parts.footprints.as_mut().expect("fixture has footprints"),
                    "format.qrv" => parts.format.as_mut().expect("fixture has format manifest"),
                    "order.qrp" => parts.order.as_mut().expect("fixture has order log"),
                    other => panic!("unexpected part {other:?}"),
                };
                let bit = rng.below(bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Recording::from_parts(&parts).map(|rec| rec.fingerprint)
            }));
            match outcome {
                Err(_) => panic!("trial {trial}: bit flip caused a panic"),
                // Every byte of every file sits under a frame CRC, so a
                // flip may only surface as a structured error...
                Ok(Err(QrError::Corrupt { .. }))
                | Ok(Err(QrError::LogDecode(_)))
                | Ok(Err(QrError::Unsupported(_))) => {}
                Ok(Err(other)) => panic!("trial {trial}: unstructured failure {other:?}"),
                // ...except a flip that only touches salvage-irrelevant
                // padding cannot happen here: decode must not quietly
                // produce a different execution.
                Ok(Ok(fp)) => assert_eq!(fp, baseline, "trial {trial}: silent corruption"),
            }
        }
    }
}

#[test]
fn order_fixtures_replay_to_pinned_fingerprints() {
    let doc = manifest_doc();
    let sections = doc.sections_named("order");
    assert_eq!(sections.len(), Encoding::ALL.len());
    let program = generator_program(ORDER_GENERATOR);
    for fx in sections {
        let name = fx.require_str("name").unwrap();
        let dir = golden_root().join(fx.require_str("path").unwrap());
        let parts = RecordingParts::read(&dir).expect("read order fixture");
        assert_eq!(RecordingVersion::detect(&parts), RecordingVersion::V4, "{name}");
        let order_bytes = parts.order.clone().expect("fixture has order.qrp");
        assert_eq!(
            crc32::checksum(&order_bytes),
            parse_hex(fx.require_str("order_crc").unwrap()) as u32,
            "{name}: order.qrp drifted from its pinned CRC"
        );
        let rec = Recording::from_parts(&parts).expect("decode order fixture");
        let order = rec.order.as_ref().expect("decoded recording carries the order log");
        assert_eq!(order.node_count() as i64, fx.require_int("nodes").unwrap(), "{name}");
        assert_eq!(order.edges().len() as i64, fx.require_int("edges").unwrap(), "{name}");

        // The manifest must claim v4 and list the order-log payload.
        let manifest = FormatManifest::from_bytes(parts.format.as_ref().expect("format manifest"))
            .expect("decode manifest");
        assert!(manifest.payloads.contains(&PayloadKind::OrderLog), "{name}");

        // Serial and parallel ordered replays land on the pinned
        // fingerprint — the conformance core of the partial-order format.
        let pinned = parse_hex(fx.require_str("fingerprint").unwrap());
        for jobs in [1, 2] {
            let outcome = replay_ordered_and_verify(&program, &rec, jobs)
                .unwrap_or_else(|e| panic!("{name}: ordered replay jobs={jobs}: {e}"));
            assert_eq!(outcome.fingerprint, pinned, "{name} jobs={jobs}");
        }

        // A truncated order.qrp salvages to a clean edge prefix, and the
        // strict decoder refuses it.
        let cut = order_bytes.len() * 2 / 3;
        let (salvaged, report) = OrderLog::salvage_from_bytes(&order_bytes[..cut]);
        assert!(report.corruption.is_some(), "{name}: truncation not reported");
        assert!(
            salvaged.edges().len() <= order.edges().len(),
            "{name}: salvage invented edges"
        );
        assert!(
            order.edges().starts_with(salvaged.edges()),
            "{name}: salvage is not a clean prefix"
        );
        assert!(OrderLog::from_bytes(&order_bytes[..cut]).is_err(), "{name}: strict mode");

        // `quickrec migrate` treats a v4 recording as current.
        let tmp = scratch(&format!("order-{name}"));
        copy_dir(&dir, &tmp);
        let report = quickrec::migrate::migrate(&tmp).expect("migrate v4");
        assert!(!report.changed, "{name}: migrate rewrote a v4 recording");
        assert_eq!(dir_snapshot(&tmp), dir_snapshot(&dir), "{name}: migrate changed bytes");
        std::fs::remove_dir_all(&tmp).ok();
    }
}

#[test]
fn every_payload_kind_is_covered_by_a_fixture() {
    maybe_regen();
    let root = golden_root();
    // Exhaustive match, no wildcard: adding a PayloadKind without
    // extending the golden suite fails to compile right here.
    for kind in PayloadKind::ALL {
        let covering: PathBuf = match kind {
            PayloadKind::ChunkLog => root.join("v3/hello-raw/chunks.qrl"),
            PayloadKind::InputLog => root.join("v3/hello-raw/inputs.qrl"),
            PayloadKind::Meta => root.join("v3/hello-raw/meta.qrm"),
            PayloadKind::FootprintLog => root.join("v3/hello-raw/footprints.qrl"),
            PayloadKind::Wire => root.join("wire/requests.qrw"),
            PayloadKind::CompressedLog => root.join("store/rec-00000001/chunks.qrl.z"),
            PayloadKind::StoreManifest => root.join("store/rec-00000001/manifest.qrs"),
            PayloadKind::TraceJournal => root.join("trace/hello.qrt"),
            PayloadKind::FormatManifest => root.join("v3/hello-raw/format.qrv"),
            PayloadKind::CheckpointIndex => root.join("checkpoints/hello-delta/checkpoints.qrc"),
            PayloadKind::OrderLog => root.join("order/fft2-delta/order.qrp"),
        };
        let bytes = std::fs::read(&covering).unwrap_or_else(|e| {
            panic!("no golden fixture covers {}: {} ({e})", kind.name(), covering.display())
        });
        assert!(frame::is_framed(&bytes), "{} fixture is not framed", kind.name());
        assert_eq!(
            bytes[frame::HEADER_LEN - 1],
            kind.code(),
            "{} fixture carries the wrong kind byte",
            kind.name()
        );
    }
}

#[test]
fn known_failures_are_rejected_with_pinned_errors() {
    maybe_regen();
    let text = std::fs::read_to_string(golden_root().join("KNOWN_FAILURES.toml"))
        .expect("tests/golden/KNOWN_FAILURES.toml");
    let doc = tomlmini::parse(&text).expect("parse KNOWN_FAILURES.toml");
    let rejects = doc.sections_named("reject");
    assert_eq!(rejects.len(), reject_fixtures().len(), "registry out of sync with generators");
    for reject in rejects {
        let name = reject.require_str("name").unwrap();
        let bytes = std::fs::read(golden_root().join(reject.require_str("file").unwrap()))
            .expect("read reject fixture");
        let needle = reject.require_str("error_contains").unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_decoder(reject.require_str("decoder").unwrap(), &bytes)
        }));
        match result {
            Err(_) => panic!("{name}: decoder panicked"),
            Ok(Ok(())) => panic!("{name}: decoder accepted a shape pinned as unsupported"),
            Ok(Err(err)) => assert!(
                err.to_string().contains(needle),
                "{name}: error {err:?} does not contain pinned text {needle:?}"
            ),
        }
    }
}
