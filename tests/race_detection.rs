//! End-to-end race detection on replayed recordings: properly
//! synchronized programs report no races; deliberately racy ones report
//! exactly the racy words, deterministically.

use qr_isa::{abi, Asm, Reg};
use qr_replay::replay_with_race_detection;
use quickrec::{record, RecordingConfig};

fn sys(a: &mut Asm, number: u32, set_args: impl FnOnce(&mut Asm)) {
    a.movi_u(Reg::R0, number);
    set_args(a);
    a.syscall();
}

/// Two threads hammering a counter WITHOUT synchronization.
fn lost_update_program() -> quickrec::Program {
    let mut a = Asm::with_name("lost-update");
    a.data_word("counter", &[0]);
    sys(&mut a, abi::SYS_SPAWN, |a| {
        a.movi_sym(Reg::R1, "loop_entry");
        a.movi(Reg::R2, 0);
    });
    a.mov(Reg::R6, Reg::R0);
    a.call("incr");
    sys(&mut a, abi::SYS_JOIN, |a| {
        a.mov(Reg::R1, Reg::R6);
    });
    sys(&mut a, abi::SYS_EXIT, |a| {
        a.movi_sym(Reg::R2, "counter");
        a.ld(Reg::R1, Reg::R2, 0);
    });
    a.label("loop_entry");
    a.call("incr");
    sys(&mut a, abi::SYS_EXIT, |a| {
        a.movi(Reg::R1, 0);
    });
    a.label("incr");
    a.movi(Reg::R7, 60);
    a.movi_sym(Reg::R8, "counter");
    a.label("again");
    a.ld(Reg::R9, Reg::R8, 0);
    a.addi(Reg::R9, Reg::R9, 1);
    a.st(Reg::R8, 0, Reg::R9);
    a.addi(Reg::R7, Reg::R7, -1);
    a.bnez(Reg::R7, "again");
    a.ret();
    a.finish().unwrap()
}

/// Same counter, but incremented with the atomic `xadd`.
fn atomic_counter_program() -> quickrec::Program {
    let mut a = Asm::with_name("atomic-counter");
    a.data_word("counter", &[0]);
    sys(&mut a, abi::SYS_SPAWN, |a| {
        a.movi_sym(Reg::R1, "loop_entry");
        a.movi(Reg::R2, 0);
    });
    a.mov(Reg::R6, Reg::R0);
    a.call("incr");
    sys(&mut a, abi::SYS_JOIN, |a| {
        a.mov(Reg::R1, Reg::R6);
    });
    sys(&mut a, abi::SYS_EXIT, |a| {
        a.movi_sym(Reg::R2, "counter");
        a.ld(Reg::R1, Reg::R2, 0);
    });
    a.label("loop_entry");
    a.call("incr");
    sys(&mut a, abi::SYS_EXIT, |a| {
        a.movi(Reg::R1, 0);
    });
    a.label("incr");
    a.movi(Reg::R7, 60);
    a.movi_sym(Reg::R8, "counter");
    a.movi(Reg::R9, 1);
    a.label("again");
    a.fetch_add(Reg::R10, Reg::R8, Reg::R9);
    a.addi(Reg::R7, Reg::R7, -1);
    a.bnez(Reg::R7, "again");
    a.ret();
    a.finish().unwrap()
}

#[test]
fn lost_update_race_is_detected_on_the_counter_word() {
    let program = lost_update_program();
    let counter = program.symbol("counter").unwrap();
    let recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
    let (outcome, report) = replay_with_race_detection(&program, &recording).unwrap();
    assert_eq!(outcome.exit_code, recording.exit_code);
    assert!(!report.is_empty(), "the unsynchronized counter must race");
    assert!(
        report.races().iter().any(|r| r.addr == counter),
        "the counter word must be among the racy addresses: {:?}",
        report.races()
    );
}

#[test]
fn atomic_counter_is_race_free_and_loses_nothing() {
    let program = atomic_counter_program();
    let recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
    assert_eq!(recording.exit_code, 120, "atomics lose no increments");
    let (_, report) = replay_with_race_detection(&program, &recording).unwrap();
    assert!(report.is_empty(), "atomic increments must not race: {:?}", report.races());
}

#[test]
fn race_reports_are_deterministic() {
    let program = lost_update_program();
    let recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
    let (_, a) = replay_with_race_detection(&program, &recording).unwrap();
    let (_, b) = replay_with_race_detection(&program, &recording).unwrap();
    assert_eq!(a, b, "same recording, same report");
}

#[test]
fn the_synchronized_workload_suite_is_race_free() {
    for spec in quickrec::workloads::suite() {
        let program = (spec.build)(3, quickrec::workloads::Scale::Test).unwrap();
        let recording = record(program.clone(), RecordingConfig::with_cores(3)).unwrap();
        let (_, report) = replay_with_race_detection(&program, &recording).unwrap();
        assert!(
            report.is_empty(),
            "{} must be race-free, found: {:?}",
            spec.name,
            report.races().iter().take(5).collect::<Vec<_>>()
        );
    }
}

#[test]
fn races_survive_preemption_heavy_schedules() {
    let program = lost_update_program();
    let mut cfg = RecordingConfig::with_cores(1);
    cfg.os.quantum_cycles = 700; // single core, aggressive switching
    let recording = record(program.clone(), cfg).unwrap();
    let (_, report) = replay_with_race_detection(&program, &recording).unwrap();
    // Even on one core, the unsynchronized accesses are unordered by
    // happens-before, so the race is still reported.
    assert!(!report.is_empty(), "races are about ordering, not parallelism");
}
