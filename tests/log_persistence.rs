//! Logs survive serialization: a recording written to bytes (chunk log +
//! input log) and read back must still replay exactly — the property a
//! real deployment relies on when logs are stored for later debugging.

use quickrec::{record, replay_and_verify, ChunkLog, Encoding, InputLog, RecordingConfig};

fn recorded() -> (quickrec::Program, quickrec::Recording) {
    let spec = quickrec::workloads::find("water").expect("water exists");
    let program = (spec.build)(3, quickrec::workloads::Scale::Test).expect("builds");
    let recording = record(program.clone(), RecordingConfig::with_cores(2)).expect("records");
    (program, recording)
}

#[test]
fn chunk_log_round_trips_in_every_encoding() {
    let (_, recording) = recorded();
    for encoding in Encoding::ALL {
        let bytes = recording.chunks.to_bytes(encoding);
        let decoded = ChunkLog::from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded, recording.chunks, "{encoding:?}");
    }
}

#[test]
fn input_log_round_trips() {
    let (_, recording) = recorded();
    let bytes = recording.inputs.to_bytes();
    let decoded = InputLog::from_bytes(&bytes).expect("decodes");
    assert_eq!(decoded, recording.inputs);
}

#[test]
fn replay_from_deserialized_logs_is_still_exact() {
    let (program, recording) = recorded();
    // Simulate storing the logs and loading them later.
    let chunk_bytes = recording.chunks.to_bytes(Encoding::Delta);
    let input_bytes = recording.inputs.to_bytes();
    let mut reloaded = recording.clone();
    reloaded.chunks = ChunkLog::from_bytes(&chunk_bytes).expect("chunks decode");
    reloaded.inputs = InputLog::from_bytes(&input_bytes).expect("inputs decode");
    let outcome = replay_and_verify(&program, &reloaded).expect("replays from stored logs");
    assert_eq!(outcome.exit_code, recording.exit_code);
}

#[test]
fn log_files_round_trip_through_disk() {
    let (program, recording) = recorded();
    let dir = std::env::temp_dir().join(format!("quickrec-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let chunk_path = dir.join("chunks.qrl");
    let input_path = dir.join("inputs.qrl");
    std::fs::write(&chunk_path, recording.chunks.to_bytes(Encoding::Packed)).expect("write");
    std::fs::write(&input_path, recording.inputs.to_bytes()).expect("write");

    let mut reloaded = recording.clone();
    reloaded.chunks =
        ChunkLog::from_bytes(&std::fs::read(&chunk_path).expect("read")).expect("decode");
    reloaded.inputs =
        InputLog::from_bytes(&std::fs::read(&input_path).expect("read")).expect("decode");
    replay_and_verify(&program, &reloaded).expect("replays from disk");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recording_save_load_round_trips_and_replays() {
    let (program, recording) = recorded();
    let dir = std::env::temp_dir().join(format!("quickrec-saveload-{}", std::process::id()));
    recording.save(&dir, Encoding::Delta).expect("saves");
    let loaded = quickrec::Recording::load(&dir).expect("loads");
    assert_eq!(loaded.chunks, recording.chunks);
    assert_eq!(loaded.inputs, recording.inputs);
    assert_eq!(loaded.meta, recording.meta);
    assert_eq!(loaded.fingerprint, recording.fingerprint);
    assert_eq!(loaded.console, recording.console);
    replay_and_verify(&program, &loaded).expect("replays from saved recording");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loading_garbage_meta_fails_cleanly() {
    let dir = std::env::temp_dir().join(format!("quickrec-garbage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(quickrec::Recording::META_FILE), b"not a recording").unwrap();
    std::fs::write(dir.join(quickrec::Recording::CHUNKS_FILE), b"").unwrap();
    std::fs::write(dir.join(quickrec::Recording::INPUTS_FILE), b"").unwrap();
    assert!(quickrec::Recording::load(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_stored_logs_are_rejected_not_misreplayed() {
    let (program, recording) = recorded();
    let mut bytes = recording.chunks.to_bytes(Encoding::Delta);
    // Flip a byte somewhere in the packet payload region.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    match ChunkLog::from_bytes(&bytes) {
        Err(_) => {} // decode refused: fine
        Ok(decoded) => {
            // Decoded into *something*: replay must then detect the
            // divergence rather than silently produce a different run.
            let mut reloaded = recording.clone();
            reloaded.chunks = decoded;
            assert!(
                replay_and_verify(&program, &reloaded).is_err(),
                "corrupt log must not verify"
            );
        }
    }
}
