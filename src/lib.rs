#![warn(missing_docs)]

//! **QuickRec-RS** — record and replay of multithreaded programs on a
//! simulated multicore IA-like platform.
//!
//! A from-scratch reproduction of *QuickRec: prototyping an Intel
//! architecture extension for record and replay of multithreaded
//! programs* (Pokam et al., ISCA 2013). The original prototype put
//! chunk-based memory-race-recording hardware into FPGA-emulated Pentium
//! cores and managed it with Capo3, a modified Linux kernel. This crate
//! reproduces the whole stack in simulation:
//!
//! | Layer | Crate |
//! |---|---|
//! | recording hardware (signatures, chunks, CBUF/CMEM, encodings) | [`quickrec_core`] |
//! | multicore machine (cores, MESI caches, snoopy bus, TSO) | [`qr_cpu`], [`qr_mem`] |
//! | PIA instruction set + assemblers | [`qr_isa`] |
//! | kernel (threads, scheduler, futex, signals) | [`qr_os`] |
//! | Capo3 software stack (spheres, input log, overhead model) | [`qr_capo`] |
//! | deterministic replayer | [`qr_replay`] |
//! | SPLASH-2-style workloads | [`qr_workloads`] |
//!
//! # Quickstart
//!
//! Record a multithreaded workload and replay it deterministically:
//!
//! ```
//! use quickrec::{record, replay_and_verify, RecordingConfig};
//!
//! let spec = quickrec::workloads::find("fft").expect("fft is in the suite");
//! let program = (spec.build)(4, quickrec::workloads::Scale::Test)?;
//!
//! let recording = record(program.clone(), RecordingConfig::with_cores(4))?;
//! assert_eq!(recording.exit_code, (spec.expected)(4, quickrec::workloads::Scale::Test));
//!
//! let outcome = replay_and_verify(&program, &recording)?;
//! assert_eq!(outcome.fingerprint, recording.fingerprint);
//! # Ok::<(), qr_common::QrError>(())
//! ```
//!
//! Write your own guest program with the assembler:
//!
//! ```
//! use quickrec::{record, RecordingConfig};
//! use qr_isa::{abi, Asm, Reg};
//!
//! let mut a = Asm::new();
//! a.movi_u(Reg::R0, abi::SYS_EXIT);
//! a.movi(Reg::R1, 7);
//! a.syscall();
//! let recording = record(a.finish()?, RecordingConfig::with_cores(1))?;
//! assert_eq!(recording.exit_code, 7);
//! # Ok::<(), qr_common::QrError>(())
//! ```

pub use qr_capo::{
    migrate, record, FormatManifest, InputEvent, InputLog, OverheadBreakdown, OverheadModel,
    Recording, RecordingConfig, RecordingMode, RecordingParts, RecordingSession, RecordingVersion,
    ReplaySphere, PARTIAL_ORDER_FORMAT_VERSION, RECORDING_FORMAT_VERSION,
};
pub use qr_common::{CoreId, Cycle, QrError, Result, ThreadId, VirtAddr};
pub use qr_cpu::{CpuConfig, Machine};
pub use qr_isa::{Asm, Program};
pub use qr_mem::{MemConfig, TsoMode};
pub use qr_os::{run_native, OsConfig, RunOutcome};
pub use qr_replay::{replay, replay_and_verify, replay_ordered, replay_ordered_and_verify,
    replay_parallel, replay_parallel_and_verify,
    timeline_descriptors, CheckpointIndex, EventDescriptor, EventKind, ParallelReplayer,
    QueryEngine, QueryPlan, QueryResult, ReplayCheckpoint, ReplayOutcome, ReplayQuery, Replayer,
    CHECKPOINT_INDEX_VERSION};
pub use quickrec_core::{ChunkLog, ChunkPacket, Encoding, MrrConfig, OrderLog, OrderMode,
    TerminationReason};

/// The SPLASH-2-style workload suite (re-exported from [`qr_workloads`]).
pub mod workloads {
    pub use qr_workloads::suite::{find, init_value, suite, Scale, WorkloadSpec};
}

/// Runs a program natively (no recording) on a fresh machine — the
/// baseline used by the overhead experiments.
///
/// # Errors
///
/// Propagates configuration and execution errors.
///
/// # Example
///
/// ```
/// use qr_isa::{abi, Asm, Reg};
///
/// let mut a = Asm::new();
/// a.movi_u(Reg::R0, abi::SYS_EXIT);
/// a.movi(Reg::R1, 3);
/// a.syscall();
/// let out = quickrec::run_baseline(a.finish()?, 2)?;
/// assert_eq!(out.exit_code, 3);
/// # Ok::<(), qr_common::QrError>(())
/// ```
pub fn run_baseline(program: Program, cores: usize) -> Result<RunOutcome> {
    let cfg = CpuConfig { num_cores: cores, ..CpuConfig::default() };
    let mut machine = Machine::new(program, cfg)?;
    run_native(&mut machine, OsConfig::default())
}
