//! `quickrec` — command-line record/replay for PIA assembly programs.
//!
//! ```text
//! quickrec run      prog.pasm [--cores N]          run natively
//! quickrec record   prog.pasm -o DIR [--cores N] [--order M] [--hw-only] [--rsw] [--trace-out F]
//! quickrec replay   prog.pasm DIR [--races] [--salvage] [--jobs N] [--trace-out F]
//! quickrec verify   DIR                            log integrity check
//! quickrec migrate  DIR                            upgrade to the current format
//! quickrec analyze  DIR                            chunk-log forensics
//! quickrec disasm   prog.pasm                      disassemble
//! quickrec suite    [--threads N]                  run the workload suite
//! quickrec serve    (--socket P | --tcp A) [...]   run the quickrecd daemon
//! quickrec submit   --socket P (--workload W | prog.pasm)   queue a RECORD job
//! quickrec fetch    --socket P ID -o DIR           download a stored recording
//! quickrec query    --socket P ID (--range A..B | --thread T | --window A..B |
//!                   --before-divergence K | --reverse-step N) [--dry-run]
//!                   [--max-events M] [--replay-id R]   time-travel query
//! quickrec jobs     --socket P                     list sessions
//! quickrec stats    --socket P [--metrics]         server + session counters
//! quickrec shutdown --socket P                     graceful daemon shutdown
//! ```
//!
//! Programs are textual PIA assembly (see `qr_isa::text` for the
//! dialect); recordings are directories of three files written by
//! `Recording::save`. The server commands talk to a running `quickrecd`
//! (or `quickrec serve`) over its Unix-socket or TCP endpoint.

use qr_server::proto::{Endpoint, Request, Response};
use quickrec::workloads::Scale;
use quickrec::{record, Encoding, OrderMode, Recording, RecordingConfig, RecordingMode, TsoMode};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("quickrec: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" => cmd_run(rest),
        "record" => cmd_record(rest),
        "replay" => cmd_replay(rest),
        "verify" => cmd_verify(rest),
        "migrate" => cmd_migrate(rest),
        "analyze" => cmd_analyze(rest),
        "timeline" => cmd_timeline(rest),
        "dot" => cmd_dot(rest),
        "disasm" => cmd_disasm(rest),
        "suite" => cmd_suite(rest),
        "serve" => qr_server::daemon::run(rest),
        "submit" => cmd_submit(rest),
        "fetch" => cmd_fetch(rest),
        "query" => cmd_query(rest),
        "jobs" => cmd_jobs(rest),
        "stats" => cmd_stats(rest),
        "shutdown" => cmd_shutdown(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  quickrec run      <prog.pasm> [--cores N]\n  \
     quickrec record   <prog.pasm> -o <dir> [--cores N] [--order total|partial] [--hw-only] [--rsw] [--trace-out FILE]\n  \
     quickrec replay   <prog.pasm> <dir> [--races] [--salvage] [--jobs N] [--trace-out FILE]\n  \
     quickrec verify   <dir>\n  \
     quickrec migrate  <dir>                         upgrade a recording to the current format\n  \
     quickrec analyze  <dir>\n  \
     quickrec timeline <dir> [--rows N]\n  \
     quickrec dot      <dir>\n  \
     quickrec disasm   <prog.pasm>\n  \
     quickrec suite    [--threads N]\n  \
     quickrec serve    (--socket PATH | --tcp ADDR) [--store DIR] [--workers N] [--shards N] [--queue N] [--event-workers N] [--max-conns N]\n  \
     quickrec submit   (--socket PATH | --tcp ADDR) (--workload NAME [--threads N] [--scale S] | <prog.pasm> [--cores N]) [--name LABEL] [--encoding E] [--order total|partial] [--no-wait]\n  \
     quickrec fetch    (--socket PATH | --tcp ADDR) <id> -o <dir>\n  \
     quickrec query    (--socket PATH | --tcp ADDR) <id> (--range A..B | --thread T | --window A..B | --before-divergence K | --reverse-step N) [--dry-run] [--max-events M] [--replay-id R]\n  \
     quickrec jobs     (--socket PATH | --tcp ADDR)\n  \
     quickrec stats    (--socket PATH | --tcp ADDR) [--metrics]\n  \
     quickrec shutdown (--socket PATH | --tcp ADDR)"
        .to_string()
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a == "-o"
            || a == "--cores"
            || a == "--threads"
            || a == "--rows"
            || a == "--jobs"
            || a == "--socket"
            || a == "--tcp"
            || a == "--workload"
            || a == "--scale"
            || a == "--encoding"
            || a == "--order"
            || a == "--name"
            || a == "--timeout"
            || a == "--trace-out"
            || a == "--range"
            || a == "--thread"
            || a == "--window"
            || a == "--before-divergence"
            || a == "--reverse-step"
            || a == "--max-events"
            || a == "--replay-id"
        {
            skip = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        let _ = i;
        out.push(a);
    }
    out
}

/// Parses `--trace-out FILE`, switching the global trace journal on
/// when present (it is off by default so untraced runs pay nothing).
fn trace_out_arg(args: &[String]) -> Option<PathBuf> {
    let path = flag_value(args, "--trace-out").map(PathBuf::from);
    if path.is_some() {
        qr_obs::trace::global().set_enabled(true);
    }
    path
}

/// Drains the global trace journal into a framed `.qrt` file.
fn write_trace(path: &Path) -> Result<(), String> {
    let events = qr_obs::trace::global().drain();
    let bytes = qr_obs::trace::to_bytes(&events);
    std::fs::write(path, bytes)
        .map_err(|e| format!("writing trace journal {}: {e}", path.display()))?;
    println!("trace journal: {} event(s) -> {}", events.len(), path.display());
    Ok(())
}

fn order_arg(args: &[String]) -> Result<OrderMode, String> {
    match flag_value(args, "--order").as_deref() {
        None | Some("total") => Ok(OrderMode::TotalOrder),
        Some("partial") => Ok(OrderMode::PartialOrder),
        Some(v) => Err(format!("bad --order value `{v}` (total or partial)")),
    }
}

fn cores_arg(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--cores") {
        None => Ok(4),
        Some(v) => v.parse().map_err(|_| format!("bad --cores value `{v}`")),
    }
}

fn load_program(path: &str) -> Result<quickrec::Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let name = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program")
        .to_string();
    qr_isa::text::assemble(&name, &source).map_err(|e| e.to_string())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else { return Err(usage()) };
    let program = load_program(path)?;
    let cores = cores_arg(args)?;
    let out = quickrec::run_baseline(program, cores).map_err(|e| e.to_string())?;
    print!("{}", String::from_utf8_lossy(&out.console));
    println!(
        "exit {} after {} instructions, {} cycles on {cores} cores",
        out.exit_code, out.instructions, out.cycles
    );
    Ok(())
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else { return Err(usage()) };
    let out_dir = PathBuf::from(flag_value(args, "-o").ok_or("record needs -o <dir>")?);
    let trace_out = trace_out_arg(args);
    let program = load_program(path)?;
    let mut cfg = RecordingConfig::with_cores(cores_arg(args)?);
    cfg.order = order_arg(args)?;
    if has_flag(args, "--hw-only") {
        cfg.mode = RecordingMode::HardwareOnly;
    }
    if has_flag(args, "--rsw") {
        cfg.cpu.mem.tso_mode = TsoMode::Rsw;
    }
    let recording = {
        let _span = qr_obs::trace::global().span("record", 0);
        record(program, cfg).map_err(|e| e.to_string())?
    };
    {
        let _span = qr_obs::trace::global().span("save", 0);
        recording.save(&out_dir, Encoding::Delta).map_err(|e| e.to_string())?;
    }
    if let Some(trace_path) = &trace_out {
        write_trace(trace_path)?;
    }
    print!("{}", String::from_utf8_lossy(&recording.console));
    println!(
        "recorded {} instructions into {} chunks (exit {}); logs in {}",
        recording.instructions,
        recording.chunks.len(),
        recording.exit_code,
        out_dir.display()
    );
    println!(
        "memory log {:.2} B/kilo-instruction, input log {} bytes, overhead {} cycles",
        recording.log_bytes_per_kilo_instruction(Encoding::Delta),
        recording.inputs.byte_size(),
        recording.overhead.total(),
    );
    if let Some(order) = &recording.order {
        println!(
            "ordering log: partial order, {} nodes, {} edges, {} bytes",
            order.node_count(),
            order.edges().len(),
            order.byte_size()
        );
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path, dir] = pos.as_slice() else { return Err(usage()) };
    let trace_out = trace_out_arg(args);
    let program = load_program(path)?;
    let jobs: Option<usize> = match flag_value(args, "--jobs") {
        None => None,
        Some(v) => Some(
            v.parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or(format!("bad --jobs value `{v}` (need an integer >= 1)"))?,
        ),
    };
    if jobs.is_some() && has_flag(args, "--races") {
        return Err("--jobs cannot be combined with --races: the race detector \
                    needs the serial timestamp-ordered replay"
            .to_string());
    }
    if jobs.is_some() && has_flag(args, "--salvage") {
        return Err("--jobs cannot be combined with --salvage: salvage replays \
                    the longest valid prefix serially"
            .to_string());
    }
    if has_flag(args, "--salvage") {
        // Best-effort mode for damaged logs: replay the longest valid
        // prefix and report what was lost. Fails only when the metadata
        // is unreadable or the salvaged prefix is not reproducible.
        let report = qr_replay::salvage_replay_dir(&program, Path::new(dir.as_str()))
            .map_err(|e| e.to_string())?;
        print!("{}", String::from_utf8_lossy(&report.console));
        print!("{}", report.summary());
        if report.fingerprint.is_some() && !report.fingerprint_consistent {
            return Err("salvaged prefix is not internally consistent".to_string());
        }
        if report.is_complete() {
            println!("recording intact — full replay verified");
        } else {
            println!("salvaged a consistent execution prefix");
        }
        if let Some(trace_path) = &trace_out {
            write_trace(trace_path)?;
        }
        return Ok(());
    }
    let recording = {
        let _span = qr_obs::trace::global().span("load_recording", 0);
        Recording::load(Path::new(dir.as_str())).map_err(|e| e.to_string())?
    };
    if has_flag(args, "--races") {
        let _span = qr_obs::trace::global().span("replay_races", 0);
        let (outcome, report) =
            qr_replay::replay_with_race_detection(&program, &recording).map_err(|e| e.to_string())?;
        print!("{}", String::from_utf8_lossy(&outcome.console));
        println!(
            "replayed {} chunks, {} inputs; exit {} — verified exact",
            outcome.chunks_replayed, outcome.inputs_injected, outcome.exit_code
        );
        if report.is_empty() {
            println!("race detector: no data races");
        } else {
            println!("race detector: {} racy word(s):", report.len());
            for race in report.races() {
                println!("  {race}");
            }
        }
    } else if recording.order.is_some() {
        // Partial-order recordings replay under their recorded
        // happens-before edges; `--jobs` picks the worker count and
        // its absence is the serial (one-worker) schedule.
        let jobs = jobs.unwrap_or(1);
        let _span = qr_obs::trace::global().span("replay_ordered", 0);
        let outcome = qr_replay::replay_ordered_and_verify(&program, &recording, jobs)
            .map_err(|e| e.to_string())?;
        print!("{}", String::from_utf8_lossy(&outcome.console));
        println!(
            "replayed {} chunks, {} inputs; exit {} — verified exact",
            outcome.chunks_replayed, outcome.inputs_injected, outcome.exit_code
        );
        let order = recording.order.as_ref().expect("checked above");
        println!(
            "partial-order replay: {jobs} job(s) under {} recorded edges over {} nodes",
            order.edges().len(),
            order.node_count()
        );
    } else if let Some(jobs) = jobs {
        let _span = qr_obs::trace::global().span("replay_parallel", 0);
        let replayer =
            qr_replay::ParallelReplayer::new(&program, &recording, jobs).map_err(|e| e.to_string())?;
        let fallback = replayer.fallback_reason().map(str::to_string);
        let nodes = replayer.node_count();
        let edges = replayer.edge_count();
        let outcome = replayer.run().map_err(|e| e.to_string())?;
        outcome.verify_against(&recording).map_err(|e| e.to_string())?;
        print!("{}", String::from_utf8_lossy(&outcome.console));
        println!(
            "replayed {} chunks, {} inputs; exit {} — verified exact",
            outcome.chunks_replayed, outcome.inputs_injected, outcome.exit_code
        );
        match fallback {
            Some(reason) => println!("parallel replay fell back to serial: {reason}"),
            None => println!(
                "parallel replay: {jobs} jobs over {nodes} timeline nodes, {edges} dependency edges"
            ),
        }
    } else {
        let _span = qr_obs::trace::global().span("replay_serial", 0);
        let outcome =
            quickrec::replay_and_verify(&program, &recording).map_err(|e| e.to_string())?;
        print!("{}", String::from_utf8_lossy(&outcome.console));
        println!(
            "replayed {} chunks, {} inputs; exit {} — verified exact",
            outcome.chunks_replayed, outcome.inputs_injected, outcome.exit_code
        );
    }
    if let Some(trace_path) = &trace_out {
        write_trace(trace_path)?;
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [dir] = pos.as_slice() else { return Err(usage()) };
    let dir_path = Path::new(dir.as_str());
    // A missing directory or a directory with none of the recording
    // files present gets one clear diagnosis instead of a per-file
    // cascade of raw OS errors.
    if !dir_path.is_dir() {
        return Err(format!("`{dir}` is not a recording directory: no such directory"));
    }
    let report = Recording::verify_dir(dir_path);
    if report.files.iter().all(|f| f.bytes.is_none()) {
        return Err(format!(
            "`{dir}` is not a recording directory: none of the recording files \
             (meta.qrm, chunks.qrl, inputs.qrl) are present"
        ));
    }
    for file in &report.files {
        println!("{}", file.describe());
    }
    if report.all_ok() {
        println!("recording verified: all files decode cleanly");
        Ok(())
    } else {
        Err("recording failed verification".to_string())
    }
}

fn cmd_migrate(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [dir] = pos.as_slice() else { return Err(usage()) };
    let dir_path = Path::new(dir.as_str());
    if !dir_path.is_dir() {
        return Err(format!("`{dir}` is not a recording directory: no such directory"));
    }
    let report = quickrec::migrate::migrate(dir_path).map_err(|e| e.to_string())?;
    println!("{}", report.describe());
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [dir] = pos.as_slice() else { return Err(usage()) };
    let recording = Recording::load(Path::new(dir.as_str())).map_err(|e| e.to_string())?;
    println!(
        "recording: {} instructions, {} cycles, exit {}, fingerprint {:016x}",
        recording.instructions, recording.cycles, recording.exit_code, recording.fingerprint
    );
    println!(
        "platform: {} cores, tso {:?}, quantum {}",
        recording.meta.cpu.num_cores, recording.meta.tso_mode, recording.meta.os.quantum_cycles
    );
    match &recording.order {
        Some(order) => println!(
            "order: partial ({} nodes, {} recorded edges, {} bytes)",
            order.node_count(),
            order.edges().len(),
            order.byte_size()
        ),
        None => println!("order: total (global chunk timestamps)"),
    }
    println!("\nchunks: {} total", recording.chunks.len());
    if !recording.chunks.is_empty() {
        for p in [50, 90, 99] {
            println!("  p{p:<2} size {:>8}", recording.chunks.chunk_size_percentile(p));
        }
    }
    let mut by_reason: Vec<(quickrec::TerminationReason, usize)> = quickrec::TerminationReason::ALL
        .iter()
        .map(|&r| (r, recording.chunks.packets().iter().filter(|c| c.reason == r).count()))
        .filter(|&(_, n)| n > 0)
        .collect();
    by_reason.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("  termination reasons:");
    for (reason, count) in by_reason {
        println!("    {:<8} {count}", reason.label());
    }
    println!("\nper thread:");
    for (tid, chunks) in recording.chunks.per_thread() {
        let instrs: u64 = chunks.iter().map(|c| c.icount).sum();
        println!("  {tid}: {} chunks, {} instructions", chunks.len(), instrs);
    }
    println!("\ninput events: {}", recording.inputs.events().len());
    println!("encodings:");
    for enc in Encoding::ALL {
        println!("  {:<7} {:>8} bytes", enc.name(), recording.chunks.to_bytes(enc).len());
    }
    Ok(())
}

fn cmd_timeline(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [dir] = pos.as_slice() else { return Err(usage()) };
    let rows: usize = match flag_value(args, "--rows") {
        None => 60,
        Some(v) => v.parse().map_err(|_| format!("bad --rows value `{v}`"))?,
    };
    let recording = Recording::load(Path::new(dir.as_str())).map_err(|e| e.to_string())?;
    println!("order mode: {}", recording.order_mode().name());
    print!("{}", quickrec_core::viz::timeline(&recording.chunks, rows));
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [dir] = pos.as_slice() else { return Err(usage()) };
    let recording = Recording::load(Path::new(dir.as_str())).map_err(|e| e.to_string())?;
    println!("// order mode: {}", recording.order_mode().name());
    print!("{}", quickrec_core::viz::to_dot(&recording.chunks, 400));
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else { return Err(usage()) };
    let program = load_program(path)?;
    print!("{}", qr_isa::disasm::disassemble(&program));
    Ok(())
}

fn endpoint_arg(args: &[String]) -> Result<Endpoint, String> {
    match (flag_value(args, "--socket"), flag_value(args, "--tcp")) {
        (Some(path), None) => Ok(Endpoint::Unix(PathBuf::from(path))),
        (None, Some(addr)) => Ok(Endpoint::Tcp(addr)),
        (Some(_), Some(_)) => Err("pass --socket or --tcp, not both".to_string()),
        (None, None) => Err("server commands need --socket PATH or --tcp ADDR".to_string()),
    }
}

fn connect(args: &[String]) -> Result<qr_server::Client, String> {
    let endpoint = endpoint_arg(args)?;
    qr_server::Client::connect(&endpoint).map_err(|e| e.to_string())
}

fn encoding_arg(args: &[String]) -> Result<Encoding, String> {
    match flag_value(args, "--encoding") {
        None => Ok(Encoding::Delta),
        Some(v) => Encoding::ALL
            .into_iter()
            .find(|e| e.name() == v)
            .ok_or(format!("bad --encoding value `{v}` (raw, packed or delta)")),
    }
}

fn scale_arg(args: &[String]) -> Result<Scale, String> {
    match flag_value(args, "--scale").as_deref() {
        None | Some("small") => Ok(Scale::Small),
        Some("test") => Ok(Scale::Test),
        Some("reference") => Ok(Scale::Reference),
        Some(v) => Err(format!("bad --scale value `{v}` (test, small or reference)")),
    }
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let mut client = connect(args)?;
    let encoding = encoding_arg(args)?;
    let request = if let Some(workload) = flag_value(args, "--workload") {
        let threads: u32 = match flag_value(args, "--threads") {
            None => 4,
            Some(v) => v.parse().map_err(|_| format!("bad --threads value `{v}`"))?,
        };
        Request::SubmitWorkload {
            name: flag_value(args, "--name").unwrap_or_else(|| workload.clone()),
            workload,
            threads,
            scale: scale_arg(args)?,
            encoding,
            order: order_arg(args)?,
        }
    } else {
        let pos = positional(args);
        let [path] = pos.as_slice() else {
            return Err("submit needs --workload NAME or a <prog.pasm> path".to_string());
        };
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let name = flag_value(args, "--name").unwrap_or_else(|| {
            Path::new(path.as_str())
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("program")
                .to_string()
        });
        let cores = u32::try_from(cores_arg(args)?).map_err(|_| "bad --cores value")?;
        Request::SubmitProgram { name, source, cores, encoding, order: order_arg(args)? }
    };
    let id = match client.call(&request).map_err(|e| e.to_string())? {
        Response::Submitted { id } => id,
        Response::Busy { queued } => {
            return Err(format!("server busy: {queued} job(s) queued; retry later"))
        }
        Response::Error { message } => return Err(message),
        other => return Err(format!("unexpected response {other:?}")),
    };
    println!("session {id} queued ({} encoding)", encoding.name());
    if has_flag(args, "--no-wait") {
        return Ok(());
    }
    let timeout = match flag_value(args, "--timeout") {
        None => 120,
        Some(v) => v.parse().map_err(|_| format!("bad --timeout value `{v}`"))?,
    };
    let job = client
        .wait_for(id, Duration::from_secs(timeout))
        .map_err(|e| e.to_string())?;
    match job.state {
        qr_server::proto::JobState::Failed(message) => {
            Err(format!("session {id} failed: {message}"))
        }
        _ => {
            println!(
                "session {id} done: {} ({}), fingerprint {:016x}",
                job.name, job.workload, job.fingerprint
            );
            Ok(())
        }
    }
}

fn cmd_fetch(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [id] = pos.as_slice() else { return Err(usage()) };
    let id: u64 = id.parse().map_err(|_| format!("bad session id `{id}`"))?;
    let out_dir = PathBuf::from(flag_value(args, "-o").ok_or("fetch needs -o <dir>")?);
    let mut client = connect(args)?;
    match client.call(&Request::Fetch { id }).map_err(|e| e.to_string())? {
        Response::Fetched { files, fingerprint } => {
            std::fs::create_dir_all(&out_dir)
                .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
            let mut total = 0usize;
            for (name, bytes) in &files {
                total += bytes.len();
                std::fs::write(out_dir.join(name), bytes)
                    .map_err(|e| format!("writing {name}: {e}"))?;
            }
            println!(
                "fetched session {id}: {} file(s), {total} bytes, fingerprint {fingerprint:016x} -> {}",
                files.len(),
                out_dir.display()
            );
            Ok(())
        }
        Response::Error { message } => Err(message),
        other => Err(format!("unexpected response {other:?}")),
    }
}

fn parse_span(flag: &str, v: &str) -> Result<(u64, u64), String> {
    let parsed = v.split_once("..").and_then(|(a, b)| {
        Some((a.trim().parse::<u64>().ok()?, b.trim().parse::<u64>().ok()?))
    });
    parsed.ok_or(format!("bad {flag} value `{v}` (need START..END)"))
}

fn query_arg(args: &[String]) -> Result<quickrec::ReplayQuery, String> {
    use quickrec::ReplayQuery;
    let mut chosen = Vec::new();
    if let Some(v) = flag_value(args, "--range") {
        let (start, end) = parse_span("--range", &v)?;
        chosen.push(ReplayQuery::Range { start, end });
    }
    if let Some(v) = flag_value(args, "--thread") {
        let tid: u32 = v.parse().map_err(|_| format!("bad --thread value `{v}`"))?;
        chosen.push(ReplayQuery::Thread { tid: quickrec::ThreadId(tid) });
    }
    if let Some(v) = flag_value(args, "--window") {
        let (start, end) = parse_span("--window", &v)?;
        chosen.push(ReplayQuery::Window { start, end });
    }
    if let Some(v) = flag_value(args, "--before-divergence") {
        let instructions: u64 =
            v.parse().map_err(|_| format!("bad --before-divergence value `{v}`"))?;
        chosen.push(ReplayQuery::BeforeDivergence { instructions });
    }
    if let Some(v) = flag_value(args, "--reverse-step") {
        let events: u64 = v.parse().map_err(|_| format!("bad --reverse-step value `{v}`"))?;
        chosen.push(ReplayQuery::ReverseStep { events });
    }
    match chosen.as_slice() {
        [query] => Ok(*query),
        [] => Err("query needs exactly one of --range, --thread, --window, \
                   --before-divergence or --reverse-step"
            .to_string()),
        _ => Err("query takes exactly one of --range, --thread, --window, \
                  --before-divergence or --reverse-step, not several"
            .to_string()),
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [id] = pos.as_slice() else { return Err(usage()) };
    let id: u64 = id.parse().map_err(|_| format!("bad session id `{id}`"))?;
    let query = query_arg(args)?;
    let max_events: u64 = match flag_value(args, "--max-events") {
        None => 0,
        Some(v) => v.parse().map_err(|_| format!("bad --max-events value `{v}`"))?,
    };
    let replay_id: u64 = match flag_value(args, "--replay-id") {
        None => 0,
        Some(v) => v.parse().map_err(|_| format!("bad --replay-id value `{v}`"))?,
    };
    let dry_run = has_flag(args, "--dry-run");
    let mut client = connect(args)?;
    let (cached, payload) =
        client.query(id, query, dry_run, max_events, replay_id).map_err(|e| e.to_string())?;
    if dry_run {
        let plan = quickrec::QueryPlan::from_bytes(&payload).map_err(|e| e.to_string())?;
        print!("{}", plan.render());
        return Ok(());
    }
    let result = quickrec::QueryResult::from_bytes(&payload).map_err(|e| e.to_string())?;
    if cached {
        println!("(served from the idempotence cache, replay id {replay_id})");
    }
    println!(
        "query: {} -> events [{}, {}) of session {id}",
        result.query, result.start, result.end
    );
    const SHOWN: usize = 24;
    for e in result.events.iter().take(SHOWN) {
        println!(
            "  event {:>6}  {:<8} {}  ts {:>8}  icount {:>6}  detail {}",
            e.pos,
            e.kind.label(),
            e.tid,
            e.timestamp.0,
            e.icount,
            e.detail
        );
    }
    if result.events.len() > SHOWN {
        println!("  ... {} more event(s)", result.events.len() - SHOWN);
    }
    if !result.console.is_empty() {
        println!("console inside span:");
        print!("{}", String::from_utf8_lossy(&result.console));
    }
    println!(
        "{} event(s), {} instruction(s) re-executed; fingerprint {:016x}",
        result.events.len(),
        result.instructions,
        result.fingerprint
    );
    if let Some(msg) = &result.diverged {
        println!("replay diverged inside the span: {msg}");
    }
    Ok(())
}

fn cmd_jobs(args: &[String]) -> Result<(), String> {
    let mut client = connect(args)?;
    match client.call(&Request::Jobs).map_err(|e| e.to_string())? {
        Response::JobList(jobs) => {
            println!(
                "{:>4} {:<12} {:<12} {:<8} {:<8} {:<16}",
                "id", "name", "workload", "kind", "state", "fingerprint"
            );
            for job in jobs {
                println!(
                    "{:>4} {:<12} {:<12} {:<8} {:<8} {:016x}",
                    job.id, job.name, job.workload, job.kind, job.state.label(), job.fingerprint
                );
                if let qr_server::proto::JobState::Failed(message) = &job.state {
                    println!("     error: {message}");
                }
            }
            Ok(())
        }
        Response::Error { message } => Err(message),
        other => Err(format!("unexpected response {other:?}")),
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let mut client = connect(args)?;
    if has_flag(args, "--metrics") {
        let text = client.metrics().map_err(|e| e.to_string())?;
        // Validate the exposition before printing so a malformed
        // registry render fails loudly instead of feeding scrapers
        // garbage.
        qr_obs::parse_exposition(&text)
            .map_err(|e| format!("server returned malformed metrics exposition: {e}"))?;
        print!("{text}");
        return Ok(());
    }
    match client.call(&Request::Stats).map_err(|e| e.to_string())? {
        Response::Stats(stats) => {
            println!(
                "server: {} worker(s), {} shard(s), {} connection(s) served",
                stats.workers, stats.shards, stats.connections
            );
            println!(
                "jobs: {} accepted, {} rejected busy, {} completed, {} failed",
                stats.accepted, stats.rejected_busy, stats.completed, stats.failed
            );
            if !stats.sessions.is_empty() {
                println!(
                    "{:>4} {:>7} {:>4} {:>4} {:>4} {:>4} {:>12} {:>12} {:>12}",
                    "id", "order", "rec", "rep", "ver", "rac", "raw B", "stored B", "instrs"
                );
                for s in &stats.sessions {
                    println!(
                        "{:>4} {:>7} {:>4} {:>4} {:>4} {:>4} {:>12} {:>12} {:>12}",
                        s.id,
                        if s.partial_order { "partial" } else { "total" },
                        s.records,
                        s.replays,
                        s.verifies,
                        s.races,
                        s.bytes_raw,
                        s.bytes_stored,
                        s.instructions
                    );
                }
            }
            Ok(())
        }
        Response::Error { message } => Err(message),
        other => Err(format!("unexpected response {other:?}")),
    }
}

fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    let mut client = connect(args)?;
    match client.call(&Request::Shutdown).map_err(|e| e.to_string())? {
        Response::ShuttingDown => {
            println!("server is draining jobs and shutting down");
            Ok(())
        }
        Response::Error { message } => Err(message),
        other => Err(format!("unexpected response {other:?}")),
    }
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let threads: usize = match flag_value(args, "--threads") {
        None => 4,
        Some(v) => v.parse().map_err(|_| format!("bad --threads value `{v}`"))?,
    };
    println!("{:<10} {:>12} {:>10} {:>8}", "workload", "instructions", "cycles", "check");
    for spec in quickrec::workloads::suite() {
        let program =
            (spec.build)(threads, quickrec::workloads::Scale::Small).map_err(|e| e.to_string())?;
        let out = quickrec::run_baseline(program, threads).map_err(|e| e.to_string())?;
        let ok = out.exit_code == (spec.expected)(threads, quickrec::workloads::Scale::Small);
        println!(
            "{:<10} {:>12} {:>10} {:>8}",
            spec.name,
            out.instructions,
            out.cycles,
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    Ok(())
}
