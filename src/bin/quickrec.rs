//! `quickrec` — command-line record/replay for PIA assembly programs.
//!
//! ```text
//! quickrec run      prog.pasm [--cores N]          run natively
//! quickrec record   prog.pasm -o DIR [--cores N] [--hw-only] [--rsw]
//! quickrec replay   prog.pasm DIR [--races] [--salvage] [--jobs N]
//! quickrec verify   DIR                            log integrity check
//! quickrec analyze  DIR                            chunk-log forensics
//! quickrec disasm   prog.pasm                      disassemble
//! quickrec suite    [--threads N]                  run the workload suite
//! ```
//!
//! Programs are textual PIA assembly (see `qr_isa::text` for the
//! dialect); recordings are directories of three files written by
//! `Recording::save`.

use quickrec::{record, Encoding, Recording, RecordingConfig, RecordingMode, TsoMode};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("quickrec: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" => cmd_run(rest),
        "record" => cmd_record(rest),
        "replay" => cmd_replay(rest),
        "verify" => cmd_verify(rest),
        "analyze" => cmd_analyze(rest),
        "timeline" => cmd_timeline(rest),
        "dot" => cmd_dot(rest),
        "disasm" => cmd_disasm(rest),
        "suite" => cmd_suite(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  quickrec run      <prog.pasm> [--cores N]\n  \
     quickrec record   <prog.pasm> -o <dir> [--cores N] [--hw-only] [--rsw]\n  \
     quickrec replay   <prog.pasm> <dir> [--races] [--salvage] [--jobs N]\n  \
     quickrec verify   <dir>\n  \
     quickrec analyze  <dir>\n  \
     quickrec timeline <dir> [--rows N]\n  \
     quickrec dot      <dir>\n  \
     quickrec disasm   <prog.pasm>\n  \
     quickrec suite    [--threads N]"
        .to_string()
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a == "-o" || a == "--cores" || a == "--threads" || a == "--rows" || a == "--jobs" {
            skip = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        let _ = i;
        out.push(a);
    }
    out
}

fn cores_arg(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--cores") {
        None => Ok(4),
        Some(v) => v.parse().map_err(|_| format!("bad --cores value `{v}`")),
    }
}

fn load_program(path: &str) -> Result<quickrec::Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let name = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program")
        .to_string();
    qr_isa::text::assemble(&name, &source).map_err(|e| e.to_string())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else { return Err(usage()) };
    let program = load_program(path)?;
    let cores = cores_arg(args)?;
    let out = quickrec::run_baseline(program, cores).map_err(|e| e.to_string())?;
    print!("{}", String::from_utf8_lossy(&out.console));
    println!(
        "exit {} after {} instructions, {} cycles on {cores} cores",
        out.exit_code, out.instructions, out.cycles
    );
    Ok(())
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else { return Err(usage()) };
    let out_dir = PathBuf::from(flag_value(args, "-o").ok_or("record needs -o <dir>")?);
    let program = load_program(path)?;
    let mut cfg = RecordingConfig::with_cores(cores_arg(args)?);
    if has_flag(args, "--hw-only") {
        cfg.mode = RecordingMode::HardwareOnly;
    }
    if has_flag(args, "--rsw") {
        cfg.cpu.mem.tso_mode = TsoMode::Rsw;
    }
    let recording = record(program, cfg).map_err(|e| e.to_string())?;
    recording.save(&out_dir, Encoding::Delta).map_err(|e| e.to_string())?;
    print!("{}", String::from_utf8_lossy(&recording.console));
    println!(
        "recorded {} instructions into {} chunks (exit {}); logs in {}",
        recording.instructions,
        recording.chunks.len(),
        recording.exit_code,
        out_dir.display()
    );
    println!(
        "memory log {:.2} B/kilo-instruction, input log {} bytes, overhead {} cycles",
        recording.log_bytes_per_kilo_instruction(Encoding::Delta),
        recording.inputs.byte_size(),
        recording.overhead.total(),
    );
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path, dir] = pos.as_slice() else { return Err(usage()) };
    let program = load_program(path)?;
    let jobs: Option<usize> = match flag_value(args, "--jobs") {
        None => None,
        Some(v) => Some(
            v.parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or(format!("bad --jobs value `{v}` (need an integer >= 1)"))?,
        ),
    };
    if jobs.is_some() && has_flag(args, "--races") {
        return Err("--jobs cannot be combined with --races: the race detector \
                    needs the serial timestamp-ordered replay"
            .to_string());
    }
    if jobs.is_some() && has_flag(args, "--salvage") {
        return Err("--jobs cannot be combined with --salvage: salvage replays \
                    the longest valid prefix serially"
            .to_string());
    }
    if has_flag(args, "--salvage") {
        // Best-effort mode for damaged logs: replay the longest valid
        // prefix and report what was lost. Fails only when the metadata
        // is unreadable or the salvaged prefix is not reproducible.
        let report = qr_replay::salvage_replay_dir(&program, Path::new(dir.as_str()))
            .map_err(|e| e.to_string())?;
        print!("{}", String::from_utf8_lossy(&report.console));
        print!("{}", report.summary());
        if report.fingerprint.is_some() && !report.fingerprint_consistent {
            return Err("salvaged prefix is not internally consistent".to_string());
        }
        if report.is_complete() {
            println!("recording intact — full replay verified");
        } else {
            println!("salvaged a consistent execution prefix");
        }
        return Ok(());
    }
    let recording = Recording::load(Path::new(dir.as_str())).map_err(|e| e.to_string())?;
    if has_flag(args, "--races") {
        let (outcome, report) =
            qr_replay::replay_with_race_detection(&program, &recording).map_err(|e| e.to_string())?;
        print!("{}", String::from_utf8_lossy(&outcome.console));
        println!(
            "replayed {} chunks, {} inputs; exit {} — verified exact",
            outcome.chunks_replayed, outcome.inputs_injected, outcome.exit_code
        );
        if report.is_empty() {
            println!("race detector: no data races");
        } else {
            println!("race detector: {} racy word(s):", report.len());
            for race in report.races() {
                println!("  {race}");
            }
        }
    } else if let Some(jobs) = jobs {
        let replayer =
            qr_replay::ParallelReplayer::new(&program, &recording, jobs).map_err(|e| e.to_string())?;
        let fallback = replayer.fallback_reason().map(str::to_string);
        let nodes = replayer.node_count();
        let edges = replayer.edge_count();
        let outcome = replayer.run().map_err(|e| e.to_string())?;
        outcome.verify_against(&recording).map_err(|e| e.to_string())?;
        print!("{}", String::from_utf8_lossy(&outcome.console));
        println!(
            "replayed {} chunks, {} inputs; exit {} — verified exact",
            outcome.chunks_replayed, outcome.inputs_injected, outcome.exit_code
        );
        match fallback {
            Some(reason) => println!("parallel replay fell back to serial: {reason}"),
            None => println!(
                "parallel replay: {jobs} jobs over {nodes} timeline nodes, {edges} dependency edges"
            ),
        }
    } else {
        let outcome =
            quickrec::replay_and_verify(&program, &recording).map_err(|e| e.to_string())?;
        print!("{}", String::from_utf8_lossy(&outcome.console));
        println!(
            "replayed {} chunks, {} inputs; exit {} — verified exact",
            outcome.chunks_replayed, outcome.inputs_injected, outcome.exit_code
        );
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [dir] = pos.as_slice() else { return Err(usage()) };
    let report = Recording::verify_dir(Path::new(dir.as_str()));
    for file in &report.files {
        println!("{}", file.describe());
    }
    if report.all_ok() {
        println!("recording verified: all files decode cleanly");
        Ok(())
    } else {
        Err("recording failed verification".to_string())
    }
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [dir] = pos.as_slice() else { return Err(usage()) };
    let recording = Recording::load(Path::new(dir.as_str())).map_err(|e| e.to_string())?;
    println!(
        "recording: {} instructions, {} cycles, exit {}, fingerprint {:016x}",
        recording.instructions, recording.cycles, recording.exit_code, recording.fingerprint
    );
    println!(
        "platform: {} cores, tso {:?}, quantum {}",
        recording.meta.cpu.num_cores, recording.meta.tso_mode, recording.meta.os.quantum_cycles
    );
    println!("\nchunks: {} total", recording.chunks.len());
    if !recording.chunks.is_empty() {
        for p in [50, 90, 99] {
            println!("  p{p:<2} size {:>8}", recording.chunks.chunk_size_percentile(p));
        }
    }
    let mut by_reason: Vec<(quickrec::TerminationReason, usize)> = quickrec::TerminationReason::ALL
        .iter()
        .map(|&r| (r, recording.chunks.packets().iter().filter(|c| c.reason == r).count()))
        .filter(|&(_, n)| n > 0)
        .collect();
    by_reason.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("  termination reasons:");
    for (reason, count) in by_reason {
        println!("    {:<8} {count}", reason.label());
    }
    println!("\nper thread:");
    for (tid, chunks) in recording.chunks.per_thread() {
        let instrs: u64 = chunks.iter().map(|c| c.icount).sum();
        println!("  {tid}: {} chunks, {} instructions", chunks.len(), instrs);
    }
    println!("\ninput events: {}", recording.inputs.events().len());
    println!("encodings:");
    for enc in Encoding::ALL {
        println!("  {:<7} {:>8} bytes", enc.name(), recording.chunks.to_bytes(enc).len());
    }
    Ok(())
}

fn cmd_timeline(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [dir] = pos.as_slice() else { return Err(usage()) };
    let rows: usize = match flag_value(args, "--rows") {
        None => 60,
        Some(v) => v.parse().map_err(|_| format!("bad --rows value `{v}`"))?,
    };
    let recording = Recording::load(Path::new(dir.as_str())).map_err(|e| e.to_string())?;
    print!("{}", quickrec_core::viz::timeline(&recording.chunks, rows));
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [dir] = pos.as_slice() else { return Err(usage()) };
    let recording = Recording::load(Path::new(dir.as_str())).map_err(|e| e.to_string())?;
    print!("{}", quickrec_core::viz::to_dot(&recording.chunks, 400));
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else { return Err(usage()) };
    let program = load_program(path)?;
    print!("{}", qr_isa::disasm::disassemble(&program));
    Ok(())
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let threads: usize = match flag_value(args, "--threads") {
        None => 4,
        Some(v) => v.parse().map_err(|_| format!("bad --threads value `{v}`"))?,
    };
    println!("{:<10} {:>12} {:>10} {:>8}", "workload", "instructions", "cycles", "check");
    for spec in quickrec::workloads::suite() {
        let program =
            (spec.build)(threads, quickrec::workloads::Scale::Small).map_err(|e| e.to_string())?;
        let out = quickrec::run_baseline(program, threads).map_err(|e| e.to_string())?;
        let ok = out.exit_code == (spec.expected)(threads, quickrec::workloads::Scale::Small);
        println!(
            "{:<10} {:>12} {:>10} {:>8}",
            spec.name,
            out.instructions,
            out.cycles,
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    Ok(())
}
