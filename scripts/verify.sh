#!/usr/bin/env bash
# Tier-1 verification: build, test, and smoke-run the experiment harness.
#
# Usage: scripts/verify.sh
# The repro smoke check runs a cheap experiment in both execution modes
# and asserts the outputs are byte-identical (the harness's determinism
# guarantee — see DESIGN.md, "The experiment executor").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== repro smoke: serial vs parallel must match byte-for-byte =="
serial=$(mktemp)
parallel=$(mktemp)
trap 'rm -f "$serial" "$parallel"' EXIT
./target/release/repro a6 --serial > "$serial"
./target/release/repro a6 --jobs 4 > "$parallel"
cmp "$serial" "$parallel"
echo "repro output identical across modes"

echo "== parallel replay: serial-equivalence battery =="
cargo test -q --test parallel_replay_equivalence

echo "== parallel replay smoke: E9b speedups, fingerprints byte-identical =="
./target/release/repro e9b > /dev/null
echo "parallel replay verified against serial on the whole suite"

echo "== fault-injection smoke: bounded mutated-recording campaign =="
./target/release/repro r1 --fuzz-iters 200 > /dev/null
echo "fault-injection contract holds (200 cases, no panics, prefixes verified)"

echo "== verify OK =="
