#!/usr/bin/env bash
# Tier-1 verification: build, test, and smoke-run the experiment harness.
#
# Usage: scripts/verify.sh
# The repro smoke check runs a cheap experiment in both execution modes
# and asserts the outputs are byte-identical (the harness's determinism
# guarantee — see DESIGN.md, "The experiment executor").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== golden conformance: pinned fixtures must replay to their pins =="
cargo test -q --test golden_conformance

echo "== migrate smoke: legacy golden fixture upgrades and verifies =="
migrate_dir=$(mktemp -d)
cp tests/golden/v1/hello-delta/* "$migrate_dir"
# Capture-then-grep everywhere a command feeds grep -q: under pipefail
# an early-exiting grep breaks the writer's pipe mid-print and fails
# the pipeline even though the match succeeded.
migrate_out=$(./target/release/quickrec migrate "$migrate_dir")
grep -q 'migrated v1 -> v3' <<< "$migrate_out" || {
  echo "migrate did not report a v1 -> v3 upgrade" >&2
  exit 1
}
./target/release/quickrec verify "$migrate_dir" > /dev/null
migrate_out=$(./target/release/quickrec migrate "$migrate_dir")
grep -q 'nothing to do' <<< "$migrate_out" || {
  echo "second migrate was not a no-op" >&2
  exit 1
}
rm -rf "$migrate_dir"
echo "legacy recording migrated in place, verified, and re-migrate is a no-op"

echo "== repro smoke: serial vs parallel must match byte-for-byte =="
serial=$(mktemp)
parallel=$(mktemp)
trap 'rm -f "$serial" "$parallel"' EXIT
./target/release/repro a6 --serial > "$serial"
./target/release/repro a6 --jobs 4 > "$parallel"
cmp "$serial" "$parallel"
echo "repro output identical across modes"

echo "== parallel replay: serial-equivalence battery =="
cargo test -q --test parallel_replay_equivalence

echo "== time travel: indexed-vs-scratch query equivalence battery =="
cargo test -q --test time_travel_equivalence

echo "== parallel replay smoke: E9b speedups, fingerprints byte-identical =="
./target/release/repro e9b > /dev/null
echo "parallel replay verified against serial on the whole suite"

echo "== hot-path differential smoke: fast paths vs reference paths (E13) =="
hotpath_json=$(mktemp)
QR_BENCH_MS=50 QR_BENCH_JSON="$hotpath_json" ./target/release/repro e13 > /dev/null
grep -q '"drift": 0' "$hotpath_json" || {
  echo "E13 reported codec drift or wrote no summary" >&2
  exit 1
}
rm -f "$hotpath_json"
echo "fast and reference codec paths byte-identical on every suite artifact"

echo "== time-travel seek differential smoke: indexed vs scratch (E14) =="
seek_json=$(mktemp)
QR_BENCH_MS=50 QR_BENCH_JSON="$seek_json" ./target/release/repro e14 > /dev/null
grep -q '"drift": 0' "$seek_json" || {
  echo "E14 reported seek drift or wrote no summary" >&2
  exit 1
}
rm -f "$seek_json"
echo "indexed seeks and queries byte-identical to from-scratch replay at every interval"

echo "== partial order: total-order equivalence battery =="
cargo test -q --test order_equivalence

echo "== partial-order smoke: record, verify, ordered replay via the CLI =="
order_dir=$(mktemp -d)
cat > "$order_dir/pingpong.pasm" <<'PASM'
; Two threads ping-ponging a flag: dense cross-thread dependency traffic.
.data
mailbox: .word 0
.align 64
flag:    .word 0
.text
main:
    movi r0, 3
    movi r1, consumer
    movi r2, 0
    syscall
    mov  r6, r0
    movi r7, 5
produce:
    movi r8, mailbox
    st   r8, 0, r7
    fence
    movi r8, flag
    movi r9, 1
    st   r8, 0, r9
    fence
wait_ack:
    ld   r9, r8, 0
    bnez r9, wait_ack
    addi r7, r7, -1
    bnez r7, produce
    movi r8, mailbox
    movi r9, 0
    st   r8, 0, r9
    movi r8, flag
    movi r9, 1
    st   r8, 0, r9
    fence
    movi r0, 4
    mov  r1, r6
    syscall
    mov  r1, r0
    movi r0, 1
    syscall
consumer:
    movi r6, 0
    movi r7, flag
    movi r8, mailbox
poll:
    ld   r9, r7, 0
    beqz r9, poll
    ld   r10, r8, 0
    movi r11, 0
    st   r7, 0, r11
    fence
    beqz r10, finish
    add  r6, r6, r10
    jmp  poll
finish:
    movi r0, 1
    mov  r1, r6
    syscall
PASM
record_out=$(./target/release/quickrec record "$order_dir/pingpong.pasm" -o "$order_dir/rec" \
  --cores 2 --order partial)
grep -q 'ordering log: partial order' <<< "$record_out" || {
  echo "record --order partial did not report an ordering log" >&2
  exit 1
}
[ -f "$order_dir/rec/order.qrp" ] || {
  echo "record --order partial wrote no order.qrp" >&2
  exit 1
}
./target/release/quickrec verify "$order_dir/rec" > /dev/null
replay_out=$(./target/release/quickrec replay "$order_dir/pingpong.pasm" "$order_dir/rec" --jobs 2)
grep -q 'partial-order replay' <<< "$replay_out" || {
  echo "replay did not reconstruct from the recorded partial order" >&2
  exit 1
}
rm -rf "$order_dir"
echo "partial-order recording round-trips through disk and replays under its edges"

echo "== ordering-cost differential smoke: fingerprint drift gate (E15) =="
order_json=$(mktemp)
QR_BENCH_MS=50 QR_BENCH_JSON="$order_json" ./target/release/repro e15 > /dev/null
grep -q '"drift": 0' "$order_json" || {
  echo "E15 reported ordering drift or wrote no summary" >&2
  exit 1
}
grep -q '"partial_grows_slower": true' "$order_json" || {
  echo "E15: partial-order bytes/instr no longer grows slower than total order" >&2
  exit 1
}
rm -f "$order_json"
echo "partial-order replay fingerprints identical to total order; byte growth stays slower"

echo "== fault-injection smoke: bounded mutated-recording campaign =="
./target/release/repro r1 --fuzz-iters 200 > /dev/null
echo "fault-injection contract holds (200 cases, no panics, prefixes verified)"

echo "== daemon smoke: serve, submit, fetch, verify, clean shutdown =="
smoke_dir=$(mktemp -d)
trap 'rm -f "$serial" "$parallel"; rm -rf "$smoke_dir"' EXIT
./target/release/quickrec serve --socket "$smoke_dir/qd.sock" \
  --store "$smoke_dir/store" --workers 2 > "$smoke_dir/serve.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 100); do
  [ -S "$smoke_dir/qd.sock" ] && break
  sleep 0.1
done
if ! [ -S "$smoke_dir/qd.sock" ]; then
  echo "daemon socket never appeared; serve log follows" >&2
  cat "$smoke_dir/serve.log" >&2
  exit 1
fi
./target/release/quickrec submit --socket "$smoke_dir/qd.sock" \
  --workload fft --threads 2 --scale test > /dev/null
./target/release/quickrec fetch --socket "$smoke_dir/qd.sock" 1 -o "$smoke_dir/fetched" > /dev/null
./target/release/quickrec verify "$smoke_dir/fetched" > /dev/null
# Time-travel queries against the session just recorded: a dry run
# prints the plan, a real query executes, and repeating its replay id
# must answer from the idempotence cache.
plan_out=$(./target/release/quickrec query --socket "$smoke_dir/qd.sock" 1 --range 0..2 --dry-run)
grep -q '^plan:' <<< "$plan_out" || {
  echo "query --dry-run did not print a plan" >&2
  exit 1
}
./target/release/quickrec query --socket "$smoke_dir/qd.sock" 1 \
  --reverse-step 2 --replay-id 7 > /dev/null
repeat_out=$(./target/release/quickrec query --socket "$smoke_dir/qd.sock" 1 \
  --reverse-step 2 --replay-id 7)
grep -q 'idempotence cache' <<< "$repeat_out" || {
  echo "repeated replay id was not served from the cache" >&2
  exit 1
}
# Scrape the live daemon's metrics. `stats --metrics` runs the text
# through qr_obs::parse_exposition before printing, so a zero exit means
# the exposition is well-formed; still assert the families that the
# record job just exercised actually showed up.
./target/release/quickrec stats --socket "$smoke_dir/qd.sock" --metrics > "$smoke_dir/metrics.txt"
for family in qr_server_requests_total qr_server_request_latency_us \
              qr_server_queries_total qr_recorder_chunks_total \
              qr_store_encode_latency_us; do
  if ! grep -q "^$family" "$smoke_dir/metrics.txt"; then
    echo "metrics exposition is missing family $family" >&2
    exit 1
  fi
done
grep -q 'quantile="0.99"' "$smoke_dir/metrics.txt" || {
  echo "metrics exposition lacks histogram quantile samples" >&2
  exit 1
}
echo "metrics exposition scraped from the live daemon and parsed"
./target/release/quickrec shutdown --socket "$smoke_dir/qd.sock" > /dev/null
wait "$server_pid"
if ls "$smoke_dir/store"/.tmp-* > /dev/null 2>&1; then
  echo "daemon shutdown left staging dirs behind" >&2
  exit 1
fi
if [ -e "$smoke_dir/qd.sock" ]; then
  echo "daemon shutdown left a stale socket behind" >&2
  exit 1
fi
echo "daemon round trip verified (recorded via the service, fetched, verified locally)"

echo "== daemon concurrency smoke: E16 quick mode against a live daemon =="
e16_dir=$(mktemp -d)
e16_json=$(mktemp)
trap 'rm -f "$serial" "$parallel" "$e16_json"; rm -rf "$smoke_dir" "$e16_dir"' EXIT
./target/release/quickrec serve --socket "$e16_dir/qd.sock" --store "$e16_dir/store" \
  --workers 2 --event-workers 2 --max-conns 512 > "$e16_dir/serve.log" 2>&1 &
e16_pid=$!
for _ in $(seq 1 100); do
  [ -S "$e16_dir/qd.sock" ] && break
  sleep 0.1
done
if ! [ -S "$e16_dir/qd.sock" ]; then
  echo "E16 daemon socket never appeared; serve log follows" >&2
  cat "$e16_dir/serve.log" >&2
  exit 1
fi
QR_BENCH_CONNS=128 QR_BENCH_JOBS=8 QR_E16_SOCKET="$e16_dir/qd.sock" \
  QR_BENCH_JSON="$e16_json" ./target/release/repro e16 > /dev/null
grep -q '"drift": 0' "$e16_json" || {
  echo "E16 reported fetch drift against a live daemon, or wrote no summary" >&2
  exit 1
}
# The event loop's own families must be live on the daemon the fleet
# just exercised.
./target/release/quickrec stats --socket "$e16_dir/qd.sock" --metrics > "$e16_dir/metrics.txt"
for family in qr_server_event_loop_wakeups_total qr_server_event_loop_events_total \
              qr_server_event_loop_conns_adopted_total qr_server_open_connections; do
  if ! grep -q "^$family" "$e16_dir/metrics.txt"; then
    echo "metrics exposition is missing event-loop family $family" >&2
    exit 1
  fi
done
./target/release/quickrec shutdown --socket "$e16_dir/qd.sock" > /dev/null
wait "$e16_pid"
if [ -e "$e16_dir/qd.sock" ]; then
  echo "E16 daemon shutdown left a stale socket behind" >&2
  exit 1
fi
echo "128 multiplexed connections served by the live daemon; fetches byte-identical"

echo "== verify OK =="
