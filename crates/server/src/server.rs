//! The `quickrecd` daemon: accept loop, job execution, shutdown.
//!
//! The accept loop hands every connection to the event-driven
//! nonblocking layer ([`crate::event`]): N event workers each
//! multiplex thousands of connections over a `poll(2)` readiness loop,
//! speaking the wire protocol ([`crate::proto`]) through incremental
//! per-connection state machines. RECORD/REPLAY/VERIFY/RACES jobs (and
//! offloaded QUERY requests) run on the bounded [`WorkerPool`] (a full
//! queue answers `Busy` — backpressure instead of unbounded
//! buffering); sessions live in the sharded [`Registry`]; recordings
//! land in a `qr_store::RecordingStore`.
//!
//! Shutdown (a `SHUTDOWN` message or [`ServerHandle::shutdown`]) stops
//! the accept loop, drains open connections and every queued job, then
//! joins the workers. Because the store commits entries by staging +
//! rename with the manifest written last, there is no instant at which
//! killing or draining the server can leave a torn entry visible.

use crate::event::{self, NbStream, Router};
use crate::pool::WorkerPool;
use crate::proto::{
    self, Endpoint, JobState, Request, Response, SessionStats, StatsReport,
};
use crate::registry::{Registry, Session, SessionSource};
use qr_capo::{record, Recording, RecordingConfig};
use qr_common::{QrError, Result};
use qr_isa::Program;
use qr_replay::{QueryEngine, ReplayQuery};
use qr_store::RecordingStore;
use quickrec_core::Encoding;
use std::io::Write;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker-pool threads executing jobs.
    pub workers: usize,
    /// Registry shards (defaults to the worker count).
    pub shards: usize,
    /// Bounded job-queue capacity; a full queue answers `Busy`.
    pub queue_capacity: usize,
    /// Recording-store root directory.
    pub store_root: PathBuf,
    /// Event-loop threads multiplexing connections.
    pub event_workers: usize,
    /// Open-connection cap; a connection accepted past it is answered
    /// with a best-effort `Busy` and dropped.
    pub max_connections: usize,
}

impl ServerConfig {
    /// A config with `workers` workers and matching shard count,
    /// storing under `store_root`.
    pub fn new(workers: usize, store_root: PathBuf) -> ServerConfig {
        ServerConfig {
            workers,
            shards: workers,
            queue_capacity: 64,
            store_root,
            event_workers: 2,
            max_connections: 4096,
        }
    }
}

/// Server-wide monotonic counters (the STATS globals).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) accepted: AtomicU64,
    pub(crate) rejected_busy: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) connections: AtomicU64,
}

pub(crate) struct Shared {
    pub(crate) registry: Registry,
    pub(crate) store: RecordingStore,
    pub(crate) counters: Counters,
    pub(crate) shutdown: AtomicBool,
    next_session: AtomicU64,
    /// Connections currently owned by an event worker; the accept loop
    /// increments on adopt, the owning worker decrements on close, and
    /// the overload-refusal path touches it not at all — every exit
    /// path balances.
    pub(crate) open_connections: AtomicUsize,
    /// Routes accepted sockets and offload completions to the event
    /// workers (and wakes them on shutdown).
    pub(crate) router: Router,
    /// The bound endpoint; shutdown dials it to wake the blocking
    /// accept loop.
    endpoint: Endpoint,
    workers: usize,
    max_connections: usize,
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Binds `endpoint` and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] when the endpoint cannot be bound
    /// or the store root cannot be opened.
    pub fn start(endpoint: &Endpoint, cfg: &ServerConfig) -> Result<ServerHandle> {
        let store = RecordingStore::open(&cfg.store_root)?;
        let listener = Listener::bind(endpoint)?;
        let bound = listener.local_endpoint(endpoint);
        let (router, wake_rxs) = Router::new(cfg.event_workers.max(1)).map_err(|e| {
            QrError::Execution { detail: format!("creating event-worker wake pipes: {e}") }
        })?;
        let shared = Arc::new(Shared {
            registry: Registry::new(cfg.shards.max(1)),
            store,
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            open_connections: AtomicUsize::new(0),
            router,
            endpoint: bound.clone(),
            workers: cfg.workers.max(1),
            max_connections: cfg.max_connections.max(1),
        });
        let pool = Arc::new(WorkerPool::new(cfg.workers, cfg.queue_capacity));
        let spawn_err = |what: &str, e: std::io::Error| QrError::Execution {
            detail: format!("spawning {what} thread: {e}"),
        };
        let mut events = Vec::with_capacity(wake_rxs.len());
        for (worker, wake_rx) in wake_rxs.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(&pool);
            let handle = std::thread::Builder::new()
                .name(format!("qr-event-{worker}"))
                .spawn(move || event::worker_loop(worker, wake_rx, shared, pool))
                .map_err(|e| spawn_err("event-worker", e))?;
            events.push(handle);
        }
        let accept = {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("qr-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &pool))
                .map_err(|e| spawn_err("accept", e))?
        };
        Ok(ServerHandle { shared, pool, accept: Some(accept), events, endpoint: bound })
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`] + [`ServerHandle::wait`] (a client
/// `SHUTDOWN` message triggers the same path).
pub struct ServerHandle {
    shared: Arc<Shared>,
    pool: Arc<WorkerPool>,
    accept: Option<std::thread::JoinHandle<()>>,
    events: Vec<std::thread::JoinHandle<()>>,
    endpoint: Endpoint,
}

impl ServerHandle {
    /// The bound endpoint (with the real port when TCP port 0 was
    /// requested).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Connections currently owned by the event workers (must drain to
    /// zero once every client hangs up — the regression gate for gauge
    /// drift).
    pub fn open_connections(&self) -> usize {
        self.shared.open_connections.load(Ordering::SeqCst)
    }

    /// Requests shutdown (idempotent; returns immediately).
    pub fn shutdown(&self) {
        request_shutdown(&self.shared);
    }

    /// Blocks until the accept loop has stopped, the event workers
    /// have drained their connections, and every queued job has
    /// finished.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let drain_start = crate::obs::clock();
        // Event workers flush pending responses and wait for in-flight
        // offloaded queries (their own 30s deadline bounds peers stuck
        // mid-exchange), so they must join before the pool drains.
        for handle in self.events.drain(..) {
            let _ = handle.join();
        }
        self.pool.drain();
        crate::obs::drain_finished(drain_start);
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Sets the shutdown flag and wakes everything that blocks: the accept
/// loop (blocked in `accept()`, woken by a throwaway connection to our
/// own endpoint) and the event workers (parked in `poll`, woken through
/// their mailboxes). Idempotent.
pub(crate) fn request_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already requested; everyone is already waking
    }
    match &shared.endpoint {
        Endpoint::Unix(path) => {
            let _ = std::os::unix::net::UnixStream::connect(path);
        }
        Endpoint::Tcp(addr) => {
            let _ = std::net::TcpStream::connect(addr);
        }
    }
    shared.router.wake_all();
}

// ---- transport -------------------------------------------------------

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(endpoint: &Endpoint) -> Result<Listener> {
        let io = |e: std::io::Error| QrError::Execution {
            detail: format!("binding {}: {e}", endpoint.describe()),
        };
        match endpoint {
            Endpoint::Unix(path) => {
                // A stale socket file from a killed server blocks bind.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path).map_err(io)?;
                Ok(Listener::Unix(listener))
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr).map_err(io)?;
                Ok(Listener::Tcp(listener))
            }
        }
    }

    /// The endpoint actually bound (resolves TCP port 0).
    fn local_endpoint(&self, requested: &Endpoint) -> Endpoint {
        match self {
            Listener::Unix(_) => requested.clone(),
            Listener::Tcp(listener) => match listener.local_addr() {
                Ok(addr) => Endpoint::Tcp(addr.to_string()),
                Err(_) => requested.clone(),
            },
        }
    }

    /// Blocking accept; [`request_shutdown`] unblocks it with a
    /// throwaway connection. The stream comes back already switched to
    /// nonblocking mode, ready for an event worker.
    fn accept(&self) -> std::io::Result<Box<dyn NbStream>> {
        match self {
            Listener::Unix(listener) => {
                let (stream, _) = listener.accept()?;
                stream.set_nonblocking(true)?;
                Ok(Box::new(stream))
            }
            Listener::Tcp(listener) => {
                let (stream, _) = listener.accept()?;
                stream.set_nonblocking(true)?;
                let _ = stream.set_nodelay(true);
                Ok(Box::new(stream))
            }
        }
    }
}

/// Tells an over-limit peer the daemon is saturated: a best-effort
/// single nonblocking write of the stream header plus a framed `Busy`,
/// then the connection drops. The peer sees a structured refusal, not
/// a silent hangup.
fn refuse_overloaded(mut stream: Box<dyn NbStream>, queued: usize) {
    let mut bytes = Vec::with_capacity(32);
    let _ = proto::write_stream_header(&mut bytes);
    let _ = proto::write_message(
        &mut bytes,
        &proto::encode_response(&Response::Busy { queued: queued as u32 }),
    );
    let _ = stream.write(&bytes);
}

fn accept_loop(listener: &Listener, shared: &Arc<Shared>, pool: &Arc<WorkerPool>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break; // the shutdown wake-up connection (or a raced client)
                }
                shared.counters.connections.fetch_add(1, Ordering::SeqCst);
                crate::obs::connection_opened();
                // Over the connection cap: refuse with a structured
                // Busy instead of dropping silently. The open gauge is
                // never incremented on this path, so it stays balanced.
                if shared.open_connections.load(Ordering::SeqCst) >= shared.max_connections {
                    shared.counters.rejected_busy.fetch_add(1, Ordering::SeqCst);
                    crate::obs::busy_rejection();
                    refuse_overloaded(stream, pool.queued());
                    continue;
                }
                shared.open_connections.fetch_add(1, Ordering::SeqCst);
                crate::obs::connection_delta(1);
                shared.router.adopt(stream);
            }
            Err(e) => {
                // Accept failures (EMFILE, transient resets) are
                // surfaced — counted and logged with the endpoint —
                // not silently swallowed; the backoff keeps a
                // persistent error from spinning the loop.
                crate::obs::accept_error();
                eprintln!(
                    "quickrecd: accept on {} failed: {e}",
                    shared.endpoint.describe()
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

// ---- request handling ------------------------------------------------

pub(crate) fn handle_request(
    request: Request,
    shared: &Arc<Shared>,
    pool: &Arc<WorkerPool>,
) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::SubmitWorkload { name, workload, threads, scale, encoding, order } => {
            if qr_workloads::find(&workload).is_none() {
                return Response::Error { message: format!("unknown workload `{workload}`") };
            }
            let source = SessionSource::Workload { workload, threads, scale };
            submit_record(shared, pool, name, source, encoding, order)
        }
        Request::SubmitProgram { name, source, cores, encoding, order } => {
            let source = SessionSource::Program { source, cores };
            submit_record(shared, pool, name, source, encoding, order)
        }
        Request::Jobs => Response::JobList(shared.registry.jobs()),
        Request::Stats => {
            let c = &shared.counters;
            Response::Stats(StatsReport {
                accepted: c.accepted.load(Ordering::SeqCst),
                rejected_busy: c.rejected_busy.load(Ordering::SeqCst),
                completed: c.completed.load(Ordering::SeqCst),
                failed: c.failed.load(Ordering::SeqCst),
                connections: c.connections.load(Ordering::SeqCst),
                shards: shared.registry.shards() as u32,
                workers: shared.workers as u32,
                sessions: shared.registry.session_stats(),
            })
        }
        Request::Fetch { id } => match completed_session(shared, id) {
            Ok(session) => match shared.store.fetch_parts(session.store_id) {
                Ok((manifest, parts)) => Response::Fetched {
                    files: parts
                        .files()
                        .into_iter()
                        .map(|(name, bytes)| (name.to_string(), bytes.to_vec()))
                        .collect(),
                    fingerprint: manifest.fingerprint,
                },
                Err(e) => Response::Error { message: e.to_string() },
            },
            Err(resp) => resp,
        },
        Request::Replay { id } => submit_followup(shared, pool, id, "replay"),
        Request::Verify { id } => submit_followup(shared, pool, id, "verify"),
        Request::Races { id } => submit_followup(shared, pool, id, "races"),
        Request::Shutdown => Response::ShuttingDown,
        Request::Metrics => Response::Metrics { text: qr_obs::global().render() },
        Request::Query { id, query, dry_run, max_events, replay_id } => {
            handle_query(shared, id, query, dry_run, max_events, replay_id)
        }
    }
}

/// Timeline events between persisted checkpoints for recordings made by
/// this daemon: small enough that any seek re-executes only a short
/// tail, large enough that the sidecar stays a fraction of the log.
const CHECKPOINT_INTERVAL: usize = 25;

/// Answers a QUERY: a read over an immutable store entry that replays
/// instructions, so the event layer offloads it to the worker pool
/// rather than stalling a multiplexed connection.
fn handle_query(
    shared: &Arc<Shared>,
    id: u64,
    query: ReplayQuery,
    dry_run: bool,
    max_events: u64,
    replay_id: u64,
) -> Response {
    let session = match completed_session(shared, id) {
        Ok(session) => session,
        Err(resp) => return resp,
    };
    // Idempotence: a repeated replay id answers from the cache without
    // touching the store or re-executing anything. Dry runs execute
    // nothing, so they neither consult nor populate the cache.
    if !dry_run && replay_id != 0 {
        if let Some(payload) = session.query_cache.get(&replay_id) {
            crate::obs::query_answered(true);
            return Response::QueryAnswer { cached: true, payload: payload.clone() };
        }
    }
    let outcome = (|| -> Result<Vec<u8>> {
        let (program, _) = build_program(&session.source)?;
        let (_, parts) = shared.store.fetch_parts(session.store_id)?;
        let recording = Recording::from_parts(&parts)?;
        let mut engine = QueryEngine::new(&program, &recording)?;
        if let Some(bytes) = parts.checkpoints.as_deref() {
            // A torn sidecar silently degrades to from-scratch seeks.
            engine.attach_index_bytes(bytes);
        }
        if dry_run {
            Ok(engine.plan(query)?.to_bytes())
        } else {
            let limit = (max_events != 0).then_some(max_events);
            Ok(engine.execute(query, limit)?.to_bytes())
        }
    })();
    match outcome {
        Ok(payload) => {
            if !dry_run && replay_id != 0 {
                shared.registry.update(id, |s| {
                    s.query_cache.insert(replay_id, payload.clone());
                });
            }
            crate::obs::query_answered(false);
            Response::QueryAnswer { cached: false, payload }
        }
        Err(e) => Response::Error { message: e.to_string() },
    }
}

/// Looks up a session whose recording has completed.
fn completed_session(shared: &Arc<Shared>, id: u64) -> std::result::Result<Session, Response> {
    match shared.registry.get(id) {
        None => Err(Response::Error { message: format!("no session {id}") }),
        Some(s) if s.store_id == 0 => Err(Response::Error {
            message: format!("session {id} has no stored recording (state: {})", s.state.label()),
        }),
        Some(s) => Ok(s),
    }
}

fn submit_record(
    shared: &Arc<Shared>,
    pool: &Arc<WorkerPool>,
    name: String,
    source: SessionSource,
    encoding: Encoding,
    order: quickrec_core::OrderMode,
) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Error { message: "server is shutting down".into() };
    }
    let id = shared.next_session.fetch_add(1, Ordering::SeqCst);
    shared.registry.insert(Session {
        id,
        name,
        source,
        encoding,
        order,
        kind: "record".into(),
        state: JobState::Queued,
        fingerprint: 0,
        store_id: 0,
        stats: SessionStats::default(),
        query_cache: std::collections::HashMap::new(),
    });
    let task_shared = Arc::clone(shared);
    let submitted = pool.try_submit(Box::new(move || run_record_job(&task_shared, id)));
    match submitted {
        Ok(()) => {
            shared.counters.accepted.fetch_add(1, Ordering::SeqCst);
            Response::Submitted { id }
        }
        Err((_task, queued)) => {
            shared.registry.remove(id);
            shared.counters.rejected_busy.fetch_add(1, Ordering::SeqCst);
            crate::obs::busy_rejection();
            Response::Busy { queued: queued as u32 }
        }
    }
}

fn submit_followup(
    shared: &Arc<Shared>,
    pool: &Arc<WorkerPool>,
    id: u64,
    kind: &'static str,
) -> Response {
    let session = match completed_session(shared, id) {
        Ok(session) => session,
        Err(resp) => return resp,
    };
    if matches!(session.state, JobState::Queued | JobState::Running) {
        return Response::Error { message: format!("session {id} already has a job in flight") };
    }
    // Mark the session queued *before* the worker can pick the job up.
    shared.registry.update(id, |s| {
        s.kind = kind.into();
        s.state = JobState::Queued;
    });
    let task_shared = Arc::clone(shared);
    let submitted =
        pool.try_submit(Box::new(move || run_followup_job(&task_shared, id, kind)));
    match submitted {
        Ok(()) => Response::Queued,
        Err((_task, queued)) => {
            // Rejected: restore the session's pre-submission state.
            shared.registry.update(id, |s| {
                s.kind = session.kind.clone();
                s.state = session.state.clone();
            });
            shared.counters.rejected_busy.fetch_add(1, Ordering::SeqCst);
            crate::obs::busy_rejection();
            Response::Busy { queued: queued as u32 }
        }
    }
}

// ---- job execution ---------------------------------------------------

/// Rebuilds a session's program (and its core count).
fn build_program(source: &SessionSource) -> Result<(Program, usize)> {
    match source {
        SessionSource::Workload { workload, threads, scale } => {
            let spec = qr_workloads::find(workload).ok_or_else(|| QrError::Execution {
                detail: format!("unknown workload `{workload}`"),
            })?;
            let threads = *threads as usize;
            Ok(((spec.build)(threads, *scale)?, threads))
        }
        SessionSource::Program { source, cores } => {
            Ok((qr_isa::text::assemble("submitted", source)?, *cores as usize))
        }
    }
}

fn run_record_job(shared: &Arc<Shared>, id: u64) {
    shared.registry.update(id, |s| s.state = JobState::Running);
    let Some(session) = shared.registry.get(id) else { return };
    let outcome = (|| -> Result<(u64, u64, u64, u64, u64)> {
        let (program, cores) = build_program(&session.source)?;
        let mut cfg = RecordingConfig::with_cores(cores);
        cfg.order = session.order;
        let recording = record(program.clone(), cfg)?;
        if let SessionSource::Workload { workload, threads, scale } = &session.source {
            // Suite workloads are self-validating: exit code == the
            // sequential mirror's checksum.
            if let Some(spec) = qr_workloads::find(workload) {
                let expected = (spec.expected)(*threads as usize, *scale);
                if recording.exit_code != expected {
                    return Err(QrError::Execution {
                        detail: format!(
                            "{workload}: recorded checksum {:#x} != expected {expected:#x}",
                            recording.exit_code
                        ),
                    });
                }
            }
        }
        let mut parts = recording.to_parts(session.encoding);
        // Persist the time-travel seek index next to the logs. A failed
        // build degrades to an index-less recording: queries still work,
        // every seek just replays from scratch.
        if let Ok(index) =
            qr_replay::CheckpointIndex::build(&program, &recording, CHECKPOINT_INTERVAL)
        {
            parts.attach_checkpoints(index.to_bytes())?;
        }
        let store_id = shared.store.put_parts(
            &session.name,
            &parts,
            session.encoding,
            recording.fingerprint,
        )?;
        let manifest = shared.store.manifest(store_id)?;
        Ok((
            store_id,
            recording.fingerprint,
            manifest.uncompressed_bytes(),
            manifest.compressed_bytes(),
            recording.instructions,
        ))
    })();
    match outcome {
        Ok((store_id, fingerprint, raw, stored, instructions)) => {
            shared.registry.update(id, |s| {
                s.state = JobState::Done;
                s.store_id = store_id;
                s.fingerprint = fingerprint;
                s.stats.records += 1;
                s.stats.bytes_raw = raw;
                s.stats.bytes_stored = stored;
                s.stats.instructions += instructions;
            });
            shared.counters.completed.fetch_add(1, Ordering::SeqCst);
        }
        Err(e) => {
            shared.registry.update(id, |s| s.state = JobState::Failed(e.to_string()));
            shared.counters.failed.fetch_add(1, Ordering::SeqCst);
        }
    }
}

fn run_followup_job(shared: &Arc<Shared>, id: u64, kind: &'static str) {
    shared.registry.update(id, |s| s.state = JobState::Running);
    let Some(session) = shared.registry.get(id) else { return };
    let outcome = (|| -> Result<u64> {
        match kind {
            "verify" => {
                let report = shared.store.verify(session.store_id)?;
                if !report.all_ok() {
                    let first = report
                        .files
                        .iter()
                        .find_map(|f| f.error.as_ref())
                        .map_or_else(|| "unknown fault".to_string(), |e| e.to_string());
                    return Err(QrError::Execution {
                        detail: format!("store entry failed verification: {first}"),
                    });
                }
                Ok(0)
            }
            "replay" => {
                let (program, _) = build_program(&session.source)?;
                let recording = shared.store.fetch(session.store_id)?;
                // Partial-order recordings replay under their recorded
                // happens-before edges; total-order ones by timestamp.
                let outcome = if recording.order.is_some() {
                    qr_replay::replay_ordered_and_verify(&program, &recording, 1)?
                } else {
                    qr_replay::replay_and_verify(&program, &recording)?
                };
                Ok(outcome.instructions)
            }
            "races" => {
                let (program, _) = build_program(&session.source)?;
                let recording = shared.store.fetch(session.store_id)?;
                let (outcome, _report) =
                    qr_replay::replay_with_race_detection(&program, &recording)?;
                Ok(outcome.instructions)
            }
            other => Err(QrError::Execution { detail: format!("unknown job kind `{other}`") }),
        }
    })();
    match outcome {
        Ok(instructions) => {
            shared.registry.update(id, |s| {
                s.state = JobState::Done;
                match kind {
                    "replay" => s.stats.replays += 1,
                    "verify" => s.stats.verifies += 1,
                    "races" => s.stats.races += 1,
                    _ => {}
                }
                s.stats.instructions += instructions;
            });
            shared.counters.completed.fetch_add(1, Ordering::SeqCst);
        }
        Err(e) => {
            shared.registry.update(id, |s| s.state = JobState::Failed(e.to_string()));
            shared.counters.failed.fetch_add(1, Ordering::SeqCst);
        }
    }
}
