//! `quickrecd` — the QuickRec record/replay daemon.
//!
//! See `qr_server::daemon::USAGE` (or `quickrecd --help`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = qr_server::daemon::run(&args) {
        eprintln!("quickrecd: {message}");
        eprintln!("{}", qr_server::daemon::USAGE);
        std::process::exit(2);
    }
}
