//! Command-line front end shared by the `quickrecd` binary and
//! `quickrec serve`.

use crate::proto::Endpoint;
use crate::server::{Server, ServerConfig};
use std::path::PathBuf;

/// Usage text for the daemon front end.
pub const USAGE: &str = "usage: quickrecd (--socket PATH | --tcp ADDR) [options]

options:
  --socket PATH      listen on a Unix-domain socket
  --tcp ADDR         listen on a TCP address (host:port; port 0 picks one)
  --store DIR        recording-store root           [default: ./qr-store]
  --workers N        job worker threads             [default: 2]
  --shards N         session-registry shards        [default: workers]
  --queue N          bounded job-queue capacity     [default: 64]
  --event-workers N  connection event-loop threads  [default: 2]
  --max-conns N      open-connection cap (past it,
                     new connections get Busy)      [default: 4096]

The server runs until a client sends SHUTDOWN (`quickrec shutdown`).";

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn parse_count(args: &[String], flag: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("{flag} wants a positive integer, got `{v}`")),
    }
}

/// Parses daemon arguments into an endpoint + config.
///
/// # Errors
///
/// Returns a usage-style message for unparsable arguments.
pub fn parse_args(args: &[String]) -> Result<(Endpoint, ServerConfig), String> {
    let endpoint = match (flag_value(args, "--socket"), flag_value(args, "--tcp")) {
        (Some(path), None) => Endpoint::Unix(PathBuf::from(path)),
        (None, Some(addr)) => Endpoint::Tcp(addr),
        (Some(_), Some(_)) => return Err("pass --socket or --tcp, not both".into()),
        (None, None) => return Err("an endpoint is required: --socket PATH or --tcp ADDR".into()),
    };
    let workers = parse_count(args, "--workers", 2)?;
    let cfg = ServerConfig {
        workers,
        shards: parse_count(args, "--shards", workers)?,
        queue_capacity: parse_count(args, "--queue", 64)?,
        store_root: PathBuf::from(
            flag_value(args, "--store").unwrap_or_else(|| "qr-store".into()),
        ),
        event_workers: parse_count(args, "--event-workers", 2)?,
        max_connections: parse_count(args, "--max-conns", 4096)?,
    };
    Ok((endpoint, cfg))
}

/// Runs the daemon in the foreground until a client shuts it down.
///
/// # Errors
///
/// Returns a printable message on startup failure.
pub fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    let (endpoint, cfg) = parse_args(args)?;
    let handle = Server::start(&endpoint, &cfg).map_err(|e| e.to_string())?;
    println!(
        "quickrecd listening on {} (workers={} shards={} queue={} event-workers={} \
         max-conns={} store={})",
        handle.endpoint().describe(),
        cfg.workers,
        cfg.shards,
        cfg.queue_capacity,
        cfg.event_workers,
        cfg.max_connections,
        cfg.store_root.display()
    );
    // Make the announcement visible to scripts piping our stdout.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    handle.wait();
    println!("quickrecd: shutdown complete");
    Ok(())
}
