//! The sharded session registry.
//!
//! Sessions (one per submission) live in `shards` independent
//! mutex-protected maps; a session with id `i` lives in shard
//! `i % shards`, so concurrent job updates on different sessions
//! contend only when they hash to the same shard. Registry snapshots
//! (JOBS/STATS) lock shards one at a time and sort by id, so readers
//! never hold more than one shard lock.

use crate::proto::{JobInfo, JobState, SessionStats};
use qr_workloads::Scale;
use quickrec_core::{Encoding, OrderMode};
use std::collections::HashMap;
use std::sync::Mutex;

/// What a session records (enough to rebuild its program for replay
/// jobs).
#[derive(Debug, Clone)]
pub enum SessionSource {
    /// A suite workload by name.
    Workload {
        /// Suite workload name.
        workload: String,
        /// Worker threads (= cores).
        threads: u32,
        /// Problem-size scale.
        scale: Scale,
    },
    /// A client-supplied PIA assembly program.
    Program {
        /// Assembly source text.
        source: String,
        /// Cores to run on.
        cores: u32,
    },
}

impl SessionSource {
    /// Workload column for JOBS output.
    pub fn label(&self) -> String {
        match self {
            SessionSource::Workload { workload, threads, .. } => format!("{workload}/{threads}t"),
            SessionSource::Program { cores, .. } => format!("program/{cores}c"),
        }
    }
}

/// One session's registry record.
#[derive(Debug, Clone)]
pub struct Session {
    /// Session id (also the store entry id once recorded).
    pub id: u64,
    /// Client-supplied label.
    pub name: String,
    /// What to run.
    pub source: SessionSource,
    /// Chunk-log encoding for the stored recording.
    pub encoding: Encoding,
    /// Ordering mode the recording job runs under (partial-order jobs
    /// persist an `order.qrp` sidecar alongside the logs).
    pub order: OrderMode,
    /// Current/last job kind (`record`, `replay`, `verify`, `races`).
    pub kind: String,
    /// Job lifecycle state.
    pub state: JobState,
    /// Outcome fingerprint (0 until recorded).
    pub fingerprint: u64,
    /// Store entry id of the recording (0 until recorded).
    pub store_id: u64,
    /// Per-session operation counters.
    pub stats: SessionStats,
    /// Idempotence cache for QUERY: replay id → serialized answer. A
    /// repeated non-zero replay id is served from here without
    /// re-executing.
    pub query_cache: HashMap<u64, Vec<u8>>,
}

/// Sharded id → [`Session`] map.
pub struct Registry {
    shards: Vec<Mutex<HashMap<u64, Session>>>,
}

impl Registry {
    /// Creates a registry with `shards` shards (at least 1).
    pub fn new(shards: usize) -> Registry {
        Registry {
            shards: (0..shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The sharding rule: session `id` lives in shard `id % shards`.
    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Session>> {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Inserts a fresh session.
    pub fn insert(&self, session: Session) {
        let mut stats = session.stats;
        stats.id = session.id;
        let mut shard = self.shard(session.id).lock().expect("registry shard");
        shard.insert(session.id, Session { stats, ..session });
    }

    /// Clones session `id`, if present.
    pub fn get(&self, id: u64) -> Option<Session> {
        self.shard(id).lock().expect("registry shard").get(&id).cloned()
    }

    /// Removes session `id` (a submission rejected by backpressure
    /// leaves no trace).
    pub fn remove(&self, id: u64) {
        self.shard(id).lock().expect("registry shard").remove(&id);
    }

    /// Applies `update` to session `id` under its shard lock; returns
    /// false when the session does not exist.
    pub fn update(&self, id: u64, update: impl FnOnce(&mut Session)) -> bool {
        let mut shard = self.shard(id).lock().expect("registry shard");
        match shard.get_mut(&id) {
            Some(session) => {
                update(session);
                true
            }
            None => false,
        }
    }

    /// All sessions as JOBS rows, ordered by id.
    pub fn jobs(&self) -> Vec<JobInfo> {
        let mut out: Vec<JobInfo> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("registry shard");
            out.extend(shard.values().map(|s| JobInfo {
                id: s.id,
                name: s.name.clone(),
                // Partial-order sessions are tagged so mixed-mode job
                // lists are distinguishable at a glance.
                workload: match s.order {
                    OrderMode::PartialOrder => format!("{}+po", s.source.label()),
                    OrderMode::TotalOrder => s.source.label(),
                },
                kind: s.kind.clone(),
                state: s.state.clone(),
                fingerprint: s.fingerprint,
            }));
        }
        out.sort_by_key(|j| j.id);
        out
    }

    /// All per-session counters, ordered by id.
    pub fn session_stats(&self) -> Vec<SessionStats> {
        let mut out: Vec<SessionStats> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("registry shard");
            out.extend(shard.values().map(|s| {
                let mut stats = s.stats;
                stats.partial_order = matches!(s.order, OrderMode::PartialOrder);
                stats
            }));
        }
        out.sort_by_key(|s| s.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(id: u64) -> Session {
        Session {
            id,
            name: format!("s{id}"),
            source: SessionSource::Workload {
                workload: "fft".into(),
                threads: 2,
                scale: Scale::Test,
            },
            encoding: Encoding::Delta,
            order: OrderMode::TotalOrder,
            kind: "record".into(),
            state: JobState::Queued,
            fingerprint: 0,
            store_id: 0,
            stats: SessionStats::default(),
            query_cache: HashMap::new(),
        }
    }

    #[test]
    fn sessions_distribute_across_shards_and_snapshot_sorted() {
        let reg = Registry::new(4);
        for id in (1..=12).rev() {
            reg.insert(session(id));
        }
        let jobs = reg.jobs();
        assert_eq!(jobs.len(), 12);
        assert!(jobs.windows(2).all(|w| w[0].id < w[1].id), "sorted by id");
        assert_eq!(reg.get(7).unwrap().name, "s7");
        assert!(reg.get(99).is_none());
    }

    #[test]
    fn update_mutates_under_the_shard_lock() {
        let reg = Registry::new(2);
        reg.insert(session(5));
        assert!(reg.update(5, |s| {
            s.state = JobState::Done;
            s.stats.records += 1;
        }));
        assert_eq!(reg.get(5).unwrap().state, JobState::Done);
        assert_eq!(reg.session_stats()[0].records, 1);
        assert!(!reg.update(6, |_| {}));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = std::sync::Arc::new(Registry::new(4));
        for id in 1..=8 {
            reg.insert(session(id));
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = std::sync::Arc::clone(&reg);
                scope.spawn(move || {
                    for round in 0..100 {
                        let id = round % 8 + 1;
                        reg.update(id, |s| s.stats.replays += 1);
                    }
                });
            }
        });
        let total: u64 = reg.session_stats().iter().map(|s| s.replays).sum();
        assert_eq!(total, 400);
    }
}
