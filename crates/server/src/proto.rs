//! The `quickrecd` wire protocol.
//!
//! Each connection direction is a framed `Wire` stream reusing the
//! on-disk container shape (`qr_common::frame`): a one-time 6-byte
//! header (magic `QRCF`, version, kind = `Wire`), then one CRC-32
//! protected record per message:
//!
//! ```text
//! direction := magic(4) version(1) kind(1)  message*
//! message   := len(u32 LE)  payload(len)  crc32(u32 LE, of payload)
//! ```
//!
//! Message payloads are tag-byte + varint documents ([`Request`],
//! [`Response`]). Every decoder in this module is panic-free on
//! arbitrary bytes and reports damage as [`QrError::Corrupt`] — the
//! fault-injection suite drives both the stream layer and the payload
//! decoders through the same mutators as the on-disk logs.

use qr_common::frame::{self, PayloadKind};
use qr_common::{crc32, varint, QrError, Result};
use qr_replay::ReplayQuery;
use quickrec_core::{Encoding, OrderMode};
use qr_workloads::Scale;
use std::io::{Read, Write};
use std::path::PathBuf;

/// Upper bound on one message payload (a fetched reference-scale
/// recording is a few MiB; 64 MiB leaves ample headroom while bounding
/// a hostile length prefix).
pub const MAX_MESSAGE: u32 = 64 * 1024 * 1024;

fn corrupt(offset: u64, detail: String) -> QrError {
    QrError::Corrupt { what: "wire message".into(), offset, detail }
}

fn io_err(what: &str, e: std::io::Error) -> QrError {
    QrError::Execution { detail: format!("{what}: {e}") }
}

/// Where a server listens (and a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP address (`host:port`).
    Tcp(String),
}

impl Endpoint {
    /// Human-readable form (`unix:/path` or `tcp:host:port`).
    pub fn describe(&self) -> String {
        match self {
            Endpoint::Unix(p) => format!("unix:{}", p.display()),
            Endpoint::Tcp(a) => format!("tcp:{a}"),
        }
    }
}

/// Writes the one-time stream header for one direction.
///
/// # Errors
///
/// Returns [`QrError::Execution`] wrapping I/O failures.
pub fn write_stream_header<W: Write + ?Sized>(w: &mut W) -> Result<()> {
    let mut header = Vec::with_capacity(frame::HEADER_LEN);
    header.extend_from_slice(&frame::MAGIC);
    header.push(frame::VERSION);
    header.push(PayloadKind::Wire.code());
    w.write_all(&header).map_err(|e| io_err("writing stream header", e))
}

/// Reads and validates the peer's stream header.
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] for a wrong magic, version or kind,
/// [`QrError::Execution`] for I/O failures.
pub fn read_stream_header<R: Read + ?Sized>(r: &mut R) -> Result<()> {
    let mut header = [0u8; frame::HEADER_LEN];
    r.read_exact(&mut header).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => corrupt(0, "truncated stream header".into()),
        _ => io_err("reading stream header", e),
    })?;
    validate_stream_header(&header)
}

/// Validates an already-read 6-byte stream header (shared by the
/// blocking reader and the nonblocking [`MessageAssembler`]).
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] for a wrong magic, version or kind.
pub fn validate_stream_header(header: &[u8; frame::HEADER_LEN]) -> Result<()> {
    if header[..4] != frame::MAGIC {
        return Err(corrupt(0, "bad stream magic".into()));
    }
    if header[4] != frame::VERSION {
        return Err(corrupt(4, format!("unsupported protocol version {}", header[4])));
    }
    if header[5] != PayloadKind::Wire.code() {
        let name = PayloadKind::from_code(header[5]).map_or("unknown payload", PayloadKind::name);
        return Err(corrupt(5, format!("stream carries a {name}, expected a wire message stream")));
    }
    Ok(())
}

/// Writes one length-prefixed, CRC-trailed message.
///
/// # Errors
///
/// Returns [`QrError::Execution`] wrapping I/O failures.
pub fn write_message<W: Write + ?Sized>(w: &mut W, payload: &[u8]) -> Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_MESSAGE)
        .ok_or_else(|| QrError::Execution {
            detail: format!("message of {} bytes exceeds the wire limit", payload.len()),
        })?;
    let mut buf = Vec::with_capacity(payload.len() + frame::RECORD_OVERHEAD);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&crc32::checksum(payload).to_le_bytes());
    w.write_all(&buf).map_err(|e| io_err("writing message", e))?;
    w.flush().map_err(|e| io_err("flushing message", e))
}

/// Reads one message payload; `Ok(None)` on clean end-of-stream (the
/// peer closed between messages).
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] for truncation inside a message or its
/// length prefix, an oversized length prefix or a CRC mismatch;
/// [`QrError::Execution`] for other I/O failures.
pub fn read_message<R: Read + ?Sized>(r: &mut R) -> Result<Option<Vec<u8>>> {
    // Fill the 4-byte length prefix by hand: only a stream that ends
    // *before* the first prefix byte is a clean close. A peer that dies
    // after 1-3 prefix bytes left a torn message, which `read_exact`'s
    // blanket UnexpectedEof would silently swallow.
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(corrupt(
                    filled as u64,
                    format!("truncated message length ({filled} of 4 prefix bytes)"),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(corrupt(
                    filled as u64,
                    format!("truncated message length ({filled} of 4 prefix bytes)"),
                ));
            }
            Err(e) => return Err(io_err("reading message length", e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_MESSAGE {
        return Err(corrupt(0, format!("message length {len} exceeds the wire limit")));
    }
    let mut body = vec![0u8; len as usize + 4];
    r.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => corrupt(4, "truncated message".into()),
        _ => io_err("reading message", e),
    })?;
    let crc_bytes: [u8; 4] = body[len as usize..].try_into().expect("4 trailer bytes");
    body.truncate(len as usize);
    if crc32::checksum(&body) != u32::from_le_bytes(crc_bytes) {
        return Err(corrupt(4, "message checksum mismatch".into()));
    }
    Ok(Some(body))
}

/// Incremental wire-stream reassembler for the nonblocking connection
/// layer.
///
/// The event loop hands it whatever bytes `read(2)` produced; the
/// assembler buffers them, validates the 6-byte stream header once,
/// and yields complete CRC-checked message payloads as they close.
/// It never blocks and never over-reads: a torn message simply stays
/// pending until more bytes arrive (or [`at_message_boundary`] says
/// the peer hung up mid-message).
///
/// [`at_message_boundary`]: MessageAssembler::at_message_boundary
#[derive(Debug, Default)]
pub struct MessageAssembler {
    buf: Vec<u8>,
    // Bytes of `buf` already consumed by completed header/messages;
    // compacted lazily so byte-at-a-time feeds stay O(n).
    pos: usize,
    header_done: bool,
}

impl MessageAssembler {
    /// A fresh assembler expecting the stream header first.
    pub fn new() -> MessageAssembler {
        MessageAssembler::default()
    }

    /// True once the peer's stream header has been validated.
    pub fn header_done(&self) -> bool {
        self.header_done
    }

    /// True when the stream sits exactly between messages — a peer
    /// close observed here is clean EOF, anywhere else it tore a
    /// header or message.
    pub fn at_message_boundary(&self) -> bool {
        self.header_done && self.pos == self.buf.len()
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn compact(&mut self) {
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Feeds freshly-read bytes and appends every message payload that
    /// completed to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] for a bad stream header, an
    /// oversized length prefix or a CRC mismatch. A failed stream is
    /// poisoned — callers close the connection.
    pub fn feed(&mut self, bytes: &[u8], out: &mut Vec<Vec<u8>>) -> Result<()> {
        self.buf.extend_from_slice(bytes);
        if !self.header_done {
            if self.pending().len() < frame::HEADER_LEN {
                return Ok(());
            }
            let header: [u8; frame::HEADER_LEN] =
                self.pending()[..frame::HEADER_LEN].try_into().expect("6 header bytes");
            validate_stream_header(&header)?;
            self.pos += frame::HEADER_LEN;
            self.header_done = true;
        }
        loop {
            let pending = self.pending();
            if pending.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes(pending[..4].try_into().expect("4 prefix bytes"));
            if len > MAX_MESSAGE {
                return Err(corrupt(0, format!("message length {len} exceeds the wire limit")));
            }
            let total = 4 + len as usize + 4;
            if pending.len() < total {
                break;
            }
            let body = &pending[4..4 + len as usize];
            let crc_bytes: [u8; 4] =
                pending[4 + len as usize..total].try_into().expect("4 trailer bytes");
            if crc32::checksum(body) != u32::from_le_bytes(crc_bytes) {
                return Err(corrupt(4, "message checksum mismatch".into()));
            }
            out.push(body.to_vec());
            self.pos += total;
        }
        self.compact();
        Ok(())
    }
}

/// A client-to-server command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Record a named suite workload; the RECORD job is queued and the
    /// assigned session id returned immediately.
    SubmitWorkload {
        /// Session label.
        name: String,
        /// Suite workload name (`fft`, `lu`, ...).
        workload: String,
        /// Worker threads (= cores).
        threads: u32,
        /// Problem-size scale.
        scale: Scale,
        /// Chunk-log encoding to store with.
        encoding: Encoding,
        /// Ordering mode to record under. Encoded as an optional
        /// trailing byte — total-order submissions stay byte-identical
        /// to the pre-ordering wire format.
        order: OrderMode,
    },
    /// Record a client-supplied PIA assembly program.
    SubmitProgram {
        /// Session label.
        name: String,
        /// PIA assembly source text.
        source: String,
        /// Cores to record on.
        cores: u32,
        /// Chunk-log encoding to store with.
        encoding: Encoding,
        /// Ordering mode to record under (optional trailing byte; see
        /// [`Request::SubmitWorkload`]).
        order: OrderMode,
    },
    /// List all sessions.
    Jobs,
    /// Server and per-session counters.
    Stats,
    /// Download a completed session's recording files.
    Fetch {
        /// Session id.
        id: u64,
    },
    /// Queue a REPLAY job for a completed session.
    Replay {
        /// Session id.
        id: u64,
    },
    /// Queue a VERIFY job (store-entry integrity check).
    Verify {
        /// Session id.
        id: u64,
    },
    /// Queue a RACES job (replay-time race detection).
    Races {
        /// Session id.
        id: u64,
    },
    /// Drain in-flight jobs and stop the server.
    Shutdown,
    /// The server's `qr-obs` metrics registry, rendered as text
    /// exposition.
    Metrics,
    /// Run a time-travel query against a completed session's recording
    /// (synchronously — queries are reads, not jobs).
    Query {
        /// Session id.
        id: u64,
        /// What slice of the timeline to materialize.
        query: ReplayQuery,
        /// Plan only: answer with the [`qr_replay::QueryPlan`] bytes
        /// instead of executing the replay.
        dry_run: bool,
        /// Refuse queries that would re-execute more than this many
        /// timeline events (0 = unlimited).
        max_events: u64,
        /// Client-chosen idempotence key: a repeated non-zero id
        /// returns the cached result without re-executing (0 = no
        /// deduplication).
        replay_id: u64,
    },
}

/// Lifecycle of one session's current/last job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the worker pool.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an error.
    Failed(String),
}

impl JobState {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// One session as reported by JOBS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobInfo {
    /// Session id (also the store entry id once recorded).
    pub id: u64,
    /// Session label.
    pub name: String,
    /// Workload name or `program` for submitted sources.
    pub workload: String,
    /// Current/last job kind (`record`, `replay`, ...).
    pub kind: String,
    /// Job lifecycle state.
    pub state: JobState,
    /// Outcome fingerprint (0 until the recording completes).
    pub fingerprint: u64,
}

/// Per-session operation counters, surfaced by STATS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Session id.
    pub id: u64,
    /// RECORD jobs completed.
    pub records: u64,
    /// REPLAY jobs completed.
    pub replays: u64,
    /// VERIFY jobs completed.
    pub verifies: u64,
    /// RACES jobs completed.
    pub races: u64,
    /// Uncompressed bytes of the stored recording.
    pub bytes_raw: u64,
    /// Compressed bytes of the stored recording.
    pub bytes_stored: u64,
    /// Simulated instructions executed for this session.
    pub instructions: u64,
    /// Whether the session records under `--order partial` (an
    /// `order.qrp` sidecar is part of the stored recording).
    pub partial_order: bool,
}

/// Server-wide counters, surfaced by STATS.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReport {
    /// Sessions accepted.
    pub accepted: u64,
    /// Submissions rejected by backpressure.
    pub rejected_busy: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs failed.
    pub failed: u64,
    /// Connections served.
    pub connections: u64,
    /// Registry shard count.
    pub shards: u32,
    /// Worker-pool size.
    pub workers: u32,
    /// Per-session counters, ordered by id.
    pub sessions: Vec<SessionStats>,
}

/// A server-to-client reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// The submission was queued under this session id.
    Submitted {
        /// Assigned session id.
        id: u64,
    },
    /// Backpressure: the worker queue is full; retry later.
    Busy {
        /// Jobs currently queued.
        queued: u32,
    },
    /// Reply to [`Request::Jobs`].
    JobList(Vec<JobInfo>),
    /// Reply to [`Request::Stats`].
    Stats(StatsReport),
    /// Reply to [`Request::Fetch`]: the recording's file images.
    Fetched {
        /// `(file name, bytes)` in save-layout order.
        files: Vec<(String, Vec<u8>)>,
        /// The recording's outcome fingerprint.
        fingerprint: u64,
    },
    /// The requested job was queued.
    Queued,
    /// Reply to [`Request::Shutdown`].
    ShuttingDown,
    /// Any failure (unknown session, bad workload, job error, ...).
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Reply to [`Request::Metrics`].
    Metrics {
        /// Prometheus-style text exposition of the server's registry.
        text: String,
    },
    /// Reply to [`Request::Query`].
    QueryAnswer {
        /// True when a repeated `replay_id` was answered from the
        /// session's idempotence cache without re-executing.
        cached: bool,
        /// [`qr_replay::QueryPlan`] bytes for a dry run, otherwise
        /// [`qr_replay::QueryResult`] bytes.
        payload: Vec<u8>,
    },
}

// ---- payload encoding ------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    varint::write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    varint::write_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn scale_tag(scale: Scale) -> u8 {
    match scale {
        Scale::Test => 0,
        Scale::Small => 1,
        Scale::Reference => 2,
    }
}

struct Decoder<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Decoder<'a> {
    fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, off: 0 }
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let (v, n) = varint::read_u64(self.buf.get(self.off..).unwrap_or(&[]))
            .map_err(|e| corrupt(self.off as u64, format!("{what}: {e}")))?;
        self.off += n;
        Ok(v)
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        u32::try_from(self.u64(what)?)
            .map_err(|_| corrupt(self.off as u64, format!("{what} out of range")))
    }

    fn byte(&mut self, what: &str) -> Result<u8> {
        let b = *self
            .buf
            .get(self.off)
            .ok_or_else(|| corrupt(self.off as u64, format!("truncated {what}")))?;
        self.off += 1;
        Ok(b)
    }

    fn bytes(&mut self, what: &str) -> Result<Vec<u8>> {
        let len = self.u64(what)? as usize;
        let data = self
            .buf
            .get(self.off..self.off.checked_add(len).unwrap_or(usize::MAX))
            .ok_or_else(|| corrupt(self.off as u64, format!("truncated {what}")))?;
        self.off += len;
        Ok(data.to_vec())
    }

    fn string(&mut self, what: &str) -> Result<String> {
        String::from_utf8(self.bytes(what)?)
            .map_err(|_| corrupt(self.off as u64, format!("{what} is not utf-8")))
    }

    fn encoding(&mut self) -> Result<Encoding> {
        let tag = self.byte("encoding tag")?;
        Encoding::ALL
            .into_iter()
            .find(|e| e.tag() == tag)
            .ok_or_else(|| corrupt(self.off as u64 - 1, format!("unknown encoding tag {tag}")))
    }

    fn scale(&mut self) -> Result<Scale> {
        match self.byte("scale tag")? {
            0 => Ok(Scale::Test),
            1 => Ok(Scale::Small),
            2 => Ok(Scale::Reference),
            t => Err(corrupt(self.off as u64 - 1, format!("unknown scale tag {t}"))),
        }
    }

    /// Optional trailing order-mode byte: absence means total order
    /// (the pre-ordering wire format), so old clients keep working.
    fn order_mode(&mut self) -> Result<OrderMode> {
        if self.off == self.buf.len() {
            return Ok(OrderMode::TotalOrder);
        }
        match self.byte("order mode")? {
            0 => Ok(OrderMode::TotalOrder),
            1 => Ok(OrderMode::PartialOrder),
            t => Err(corrupt(self.off as u64 - 1, format!("unknown order mode {t}"))),
        }
    }

    fn finish(self) -> Result<()> {
        if self.off != self.buf.len() {
            return Err(corrupt(
                self.off as u64,
                format!("{} trailing bytes", self.buf.len() - self.off),
            ));
        }
        Ok(())
    }
}

/// Serializes a request payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Ping => out.push(0),
        Request::SubmitWorkload { name, workload, threads, scale, encoding, order } => {
            out.push(1);
            put_str(&mut out, name);
            put_str(&mut out, workload);
            varint::write_u64(&mut out, u64::from(*threads));
            out.push(scale_tag(*scale));
            out.push(encoding.tag());
            // Only partial order adds a byte, keeping default-mode
            // submissions byte-identical to the pre-ordering format.
            if *order == OrderMode::PartialOrder {
                out.push(1);
            }
        }
        Request::SubmitProgram { name, source, cores, encoding, order } => {
            out.push(2);
            put_str(&mut out, name);
            put_str(&mut out, source);
            varint::write_u64(&mut out, u64::from(*cores));
            out.push(encoding.tag());
            if *order == OrderMode::PartialOrder {
                out.push(1);
            }
        }
        Request::Jobs => out.push(3),
        Request::Stats => out.push(4),
        Request::Fetch { id } => {
            out.push(5);
            varint::write_u64(&mut out, *id);
        }
        Request::Replay { id } => {
            out.push(6);
            varint::write_u64(&mut out, *id);
        }
        Request::Verify { id } => {
            out.push(7);
            varint::write_u64(&mut out, *id);
        }
        Request::Races { id } => {
            out.push(8);
            varint::write_u64(&mut out, *id);
        }
        Request::Shutdown => out.push(9),
        Request::Metrics => out.push(10),
        Request::Query { id, query, dry_run, max_events, replay_id } => {
            out.push(11);
            varint::write_u64(&mut out, *id);
            put_bytes(&mut out, &query.to_bytes());
            out.push(u8::from(*dry_run));
            varint::write_u64(&mut out, *max_events);
            varint::write_u64(&mut out, *replay_id);
        }
    }
    out
}

/// Parses a request payload. Panic-free; structural damage is
/// [`QrError::Corrupt`].
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] for unknown tags, truncation or
/// trailing bytes.
pub fn decode_request(payload: &[u8]) -> Result<Request> {
    let mut d = Decoder::new(payload);
    let req = match d.byte("request tag")? {
        0 => Request::Ping,
        1 => Request::SubmitWorkload {
            name: d.string("session name")?,
            workload: d.string("workload name")?,
            threads: d.u32("thread count")?,
            scale: d.scale()?,
            encoding: d.encoding()?,
            order: d.order_mode()?,
        },
        2 => Request::SubmitProgram {
            name: d.string("session name")?,
            source: d.string("program source")?,
            cores: d.u32("core count")?,
            encoding: d.encoding()?,
            order: d.order_mode()?,
        },
        3 => Request::Jobs,
        4 => Request::Stats,
        5 => Request::Fetch { id: d.u64("session id")? },
        6 => Request::Replay { id: d.u64("session id")? },
        7 => Request::Verify { id: d.u64("session id")? },
        8 => Request::Races { id: d.u64("session id")? },
        9 => Request::Shutdown,
        10 => Request::Metrics,
        11 => {
            let id = d.u64("session id")?;
            let query = ReplayQuery::from_bytes(&d.bytes("query bytes")?)?;
            let dry_run = match d.byte("dry-run flag")? {
                0 => false,
                1 => true,
                t => return Err(corrupt(d.off as u64 - 1, format!("unknown dry-run flag {t}"))),
            };
            Request::Query {
                id,
                query,
                dry_run,
                max_events: d.u64("max events")?,
                replay_id: d.u64("replay id")?,
            }
        }
        t => return Err(corrupt(0, format!("unknown request tag {t}"))),
    };
    d.finish()?;
    Ok(req)
}

/// Serializes a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Pong => out.push(0),
        Response::Submitted { id } => {
            out.push(1);
            varint::write_u64(&mut out, *id);
        }
        Response::Busy { queued } => {
            out.push(2);
            varint::write_u64(&mut out, u64::from(*queued));
        }
        Response::JobList(jobs) => {
            out.push(3);
            varint::write_u64(&mut out, jobs.len() as u64);
            for j in jobs {
                varint::write_u64(&mut out, j.id);
                put_str(&mut out, &j.name);
                put_str(&mut out, &j.workload);
                put_str(&mut out, &j.kind);
                match &j.state {
                    JobState::Queued => out.push(0),
                    JobState::Running => out.push(1),
                    JobState::Done => out.push(2),
                    JobState::Failed(msg) => {
                        out.push(3);
                        put_str(&mut out, msg);
                    }
                }
                varint::write_u64(&mut out, j.fingerprint);
            }
        }
        Response::Stats(s) => {
            out.push(4);
            for v in [s.accepted, s.rejected_busy, s.completed, s.failed, s.connections] {
                varint::write_u64(&mut out, v);
            }
            varint::write_u64(&mut out, u64::from(s.shards));
            varint::write_u64(&mut out, u64::from(s.workers));
            varint::write_u64(&mut out, s.sessions.len() as u64);
            for sess in &s.sessions {
                for v in [
                    sess.id,
                    sess.records,
                    sess.replays,
                    sess.verifies,
                    sess.races,
                    sess.bytes_raw,
                    sess.bytes_stored,
                    sess.instructions,
                    u64::from(sess.partial_order),
                ] {
                    varint::write_u64(&mut out, v);
                }
            }
        }
        Response::Fetched { files, fingerprint } => {
            out.push(5);
            varint::write_u64(&mut out, *fingerprint);
            varint::write_u64(&mut out, files.len() as u64);
            for (name, bytes) in files {
                put_str(&mut out, name);
                put_bytes(&mut out, bytes);
            }
        }
        Response::Queued => out.push(6),
        Response::ShuttingDown => out.push(7),
        Response::Error { message } => {
            out.push(8);
            put_str(&mut out, message);
        }
        Response::Metrics { text } => {
            out.push(9);
            put_str(&mut out, text);
        }
        Response::QueryAnswer { cached, payload } => {
            out.push(10);
            out.push(u8::from(*cached));
            put_bytes(&mut out, payload);
        }
    }
    out
}

/// Parses a response payload. Panic-free; structural damage is
/// [`QrError::Corrupt`].
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] for unknown tags, truncation or
/// trailing bytes.
pub fn decode_response(payload: &[u8]) -> Result<Response> {
    let mut d = Decoder::new(payload);
    let resp = match d.byte("response tag")? {
        0 => Response::Pong,
        1 => Response::Submitted { id: d.u64("session id")? },
        2 => Response::Busy { queued: d.u32("queue length")? },
        3 => {
            let count = d.u64("job count")?;
            if count > 1 << 20 {
                return Err(corrupt(0, format!("implausible job count {count}")));
            }
            let mut jobs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let id = d.u64("session id")?;
                let name = d.string("session name")?;
                let workload = d.string("workload name")?;
                let kind = d.string("job kind")?;
                let state = match d.byte("job state")? {
                    0 => JobState::Queued,
                    1 => JobState::Running,
                    2 => JobState::Done,
                    3 => JobState::Failed(d.string("failure message")?),
                    t => return Err(corrupt(d.off as u64 - 1, format!("unknown job state {t}"))),
                };
                let fingerprint = d.u64("fingerprint")?;
                jobs.push(JobInfo { id, name, workload, kind, state, fingerprint });
            }
            Response::JobList(jobs)
        }
        4 => {
            let accepted = d.u64("accepted")?;
            let rejected_busy = d.u64("rejected")?;
            let completed = d.u64("completed")?;
            let failed = d.u64("failed")?;
            let connections = d.u64("connections")?;
            let shards = d.u32("shards")?;
            let workers = d.u32("workers")?;
            let count = d.u64("session count")?;
            if count > 1 << 20 {
                return Err(corrupt(0, format!("implausible session count {count}")));
            }
            let mut sessions = Vec::with_capacity(count as usize);
            for _ in 0..count {
                sessions.push(SessionStats {
                    id: d.u64("session id")?,
                    records: d.u64("records")?,
                    replays: d.u64("replays")?,
                    verifies: d.u64("verifies")?,
                    races: d.u64("races")?,
                    bytes_raw: d.u64("raw bytes")?,
                    bytes_stored: d.u64("stored bytes")?,
                    instructions: d.u64("instructions")?,
                    partial_order: d.u64("order mode")? != 0,
                });
            }
            Response::Stats(StatsReport {
                accepted,
                rejected_busy,
                completed,
                failed,
                connections,
                shards,
                workers,
                sessions,
            })
        }
        5 => {
            let fingerprint = d.u64("fingerprint")?;
            let count = d.u64("file count")?;
            if count > 16 {
                return Err(corrupt(0, format!("implausible file count {count}")));
            }
            let mut files = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let name = d.string("file name")?;
                let bytes = d.bytes("file bytes")?;
                files.push((name, bytes));
            }
            Response::Fetched { files, fingerprint }
        }
        6 => Response::Queued,
        7 => Response::ShuttingDown,
        8 => Response::Error { message: d.string("error message")? },
        9 => Response::Metrics { text: d.string("metrics text")? },
        10 => {
            let cached = match d.byte("cached flag")? {
                0 => false,
                1 => true,
                t => return Err(corrupt(d.off as u64 - 1, format!("unknown cached flag {t}"))),
            };
            Response::QueryAnswer { cached, payload: d.bytes("answer payload")? }
        }
        t => return Err(corrupt(0, format!("unknown response tag {t}"))),
    };
    d.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::SubmitWorkload {
                name: "s1".into(),
                workload: "fft".into(),
                threads: 4,
                scale: Scale::Small,
                encoding: Encoding::Delta,
                order: OrderMode::TotalOrder,
            },
            Request::SubmitWorkload {
                name: "s1p".into(),
                workload: "lu".into(),
                threads: 8,
                scale: Scale::Test,
                encoding: Encoding::Packed,
                order: OrderMode::PartialOrder,
            },
            Request::SubmitProgram {
                name: "s2".into(),
                source: "MOV r0, 1\nEXIT".into(),
                cores: 2,
                encoding: Encoding::Raw,
                order: OrderMode::TotalOrder,
            },
            Request::SubmitProgram {
                name: "s2p".into(),
                source: "HALT".into(),
                cores: 1,
                encoding: Encoding::Delta,
                order: OrderMode::PartialOrder,
            },
            Request::Jobs,
            Request::Stats,
            Request::Fetch { id: 9 },
            Request::Replay { id: 1 },
            Request::Verify { id: u64::MAX },
            Request::Races { id: 3 },
            Request::Shutdown,
            Request::Metrics,
            Request::Query {
                id: 4,
                query: ReplayQuery::Range { start: 2, end: 9 },
                dry_run: false,
                max_events: 0,
                replay_id: 0,
            },
            Request::Query {
                id: 5,
                query: ReplayQuery::ReverseStep { events: 3 },
                dry_run: true,
                max_events: 1000,
                replay_id: 0xDEAD_BEEF,
            },
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Submitted { id: 12 },
            Response::Busy { queued: 7 },
            Response::JobList(vec![
                JobInfo {
                    id: 1,
                    name: "a".into(),
                    workload: "fft".into(),
                    kind: "record".into(),
                    state: JobState::Done,
                    fingerprint: 0xFEED,
                },
                JobInfo {
                    id: 2,
                    name: "b".into(),
                    workload: "program".into(),
                    kind: "record".into(),
                    state: JobState::Failed("boom".into()),
                    fingerprint: 0,
                },
            ]),
            Response::Stats(StatsReport {
                accepted: 5,
                rejected_busy: 1,
                completed: 4,
                failed: 1,
                connections: 9,
                shards: 4,
                workers: 2,
                sessions: vec![SessionStats {
                    id: 1,
                    records: 1,
                    replays: 2,
                    verifies: 0,
                    races: 1,
                    bytes_raw: 4096,
                    bytes_stored: 1024,
                    instructions: 1_000_000,
                    partial_order: true,
                }],
            }),
            Response::Fetched {
                files: vec![("meta.qrm".into(), vec![1, 2, 3]), ("chunks.qrl".into(), vec![])],
                fingerprint: 77,
            },
            Response::Queued,
            Response::ShuttingDown,
            Response::Error { message: "no such session".into() },
            Response::Metrics {
                text: "# TYPE qr_server_requests_total counter\nqr_server_requests_total{kind=\"ping\"} 1\n"
                    .into(),
            },
            Response::QueryAnswer { cached: true, payload: vec![0xAB, 0, 7] },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in all_requests() {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in all_responses() {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn stream_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        write_stream_header(&mut wire).unwrap();
        for req in all_requests() {
            write_message(&mut wire, &encode_request(&req)).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        read_stream_header(&mut cursor).unwrap();
        let mut seen = Vec::new();
        while let Some(payload) = read_message(&mut cursor).unwrap() {
            seen.push(decode_request(&payload).unwrap());
        }
        assert_eq!(seen, all_requests());
    }

    #[test]
    fn header_of_wrong_kind_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&frame::MAGIC);
        wire.push(frame::VERSION);
        wire.push(PayloadKind::ChunkLog.code());
        let err = read_stream_header(&mut std::io::Cursor::new(wire)).unwrap_err();
        assert!(err.to_string().contains("chunk log"), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_corrupt_not_oom() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_message(&mut std::io::Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, QrError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn clean_close_between_messages_is_none() {
        let empty: &[u8] = &[];
        assert!(read_message(&mut std::io::Cursor::new(empty)).unwrap().is_none());
    }

    #[test]
    fn torn_length_prefix_is_corrupt_not_clean_eof() {
        // A peer that died after 1-3 prefix bytes must NOT read as a
        // clean close: that would silently drop the torn message.
        for cut in 1..4usize {
            let full = 8u32.to_le_bytes();
            let err = read_message(&mut std::io::Cursor::new(&full[..cut])).unwrap_err();
            assert!(matches!(err, QrError::Corrupt { .. }), "cut={cut}: {err}");
            assert!(err.to_string().contains("truncated message length"), "cut={cut}: {err}");
        }
    }

    #[test]
    fn assembler_reassembles_byte_at_a_time() {
        let mut wire = Vec::new();
        write_stream_header(&mut wire).unwrap();
        for req in all_requests() {
            write_message(&mut wire, &encode_request(&req)).unwrap();
        }
        let mut asm = MessageAssembler::new();
        let mut payloads = Vec::new();
        for &b in &wire {
            asm.feed(&[b], &mut payloads).unwrap();
        }
        assert!(asm.header_done());
        assert!(asm.at_message_boundary(), "stream ends exactly between messages");
        let seen: Vec<Request> =
            payloads.iter().map(|p| decode_request(p).unwrap()).collect();
        assert_eq!(seen, all_requests());
    }

    #[test]
    fn assembler_flags_torn_tails_and_bad_streams() {
        // Torn mid-message: not at a boundary, no payload surfaced.
        let mut wire = Vec::new();
        write_stream_header(&mut wire).unwrap();
        write_message(&mut wire, &encode_request(&Request::Ping)).unwrap();
        wire.truncate(wire.len() - 3);
        let mut asm = MessageAssembler::new();
        let mut payloads = Vec::new();
        asm.feed(&wire, &mut payloads).unwrap();
        assert!(payloads.is_empty());
        assert!(!asm.at_message_boundary());

        // Wrong magic in the stream header poisons the stream.
        let mut asm = MessageAssembler::new();
        let err = asm.feed(b"XXXXXX", &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("bad stream magic"), "{err}");

        // A flipped payload byte fails the CRC.
        let mut wire = Vec::new();
        write_stream_header(&mut wire).unwrap();
        write_message(&mut wire, &encode_request(&Request::Ping)).unwrap();
        let corrupt_at = frame::HEADER_LEN + 4;
        wire[corrupt_at] ^= 0xff;
        let mut asm = MessageAssembler::new();
        let err = asm.feed(&wire, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request::Ping);
        payload.push(0);
        assert!(decode_request(&payload).is_err());
    }

    #[test]
    fn total_order_submits_add_no_wire_bytes() {
        // The order field must be invisible on the wire for the default
        // mode (old servers and pinned golden requests keep working),
        // and exactly one byte for partial order.
        let total = Request::SubmitProgram {
            name: "s".into(),
            source: "HALT".into(),
            cores: 1,
            encoding: Encoding::Raw,
            order: OrderMode::TotalOrder,
        };
        let partial = Request::SubmitProgram {
            name: "s".into(),
            source: "HALT".into(),
            cores: 1,
            encoding: Encoding::Raw,
            order: OrderMode::PartialOrder,
        };
        let total_bytes = encode_request(&total);
        let partial_bytes = encode_request(&partial);
        assert_eq!(partial_bytes.len(), total_bytes.len() + 1);
        assert_eq!(&partial_bytes[..total_bytes.len()], &total_bytes[..]);
        assert_eq!(decode_request(&total_bytes).unwrap(), total);
        assert_eq!(decode_request(&partial_bytes).unwrap(), partial);
        // An unknown trailing order byte is corrupt, not ignored.
        let mut bad = total_bytes.clone();
        bad.push(7);
        assert!(decode_request(&bad).is_err());
    }
}
