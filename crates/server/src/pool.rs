//! A bounded worker pool with submission backpressure.
//!
//! Jobs (RECORD/REPLAY/VERIFY/RACES closures) queue into a
//! fixed-capacity deque served by OS worker threads. A full queue
//! rejects the submission — [`WorkerPool::try_submit`] returns the task
//! to the caller, which the server surfaces as a `Busy` response
//! instead of buffering unboundedly (the wire protocol's backpressure
//! story). Shutdown is graceful: workers drain every queued task before
//! exiting, so no accepted session is left dangling; combined with the
//! store's stage-and-rename commit this is what makes shutdown unable
//! to leave a torn store entry.
//!
//! Dispatch is condvar-driven end to end — no polling anywhere — and
//! the pool is panic-tolerant: a task that panics is contained
//! ([`std::panic::catch_unwind`]), its worker keeps serving, and every
//! lock acquisition recovers from poisoning, so one panicking job can
//! never wedge [`WorkerPool::drain`] or shutdown.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// A unit of work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: VecDeque<Task>,
    shutting_down: bool,
    active: usize,
    panicked: u64,
}

struct Inner {
    state: Mutex<State>,
    capacity: usize,
    wake: Condvar,
    idle: Condvar,
}

impl Inner {
    /// Locks the pool state, recovering from poisoning: the state is a
    /// plain queue + counters, consistent at every await point, so a
    /// panic elsewhere must not wedge drain/shutdown behind a
    /// `PoisonError`.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A fixed-size thread pool over a bounded queue.
pub struct WorkerPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads over a queue of `capacity` pending
    /// tasks (both at least 1).
    pub fn new(workers: usize, capacity: usize) -> WorkerPool {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutting_down: false,
                active: 0,
                panicked: 0,
            }),
            capacity: capacity.max(1),
            wake: Condvar::new(),
            idle: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qr-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning worker thread")
            })
            .collect();
        WorkerPool { inner, workers: handles }
    }

    /// Queues a task, or returns it when the queue is full
    /// (backpressure) or the pool is shutting down.
    ///
    /// # Errors
    ///
    /// Returns the rejected task plus the current queue length.
    pub fn try_submit(&self, task: Task) -> std::result::Result<(), (Task, usize)> {
        let mut state = self.inner.lock();
        if state.shutting_down || state.queue.len() >= self.inner.capacity {
            let queued = state.queue.len();
            return Err((task, queued));
        }
        state.queue.push_back(task);
        crate::obs::queue_depth(state.queue.len());
        drop(state);
        self.inner.wake.notify_one();
        Ok(())
    }

    /// Pending (not yet started) tasks.
    pub fn queued(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Tasks that panicked instead of completing (contained; their
    /// workers kept running).
    pub fn panicked(&self) -> u64 {
        self.inner.lock().panicked
    }

    /// Blocks until the queue is empty and every worker is idle.
    pub fn drain(&self) {
        let mut state = self.inner.lock();
        while !state.queue.is_empty() || state.active > 0 {
            state = self.inner.idle.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops accepting work, drains every queued task, and joins the
    /// workers.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.lock().shutting_down = true;
        self.inner.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let task = {
            let mut state = inner.lock();
            loop {
                if let Some(task) = state.queue.pop_front() {
                    state.active += 1;
                    crate::obs::queue_depth(state.queue.len());
                    break task;
                }
                if state.shutting_down {
                    return;
                }
                state = inner.wake.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Contain panics so `active` is always decremented: a panicking
        // job must not leave drain() waiting on a worker that will never
        // report idle (and must not kill the worker thread either).
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err();
        if panicked {
            crate::obs::task_panicked();
        }
        let mut state = inner.lock();
        state.active -= 1;
        if panicked {
            state.panicked += 1;
        }
        let all_idle = state.queue.is_empty() && state.active == 0;
        drop(state);
        if all_idle {
            inner.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn runs_everything_submitted() {
        let pool = WorkerPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.try_submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap_or_else(|_| panic!("queue should not fill"));
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        pool.shutdown();
    }

    #[test]
    fn full_queue_applies_backpressure() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = WorkerPool::new(1, 2);
        // Block the single worker.
        let g = Arc::clone(&gate);
        pool.try_submit(Box::new(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }))
        .unwrap_or_else(|_| panic!("first submit"));
        // Wait for the worker to pick the blocker up, then fill the queue.
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        pool.try_submit(Box::new(|| {})).unwrap_or_else(|_| panic!("fills slot 1"));
        pool.try_submit(Box::new(|| {})).unwrap_or_else(|_| panic!("fills slot 2"));
        let rejected = pool.try_submit(Box::new(|| {}));
        assert!(rejected.is_err(), "third pending task must be rejected");
        assert_eq!(rejected.err().map(|(_, q)| q), Some(2));
        // Open the gate; everything drains.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.drain();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(2, 128);
        for _ in 0..40 {
            let counter = Arc::clone(&counter);
            pool.try_submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap_or_else(|_| panic!("submit"));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 40, "shutdown must drain the queue");
    }

    #[test]
    fn panicking_task_does_not_wedge_drain_or_shutdown() {
        let pool = WorkerPool::new(2, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.try_submit(Box::new(|| panic!("job blew up")))
            .unwrap_or_else(|_| panic!("submit panicker"));
        for _ in 0..8 {
            let counter = Arc::clone(&counter);
            pool.try_submit(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap_or_else(|_| panic!("submit"));
        }
        // Drain must return even though one task panicked mid-flight.
        pool.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        assert_eq!(pool.panicked(), 1);
        // Workers survived the panic: the pool still executes new work.
        let counter2 = Arc::clone(&counter);
        pool.try_submit(Box::new(move || {
            counter2.fetch_add(1, Ordering::SeqCst);
        }))
        .unwrap_or_else(|_| panic!("submit after panic"));
        pool.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 9);
        pool.shutdown();
    }

    #[test]
    fn dispatch_latency_is_not_sleep_quantized() {
        // Regression test for the polling dispatch this pool once had: a
        // submit→complete round trip must go through condvar wakeups, so
        // many sequential round trips stay far under what any
        // millisecond-granular sleep loop could deliver.
        let pool = WorkerPool::new(1, 16);
        let rounds = 50u32;
        let started = Instant::now();
        for _ in 0..rounds {
            let done = Arc::new((Mutex::new(false), Condvar::new()));
            let task_done = Arc::clone(&done);
            pool.try_submit(Box::new(move || {
                let (lock, cv) = &*task_done;
                *lock.lock().unwrap() = true;
                cv.notify_all();
            }))
            .unwrap_or_else(|_| panic!("submit"));
            let (lock, cv) = &*done;
            let mut finished = lock.lock().unwrap();
            while !*finished {
                finished = cv.wait(finished).unwrap();
            }
        }
        let elapsed = started.elapsed();
        // 50 round trips through a 1 ms-sleep dispatcher would take
        // >= 50 ms; condvar dispatch does all of them in a few
        // milliseconds. The 25 ms bound keeps a 10x margin for slow CI
        // hosts while still catching any sleep-quantized dispatch.
        assert!(
            elapsed < Duration::from_millis(25),
            "{rounds} dispatch round trips took {elapsed:?} — dispatch looks sleep-quantized"
        );
        pool.shutdown();
    }
}
