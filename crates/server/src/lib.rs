#![warn(missing_docs)]

//! `qr-server` — the `quickrecd` record/replay service.
//!
//! The binary and library behind the daemon: a `std::net`
//! (Unix-socket or TCP) server speaking a length-prefixed binary
//! protocol built on `qr_common::frame` ([`proto`]) through an
//! event-driven nonblocking connection layer (`event`: a `poll(2)`
//! readiness loop multiplexing thousands of connections per worker),
//! with a sharded session registry ([`registry`]), a bounded worker
//! pool with backpressure ([`pool`]), and job execution (RECORD /
//! REPLAY / VERIFY / RACES) over the simulator stack, persisting
//! results into a `qr_store::RecordingStore`. Graceful shutdown drains
//! in-flight jobs and the store's atomic commit protocol guarantees no
//! torn entry is ever visible.

pub mod client;
pub mod daemon;
mod event;
mod obs;
pub mod pool;
pub mod proto;
pub mod registry;
pub mod server;

pub use client::Client;
pub use pool::WorkerPool;
pub use proto::{Endpoint, Request, Response};
pub use server::{Server, ServerConfig, ServerHandle};
