//! `qr-obs` instrumentation for the daemon: request latency, queue
//! depth, busy rejections, connection/accept accounting, drain time.
//!
//! Every hook is gated on [`qr_obs::enabled`] and touches only
//! process-local atomics — nothing here feeds back into job execution,
//! responses, or the store, so recordings and `repro` output are
//! byte-identical with metrics on or off.

use crate::proto::Request;
use qr_obs::{Counter, Gauge, Histogram, LATENCY_US};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Wire-request kinds, indexed by the position returned by
/// [`kind_index`]. One label value per [`Request`] variant.
const KINDS: [&str; 12] = [
    "ping",
    "submit_workload",
    "submit_program",
    "jobs",
    "stats",
    "fetch",
    "replay",
    "verify",
    "races",
    "shutdown",
    "metrics",
    "query",
];

fn kind_index(request: &Request) -> usize {
    match request {
        Request::Ping => 0,
        Request::SubmitWorkload { .. } => 1,
        Request::SubmitProgram { .. } => 2,
        Request::Jobs => 3,
        Request::Stats => 4,
        Request::Fetch { .. } => 5,
        Request::Replay { .. } => 6,
        Request::Verify { .. } => 7,
        Request::Races { .. } => 8,
        Request::Shutdown => 9,
        Request::Metrics => 10,
        Request::Query { .. } => 11,
    }
}

/// The request kind's metric label (also used by trace spans).
pub(crate) fn kind_label(request: &Request) -> &'static str {
    KINDS[kind_index(request)]
}

fn request_counters() -> &'static [Arc<Counter>; 12] {
    static CELL: OnceLock<[Arc<Counter>; 12]> = OnceLock::new();
    CELL.get_or_init(|| {
        KINDS.map(|kind| {
            qr_obs::global().counter(
                "qr_server_requests_total",
                "Wire requests handled, by request kind.",
                &[("kind", kind)],
            )
        })
    })
}

fn latency_histograms() -> &'static [Arc<Histogram>; 12] {
    static CELL: OnceLock<[Arc<Histogram>; 12]> = OnceLock::new();
    CELL.get_or_init(|| {
        KINDS.map(|kind| {
            qr_obs::global().histogram(
                "qr_server_request_latency_us",
                "Wire request handling latency in microseconds, by request kind.",
                &[("kind", kind)],
                LATENCY_US,
            )
        })
    })
}

fn depth_gauge() -> &'static Arc<Gauge> {
    static CELL: OnceLock<Arc<Gauge>> = OnceLock::new();
    CELL.get_or_init(|| {
        qr_obs::global().gauge(
            "qr_server_queue_depth",
            "Jobs currently waiting in the worker-pool queue.",
            &[],
        )
    })
}

fn busy_counter() -> &'static Arc<Counter> {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| {
        qr_obs::global().counter(
            "qr_server_busy_rejections_total",
            "Submissions rejected because the worker queue was full.",
            &[],
        )
    })
}

fn connection_counter() -> &'static Arc<Counter> {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| {
        qr_obs::global().counter(
            "qr_server_connections_total",
            "Connections accepted over the server's lifetime.",
            &[],
        )
    })
}

fn open_connections_gauge() -> &'static Arc<Gauge> {
    static CELL: OnceLock<Arc<Gauge>> = OnceLock::new();
    CELL.get_or_init(|| {
        qr_obs::global().gauge(
            "qr_server_open_connections",
            "Connections currently owned by the event loop.",
            &[],
        )
    })
}

fn event_wakeup_counter() -> &'static Arc<Counter> {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| {
        qr_obs::global().counter(
            "qr_server_event_loop_wakeups_total",
            "Event-worker poll returns (readiness or timeout).",
            &[],
        )
    })
}

fn event_events_counter() -> &'static Arc<Counter> {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| {
        qr_obs::global().counter(
            "qr_server_event_loop_events_total",
            "Connection readiness events handled by the event workers.",
            &[],
        )
    })
}

fn event_adopted_counter() -> &'static Arc<Counter> {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| {
        qr_obs::global().counter(
            "qr_server_event_loop_conns_adopted_total",
            "Connections handed from the accept loop to an event worker.",
            &[],
        )
    })
}

fn accept_error_counter() -> &'static Arc<Counter> {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| {
        qr_obs::global().counter(
            "qr_server_accept_errors_total",
            "Accept-loop errors (logged, backed off, and retried).",
            &[],
        )
    })
}

fn panic_counter() -> &'static Arc<Counter> {
    static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
    CELL.get_or_init(|| {
        qr_obs::global().counter(
            "qr_server_worker_panics_total",
            "Worker-pool tasks that panicked (contained; the worker survived).",
            &[],
        )
    })
}

fn drain_histogram() -> &'static Arc<Histogram> {
    static CELL: OnceLock<Arc<Histogram>> = OnceLock::new();
    CELL.get_or_init(|| {
        qr_obs::global().histogram(
            "qr_server_drain_latency_us",
            "Shutdown drain time (connections + queued jobs) in microseconds.",
            &[],
            LATENCY_US,
        )
    })
}

/// `Some(now)` only when metrics are enabled, so disabled hot paths
/// never read the clock.
pub(crate) fn clock() -> Option<Instant> {
    qr_obs::enabled().then(Instant::now)
}

/// Records one handled request: count + latency by kind.
pub(crate) fn request_handled(kind: usize, start: Option<Instant>) {
    if let Some(start) = start {
        request_counters()[kind].inc();
        latency_histograms()[kind].observe_since(start);
    }
}

/// The request's index for [`request_handled`] (computed before the
/// request value is consumed by the handler).
pub(crate) fn request_index(request: &Request) -> usize {
    kind_index(request)
}

/// Tracks the worker-pool queue depth after a push or pop.
pub(crate) fn queue_depth(depth: usize) {
    if qr_obs::enabled() {
        depth_gauge().set(depth as i64);
    }
}

/// Counts one backpressure rejection.
pub(crate) fn busy_rejection() {
    if qr_obs::enabled() {
        busy_counter().inc();
    }
}

/// Counts one accepted connection.
pub(crate) fn connection_opened() {
    if qr_obs::enabled() {
        connection_counter().inc();
    }
}

/// Moves the open-connections gauge by `delta` (+1 on adopt, -1 on
/// close — a delta, not a set, so several in-process servers sharing
/// the global registry stay additive).
pub(crate) fn connection_delta(delta: i64) {
    if qr_obs::enabled() {
        open_connections_gauge().add(delta);
    }
}

/// Counts one event-worker poll return.
pub(crate) fn event_wakeup() {
    if qr_obs::enabled() {
        event_wakeup_counter().inc();
    }
}

/// Counts `n` connection readiness events handled in one poll return.
pub(crate) fn event_events(n: usize) {
    if qr_obs::enabled() && n > 0 {
        event_events_counter().add(n as u64);
    }
}

/// Counts one connection adopted by an event worker.
pub(crate) fn event_adopted() {
    if qr_obs::enabled() {
        event_adopted_counter().inc();
    }
}

/// Counts one accept-loop error.
pub(crate) fn accept_error() {
    if qr_obs::enabled() {
        accept_error_counter().inc();
    }
}

/// Counts one contained worker panic.
pub(crate) fn task_panicked() {
    if qr_obs::enabled() {
        panic_counter().inc();
    }
}

/// Records how long shutdown took to drain connections and jobs.
pub(crate) fn drain_finished(start: Option<Instant>) {
    if let Some(start) = start {
        drain_histogram().observe_since(start);
    }
}

fn query_counters() -> &'static [Arc<Counter>; 2] {
    static CELL: OnceLock<[Arc<Counter>; 2]> = OnceLock::new();
    CELL.get_or_init(|| {
        ["executed", "cached"].map(|outcome| {
            qr_obs::global().counter(
                "qr_server_queries_total",
                "Time-travel queries answered, by outcome (executed vs idempotence-cache hit).",
                &[("outcome", outcome)],
            )
        })
    })
}

/// Counts one answered time-travel query; `cached` marks an
/// idempotence-cache hit that skipped re-execution.
pub(crate) fn query_answered(cached: bool) {
    if qr_obs::enabled() {
        query_counters()[usize::from(cached)].inc();
    }
}
