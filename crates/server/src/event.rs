//! The event-driven nonblocking connection layer.
//!
//! The accept loop hands every accepted socket (switched to
//! nonblocking mode) to one of N event workers via a [`Router`]
//! mailbox. Each worker multiplexes its connections over a single
//! `poll(2)` readiness loop — declared directly against the stable
//! syscall ABI, so the crate stays dependency-free — and drives one
//! [`Conn`] state machine per socket:
//!
//! * reads feed a [`MessageAssembler`] that incrementally reassembles
//!   length-prefixed wire messages (no blocking `read_exact`, no
//!   per-connection thread);
//! * complete requests are handled inline (they are registry/store
//!   reads and queue pushes, all microsecond-scale) except QUERY,
//!   which replays instructions and is offloaded to the job
//!   [`WorkerPool`], its response posted back through the mailbox;
//! * responses are queued in a per-connection outbox and flushed as
//!   the socket accepts them, so a slow reader exerts backpressure on
//!   itself (reads pause past the high-water mark) without stalling
//!   anyone else.
//!
//! Fairness: each readiness event reads a bounded number of chunks, so
//! a firehose connection cannot monopolise its worker, and a byte-at-
//! a-time ("slow loris") peer costs one assembler feed per poll round,
//! not a parked OS thread.
//!
//! Shutdown: workers observe the shutdown flag (the accept loop and
//! [`crate::server::request_shutdown`] wake them through the mailbox),
//! stop reading, flush pending responses, wait for in-flight offloaded
//! queries, and exit; a 30s deadline bounds peers that never drain.

use crate::pool::WorkerPool;
use crate::proto::{self, MessageAssembler, Request, Response};
use crate::server::{handle_request, request_shutdown, Shared};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Parsed-but-unprocessed requests buffered per connection before the
/// worker stops reading from it (pipelining depth).
const INBOX_LIMIT: usize = 32;
/// Unsent response bytes per connection before the worker stops
/// reading new requests from it (write backpressure).
const OUTBOX_HIGH_WATER: usize = 1 << 20;
/// Read size per `read(2)` call.
const READ_CHUNK: usize = 16 * 1024;
/// `read(2)` calls per readiness event, bounding how long one noisy
/// connection can hold its worker.
const READ_ROUNDS: usize = 4;
/// How long a draining worker waits for peers to take their last
/// responses and offloaded queries to complete.
const DRAIN_DEADLINE: Duration = Duration::from_secs(30);

// ---- poll(2) shim ----------------------------------------------------

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

/// `struct pollfd` from `poll(2)`.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

// Declared directly (no libc crate): the layout and semantics of
// poll(2) are part of the stable unix syscall ABI on every platform
// this daemon builds for.
extern "C" {
    fn poll(
        fds: *mut PollFd,
        nfds: std::ffi::c_ulong,
        timeout: std::ffi::c_int,
    ) -> std::ffi::c_int;
}

/// Blocks until a registered fd is ready or `timeout_ms` passes,
/// retrying `EINTR`. Returns the number of ready fds.
fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = std::io::Error::last_os_error();
        if err.kind() != ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

// ---- transport -------------------------------------------------------

/// One accepted socket in nonblocking mode: both families, unified.
pub(crate) trait NbStream: Read + Write + Send {
    /// The raw fd for the poll set.
    fn fd(&self) -> RawFd;
}

impl NbStream for std::net::TcpStream {
    fn fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

impl NbStream for UnixStream {
    fn fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

// ---- router ----------------------------------------------------------

/// What the accept loop / pool workers hand an event worker.
#[derive(Default)]
struct Inbound {
    adopted: Vec<Box<dyn NbStream>>,
    /// (connection id, encoded response payload) for completed
    /// offloaded requests.
    completions: Vec<(u64, Vec<u8>)>,
}

struct Mailbox {
    queue: Mutex<Inbound>,
    /// Write end of the worker's wake pipe (a nonblocking socketpair;
    /// the read end sits in the worker's poll set).
    wake_tx: UnixStream,
}

impl Mailbox {
    fn wake(&self) {
        // One byte is enough; WouldBlock means a wake is already
        // pending, which is just as good.
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// Routes accepted connections and offload completions to the event
/// workers.
pub(crate) struct Router {
    mailboxes: Vec<Mailbox>,
    next: AtomicUsize,
}

impl Router {
    /// Builds a router with `workers` mailboxes; returns the wake-pipe
    /// read ends, one per worker, in worker order.
    pub(crate) fn new(workers: usize) -> std::io::Result<(Router, Vec<UnixStream>)> {
        let mut mailboxes = Vec::new();
        let mut wake_rxs = Vec::new();
        for _ in 0..workers.max(1) {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            mailboxes.push(Mailbox { queue: Mutex::new(Inbound::default()), wake_tx: tx });
            wake_rxs.push(rx);
        }
        Ok((Router { mailboxes, next: AtomicUsize::new(0) }, wake_rxs))
    }

    /// Hands an accepted stream to the next worker (round robin).
    pub(crate) fn adopt(&self, stream: Box<dyn NbStream>) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.mailboxes.len();
        let mailbox = &self.mailboxes[idx];
        mailbox.queue.lock().unwrap_or_else(PoisonError::into_inner).adopted.push(stream);
        mailbox.wake();
    }

    /// Posts an offloaded request's encoded response back to the
    /// worker owning connection `conn`.
    fn complete(&self, worker: usize, conn: u64, payload: Vec<u8>) {
        let mailbox = &self.mailboxes[worker];
        mailbox
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .completions
            .push((conn, payload));
        mailbox.wake();
    }

    /// Wakes every worker (shutdown).
    pub(crate) fn wake_all(&self) {
        for mailbox in &self.mailboxes {
            mailbox.wake();
        }
    }

    fn take_inbound(&self, worker: usize) -> Inbound {
        let mut queue =
            self.mailboxes[worker].queue.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *queue)
    }
}

// ---- per-connection state machine ------------------------------------

struct Conn {
    stream: Box<dyn NbStream>,
    assembler: MessageAssembler,
    /// Complete request payloads not yet dispatched.
    inbox: VecDeque<Vec<u8>>,
    /// Queued response bytes; `out_pos..` is still unsent.
    outbox: Vec<u8>,
    out_pos: usize,
    /// An offloaded request is running on the pool; its response must
    /// precede any later request's, so dispatch pauses.
    in_flight: bool,
    close_after_flush: bool,
    peer_gone: bool,
    read_eof: bool,
}

impl Conn {
    fn new(stream: Box<dyn NbStream>) -> Conn {
        let mut outbox = Vec::with_capacity(64);
        let _ = proto::write_stream_header(&mut outbox);
        Conn {
            stream,
            assembler: MessageAssembler::new(),
            inbox: VecDeque::new(),
            outbox,
            out_pos: 0,
            in_flight: false,
            close_after_flush: false,
            peer_gone: false,
            read_eof: false,
        }
    }

    fn pending_out(&self) -> usize {
        self.outbox.len() - self.out_pos
    }

    fn queue_payload(&mut self, payload: &[u8]) {
        // Writing into a Vec cannot fail; the only error path is the
        // oversize guard, answered structurally instead of hanging up
        // unframed.
        if proto::write_message(&mut self.outbox, payload).is_err() {
            let err = Response::Error { message: "response exceeds the wire limit".into() };
            let _ = proto::write_message(&mut self.outbox, &proto::encode_response(&err));
        }
    }

    fn queue_response(&mut self, response: &Response) {
        self.queue_payload(&proto::encode_response(response));
    }

    /// Writes as much of the outbox as the socket takes right now.
    fn try_flush(&mut self) {
        while self.out_pos < self.outbox.len() {
            match self.stream.write(&self.outbox[self.out_pos..]) {
                Ok(0) => {
                    self.peer_gone = true;
                    break;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.peer_gone = true;
                    break;
                }
            }
        }
        if self.peer_gone || self.out_pos == self.outbox.len() {
            self.outbox.clear();
            self.out_pos = 0;
        } else if self.out_pos >= 64 * 1024 {
            // Compact occasionally so a long-lived slow reader does
            // not pin every response it ever consumed.
            self.outbox.drain(..self.out_pos);
            self.out_pos = 0;
        }
    }

    fn wants_read(&self, draining: bool) -> bool {
        !draining
            && !self.read_eof
            && !self.peer_gone
            && !self.close_after_flush
            && self.inbox.len() < INBOX_LIMIT
            && self.pending_out() < OUTBOX_HIGH_WATER
    }

    fn wants_write(&self) -> bool {
        !self.peer_gone && self.pending_out() > 0
    }

    /// True when the connection should be closed and forgotten.
    fn finished(&self, draining: bool) -> bool {
        if self.peer_gone {
            return true;
        }
        if self.in_flight || self.pending_out() > 0 {
            return false;
        }
        self.close_after_flush || draining || (self.read_eof && self.inbox.is_empty())
    }
}

// ---- dispatch --------------------------------------------------------

struct Ctx<'a> {
    shared: &'a Arc<Shared>,
    pool: &'a Arc<WorkerPool>,
    worker: usize,
}

/// Dispatches buffered requests in order until the inbox is empty or
/// an offloaded request blocks the pipeline, then flushes.
fn pump(conn_id: u64, conn: &mut Conn, ctx: &Ctx) {
    while !conn.in_flight && !conn.close_after_flush {
        let Some(payload) = conn.inbox.pop_front() else { break };
        match proto::decode_request(&payload) {
            Ok(request) => dispatch(conn_id, conn, request, ctx),
            Err(e) => conn.queue_response(&Response::Error { message: e.to_string() }),
        }
    }
    conn.try_flush();
}

fn dispatch(conn_id: u64, conn: &mut Conn, request: Request, ctx: &Ctx) {
    let kind = crate::obs::request_index(&request);
    let label = crate::obs::kind_label(&request);
    let start = crate::obs::clock();
    match request {
        Request::Shutdown => {
            let _span = qr_obs::trace::global().span(label, 0);
            conn.queue_response(&Response::ShuttingDown);
            crate::obs::request_handled(kind, start);
            conn.close_after_flush = true;
            request_shutdown(ctx.shared);
        }
        request @ Request::Query { .. } => {
            // QUERY replays instructions — far too slow for the event
            // loop. Offload it to the job pool; the response comes back
            // through the mailbox. A full queue answers Busy, the same
            // backpressure submissions get.
            let shared = Arc::clone(ctx.shared);
            let pool = Arc::clone(ctx.pool);
            let worker = ctx.worker;
            let submitted = ctx.pool.try_submit(Box::new(move || {
                let _span = qr_obs::trace::global().span(label, 0);
                let response = handle_request(request, &shared, &pool);
                crate::obs::request_handled(kind, start);
                shared.router.complete(worker, conn_id, proto::encode_response(&response));
            }));
            match submitted {
                Ok(()) => conn.in_flight = true,
                Err((_task, queued)) => {
                    ctx.shared.counters.rejected_busy.fetch_add(1, Ordering::SeqCst);
                    crate::obs::busy_rejection();
                    conn.queue_response(&Response::Busy { queued: queued as u32 });
                }
            }
        }
        request => {
            // Everything else is a registry/store read or a queue push:
            // microseconds, handled inline on the event worker.
            let _span = qr_obs::trace::global().span(label, 0);
            let response = handle_request(request, ctx.shared, ctx.pool);
            crate::obs::request_handled(kind, start);
            conn.queue_response(&response);
        }
    }
}

/// Reads up to [`READ_ROUNDS`] chunks, feeding the assembler and
/// dispatching completed requests.
fn handle_readable(conn_id: u64, conn: &mut Conn, ctx: &Ctx) {
    let mut scratch = [0u8; READ_CHUNK];
    for _ in 0..READ_ROUNDS {
        if conn.inbox.len() >= INBOX_LIMIT || conn.pending_out() >= OUTBOX_HIGH_WATER {
            break;
        }
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                conn.read_eof = true;
                if conn.assembler.header_done() && !conn.assembler.at_message_boundary() {
                    // The peer died mid-message: a torn stream, not a
                    // clean close (same classification as the blocking
                    // read_message fix).
                    conn.queue_response(&Response::Error {
                        message: "truncated message on the wire".into(),
                    });
                    conn.close_after_flush = true;
                }
                break;
            }
            Ok(n) => {
                let mut complete = Vec::new();
                match conn.assembler.feed(&scratch[..n], &mut complete) {
                    Ok(()) => conn.inbox.extend(complete),
                    Err(e) => {
                        // Poisoned stream. After the handshake, answer
                        // with a structured error (best effort) and
                        // hang up; a garbage handshake just closes.
                        conn.inbox.extend(complete);
                        if conn.assembler.header_done() {
                            conn.queue_response(&Response::Error { message: e.to_string() });
                        }
                        conn.close_after_flush = true;
                        break;
                    }
                }
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.peer_gone = true;
                break;
            }
        }
    }
    pump(conn_id, conn, ctx);
}

// ---- the worker loop -------------------------------------------------

fn drain_wake_pipe(wake_rx: &UnixStream) {
    let mut buf = [0u8; 64];
    let mut rx = wake_rx;
    while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
}

fn close_accounting(shared: &Shared) {
    shared.open_connections.fetch_sub(1, Ordering::SeqCst);
    crate::obs::connection_delta(-1);
}

/// One event worker: multiplexes its share of the connections until
/// shutdown drains them.
pub(crate) fn worker_loop(
    worker: usize,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    pool: Arc<WorkerPool>,
) {
    let ctx = Ctx { shared: &shared, pool: &pool, worker };
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut slots: Vec<u64> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // New connections and offload completions.
        let inbound = shared.router.take_inbound(worker);
        for stream in inbound.adopted {
            if shared.shutdown.load(Ordering::SeqCst) {
                // Adopted after shutdown won the race: close, keeping
                // the accept loop's accounting balanced.
                close_accounting(&shared);
                continue;
            }
            let id = next_id;
            next_id += 1;
            let mut conn = Conn::new(stream);
            conn.try_flush(); // start the handshake
            crate::obs::event_adopted();
            conns.insert(id, conn);
        }
        for (id, payload) in inbound.completions {
            if let Some(conn) = conns.get_mut(&id) {
                conn.in_flight = false;
                conn.queue_payload(&payload);
                pump(id, conn, &ctx);
            }
        }

        let draining = shared.shutdown.load(Ordering::SeqCst);
        if draining && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
        }
        let drain_expired = drain_deadline.is_some_and(|d| Instant::now() >= d);

        conns.retain(|_, conn| {
            let done = conn.finished(draining) || drain_expired;
            if done {
                close_accounting(&shared);
            }
            !done
        });
        if draining && conns.is_empty() {
            return;
        }

        // Poll: wake pipe first, then every connection. A connection
        // with no read/write interest still surfaces ERR/HUP/NVAL.
        pollfds.clear();
        slots.clear();
        pollfds.push(PollFd { fd: wake_rx.as_raw_fd(), events: POLLIN, revents: 0 });
        for (&id, conn) in &conns {
            let mut events = 0i16;
            if conn.wants_read(draining) {
                events |= POLLIN;
            }
            if conn.wants_write() {
                events |= POLLOUT;
            }
            pollfds.push(PollFd { fd: conn.stream.fd(), events, revents: 0 });
            slots.push(id);
        }
        let timeout_ms = if draining { 50 } else { 500 };
        if poll_fds(&mut pollfds, timeout_ms).is_err() {
            // poll(2) failing outright (ENOMEM) is not actionable
            // per-connection; back off instead of spinning.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        crate::obs::event_wakeup();
        if pollfds[0].revents != 0 {
            drain_wake_pipe(&wake_rx);
        }
        let mut ready = 0usize;
        for (i, &id) in slots.iter().enumerate() {
            let pfd = pollfds[i + 1];
            if pfd.revents == 0 {
                continue;
            }
            ready += 1;
            let Some(conn) = conns.get_mut(&id) else { continue };
            if pfd.revents & (POLLERR | POLLNVAL) != 0 {
                conn.peer_gone = true;
                continue;
            }
            if pfd.revents & POLLIN != 0 {
                handle_readable(id, conn, &ctx);
            } else if pfd.revents & POLLHUP != 0 && conn.pending_out() == 0 {
                // Hung up with nothing left to read or flush.
                conn.peer_gone = true;
            }
            if pfd.revents & POLLOUT != 0 {
                conn.try_flush();
            }
        }
        crate::obs::event_events(ready);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_shim_times_out_and_reports_readiness() {
        // Timeout path: nothing readable.
        let (a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd { fd: a.as_raw_fd(), events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        // Readiness path: a byte arrives.
        (&b).write_all(&[7]).unwrap();
        let mut fds = [PollFd { fd: a.as_raw_fd(), events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn conn_outbox_flushes_incrementally_and_compacts() {
        let (ours, theirs) = UnixStream::pair().unwrap();
        ours.set_nonblocking(true).unwrap();
        let mut conn = Conn::new(Box::new(ours));
        // Queue well past the socket buffer; flush must stop at
        // WouldBlock without losing bytes or marking the peer gone.
        let payload = vec![0xabu8; 256 * 1024];
        for _ in 0..8 {
            conn.queue_payload(&payload);
        }
        let total = conn.outbox.len();
        conn.try_flush();
        assert!(!conn.peer_gone);
        assert!(conn.pending_out() > 0, "socket buffer cannot hold 2 MiB");
        assert!(conn.wants_write());
        // Drain the peer side; alternate flushes until empty.
        let mut sunk = 0usize;
        let mut buf = vec![0u8; 64 * 1024];
        theirs.set_nonblocking(true).unwrap();
        let mut rx = &theirs;
        while conn.pending_out() > 0 || sunk < total {
            match rx.read(&mut buf) {
                Ok(n) => sunk += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) => panic!("peer read: {e}"),
            }
            conn.try_flush();
            assert!(!conn.peer_gone);
        }
        assert_eq!(sunk, total, "every queued byte reached the peer exactly once");
        assert!(!conn.wants_write());
    }

    #[test]
    fn conn_backpressure_gates_read_interest() {
        let (ours, _theirs) = UnixStream::pair().unwrap();
        ours.set_nonblocking(true).unwrap();
        let mut conn = Conn::new(Box::new(ours));
        conn.try_flush();
        assert!(conn.wants_read(false));
        assert!(!conn.wants_read(true), "draining stops reads");
        for _ in 0..INBOX_LIMIT {
            conn.inbox.push_back(Vec::new());
        }
        assert!(!conn.wants_read(false), "a full inbox stops reads");
        conn.inbox.clear();
        conn.outbox = vec![0; OUTBOX_HIGH_WATER + 1];
        conn.out_pos = 0;
        assert!(!conn.wants_read(false), "write backpressure stops reads");
    }
}
