//! A blocking wire-protocol client for `quickrecd`.

use crate::proto::{self, Endpoint, JobInfo, JobState, Request, Response};
use qr_common::{QrError, Result};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to a `quickrecd` server.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects and exchanges stream headers.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] when the endpoint is unreachable,
    /// [`QrError::Corrupt`] when the peer is not speaking the protocol.
    pub fn connect(endpoint: &Endpoint) -> Result<Client> {
        let io = |e: std::io::Error| QrError::Execution {
            detail: format!("connecting to {}: {e}", endpoint.describe()),
        };
        let stream = match endpoint {
            Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path).map_err(io)?),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr).map_err(io)?;
                // One request per round trip: Nagle only adds latency.
                let _ = stream.set_nodelay(true);
                Stream::Tcp(stream)
            }
        };
        let mut client = Client { stream };
        proto::write_stream_header(&mut client.stream)?;
        proto::read_stream_header(&mut client.stream)?;
        Ok(client)
    }

    /// Connects, retrying until the server accepts or `timeout`
    /// elapses (a just-spawned daemon needs a moment to bind).
    ///
    /// # Errors
    ///
    /// Returns the last real connection error — with the attempt count
    /// and elapsed time — after the deadline, so the underlying cause
    /// (refused, missing socket file, ...) is never replaced by a bare
    /// timeout.
    pub fn connect_with_retry(endpoint: &Endpoint, timeout: Duration) -> Result<Client> {
        let started = Instant::now();
        let deadline = started + timeout;
        let mut attempts: u64 = 0;
        loop {
            attempts += 1;
            let last = match Client::connect(endpoint) {
                Ok(client) => return Ok(client),
                Err(e) => e,
            };
            if Instant::now() >= deadline {
                return Err(QrError::Execution {
                    detail: format!(
                        "giving up on {} after {attempts} attempt(s) in {:.1?}; last error: {last}",
                        endpoint.describe(),
                        started.elapsed(),
                    ),
                });
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] for transport failures,
    /// [`QrError::Corrupt`] for protocol damage (including the server
    /// hanging up mid-exchange).
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        proto::write_message(&mut self.stream, &proto::encode_request(request))?;
        match proto::read_message(&mut self.stream)? {
            Some(payload) => proto::decode_response(&payload),
            None => Err(QrError::Corrupt {
                what: "wire message".into(),
                offset: 0,
                detail: "server closed the connection mid-exchange".into(),
            }),
        }
    }

    /// Round-trips a PING.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] for transport failures or any
    /// reply that is not `Pong` (including an overloaded server's
    /// `Busy` refusal).
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Busy { queued } => Err(QrError::Execution {
                detail: format!("server is saturated ({queued} queued)"),
            }),
            other => Err(QrError::Execution {
                detail: format!("unexpected PING response: {other:?}"),
            }),
        }
    }

    /// Fetches the server's metrics registry as text exposition.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] for transport failures or an
    /// unexpected reply.
    pub fn metrics(&mut self) -> Result<String> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            Response::Error { message } => Err(QrError::Execution { detail: message }),
            other => Err(QrError::Execution {
                detail: format!("unexpected METRICS response: {other:?}"),
            }),
        }
    }

    /// Runs a time-travel query against session `id`; returns the
    /// answer payload ([`qr_replay::QueryPlan`] bytes for a dry run,
    /// [`qr_replay::QueryResult`] bytes otherwise) and whether it was
    /// served from the server's idempotence cache.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] for transport failures, a server
    /// error reply, or an unexpected reply.
    pub fn query(
        &mut self,
        id: u64,
        query: qr_replay::ReplayQuery,
        dry_run: bool,
        max_events: u64,
        replay_id: u64,
    ) -> Result<(bool, Vec<u8>)> {
        match self.call(&Request::Query { id, query, dry_run, max_events, replay_id })? {
            Response::QueryAnswer { cached, payload } => Ok((cached, payload)),
            Response::Error { message } => Err(QrError::Execution { detail: message }),
            other => Err(QrError::Execution {
                detail: format!("unexpected QUERY response: {other:?}"),
            }),
        }
    }

    /// Polls JOBS until session `id` reaches a terminal state (or
    /// `timeout` elapses), returning its final row.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] on timeout or when the session
    /// disappears.
    pub fn wait_for(&mut self, id: u64, timeout: Duration) -> Result<JobInfo> {
        let deadline = Instant::now() + timeout;
        loop {
            let Response::JobList(jobs) = self.call(&Request::Jobs)? else {
                return Err(QrError::Execution { detail: "unexpected JOBS response".into() });
            };
            match jobs.into_iter().find(|j| j.id == id) {
                Some(job) if matches!(job.state, JobState::Done | JobState::Failed(_)) => {
                    return Ok(job)
                }
                Some(_) => {}
                None => {
                    return Err(QrError::Execution {
                        detail: format!("session {id} vanished from the job list"),
                    })
                }
            }
            if Instant::now() >= deadline {
                return Err(QrError::Execution {
                    detail: format!("timed out waiting for session {id}"),
                });
            }
            std::thread::sleep(Duration::from_millis(15));
        }
    }
}
