//! Regression gates for the event-driven connection layer: a flood of
//! connections far beyond the worker count is served without
//! per-connection threads and with balanced connection accounting, and
//! byte-at-a-time ("slow loris") peers cannot starve other clients.

use qr_server::proto::{self, Endpoint, JobState, Request, Response};
use qr_server::{Client, Server, ServerConfig};
use qr_workloads::Scale;
use quickrec_core::{Encoding, OrderMode};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qr-server-flood-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn submit(name: &str) -> Request {
    Request::SubmitWorkload {
        name: name.to_string(),
        workload: "fft".to_string(),
        threads: 2,
        scale: Scale::Test,
        encoding: Encoding::Delta,
        order: OrderMode::TotalOrder,
    }
}

/// Threads currently alive in this process (the daemon runs
/// in-process, so growth while connections are open is daemon growth).
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(0, |entries| entries.count())
}

/// Polls until the server's open-connection gauge drains to zero.
fn assert_connections_drain(handle: &qr_server::ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let open = handle.open_connections();
        if open == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "open-connections gauge stuck at {open} after every client hung up"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn connection_flood_gets_responses_without_thread_per_connection() {
    const CONNS: usize = 48;
    let dir = scratch("flood");
    let endpoint = Endpoint::Unix(dir.join("qd.sock"));
    // One job worker, one queue slot: a 48-submission burst must
    // overflow into Busy, never into a hang or an unframed error.
    let config = ServerConfig {
        workers: 1,
        shards: 1,
        queue_capacity: 1,
        store_root: dir.join("store"),
        event_workers: 2,
        max_connections: 256,
    };
    let handle = Server::start(&endpoint, &config).expect("start server");

    let before = thread_count();
    let mut clients: Vec<Client> = (0..CONNS)
        .map(|i| {
            Client::connect_with_retry(&endpoint, Duration::from_secs(5))
                .unwrap_or_else(|e| panic!("client {i}: {e}"))
        })
        .collect();
    // Every connection is alive and multiplexed concurrently.
    for (i, client) in clients.iter_mut().enumerate() {
        client.ping().unwrap_or_else(|e| panic!("ping {i}: {e}"));
    }
    let during = thread_count();
    assert!(
        during < before + 8,
        "thread count grew {before} -> {during} with {CONNS} open connections: \
         that is thread-per-connection, not an event loop"
    );

    // Burst one submission per connection: every client gets a framed
    // answer, and the overflow is a clean Busy.
    let mut accepted = Vec::new();
    let mut busy = 0usize;
    for (i, client) in clients.iter_mut().enumerate() {
        match client.call(&submit(&format!("flood-{i}"))).expect("submit response") {
            Response::Submitted { id } => accepted.push(id),
            Response::Busy { .. } => busy += 1,
            other => panic!("client {i}: unexpected response {other:?}"),
        }
    }
    assert_eq!(accepted.len() + busy, CONNS);
    assert!(busy > 0, "a {CONNS}-burst against a 1-deep queue must see Busy");
    assert!(!accepted.is_empty(), "some submissions must get through");

    // Accepted jobs complete while the other connections stay open.
    let mut waiter = clients.pop().expect("a client");
    for &id in &accepted {
        let job = waiter.wait_for(id, Duration::from_secs(120)).expect("wait");
        assert_eq!(job.state, JobState::Done, "session {id}: {:?}", job.state);
    }

    // Hanging up everywhere drains the gauge to exactly zero: adopt
    // and close accounting balances on every path.
    drop(clients);
    drop(waiter);
    assert_connections_drain(&handle);

    handle.shutdown();
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slow_loris_writers_do_not_starve_other_clients() {
    const LORIS: usize = 16;
    let dir = scratch("loris");
    let endpoint = Endpoint::Unix(dir.join("qd.sock"));
    let socket = dir.join("qd.sock");
    // A single event worker: the starvation gate has no second loop to
    // hide behind.
    let config = ServerConfig {
        workers: 1,
        shards: 1,
        queue_capacity: 4,
        store_root: dir.join("store"),
        event_workers: 1,
        max_connections: 256,
    };
    let handle = Server::start(&endpoint, &config).expect("start server");
    let mut probe =
        Client::connect_with_retry(&endpoint, Duration::from_secs(5)).expect("probe client");

    // The full byte sequence a well-behaved client would send for a
    // handshake plus one PING, dripped one byte at a time instead.
    let mut drip = Vec::new();
    proto::write_stream_header(&mut drip).expect("header bytes");
    proto::write_message(&mut drip, &proto::encode_request(&Request::Ping))
        .expect("ping bytes");

    let mut loris: Vec<UnixStream> = (0..LORIS)
        .map(|i| UnixStream::connect(&socket).unwrap_or_else(|e| panic!("loris {i}: {e}")))
        .collect();
    for cut in 0..drip.len() {
        for stream in &mut loris {
            stream.write_all(&drip[cut..=cut]).expect("drip one byte");
        }
        // Between every byte sweep the server answers a whole request
        // from someone else: torn streams cost it nothing but buffer
        // space.
        let started = Instant::now();
        probe.ping().expect("probe ping while loris streams drip");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "probe starved behind {LORIS} slow-loris connections"
        );
    }

    // Every fully-dripped stream still gets its handshake and Pong.
    for (i, mut stream) in loris.into_iter().enumerate() {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        proto::read_stream_header(&mut stream)
            .unwrap_or_else(|e| panic!("loris {i} header: {e}"));
        let payload = proto::read_message(&mut stream)
            .unwrap_or_else(|e| panic!("loris {i} read: {e}"))
            .unwrap_or_else(|| panic!("loris {i}: server hung up before answering"));
        match proto::decode_response(&payload) {
            Ok(Response::Pong) => {}
            other => panic!("loris {i}: {other:?}"),
        }
    }

    drop(probe);
    assert_connections_drain(&handle);
    handle.shutdown();
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}
