//! The QUERY wire request: recordings made by the daemon carry a
//! persisted `checkpoints.qrc` seek index, queries answer over the
//! wire, and a repeated replay id is served from the idempotence cache
//! without re-executing — observable through the server's metrics.

use qr_replay::{QueryPlan, QueryResult, ReplayQuery};
use qr_server::proto::{Endpoint, JobState, Request, Response};
use qr_server::{Client, Server, ServerConfig};
use qr_workloads::Scale;
use quickrec_core::{Encoding, OrderMode};
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qr-query-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn start(dir: &std::path::Path) -> qr_server::ServerHandle {
    let endpoint = Endpoint::Unix(dir.join("qd.sock"));
    let config =
        ServerConfig {
            workers: 2,
            shards: 2,
            queue_capacity: 8,
            store_root: dir.join("store"),
            event_workers: 2,
            max_connections: 256,
        };
    Server::start(&endpoint, &config).expect("start server")
}

/// Reads one counter sample from the server's metrics exposition.
fn counter(client: &mut Client, name_and_labels: &str) -> u64 {
    client
        .metrics()
        .expect("metrics")
        .lines()
        .find(|l| l.starts_with(name_and_labels))
        .and_then(|l| l.rsplit(' ').next()?.parse().ok())
        .unwrap_or(0)
}

#[test]
fn repeated_replay_ids_answer_from_the_cache_without_reexecuting() {
    let dir = scratch("cache");
    let handle = start(&dir);
    let mut client = Client::connect(handle.endpoint()).expect("connect");

    let Response::Submitted { id } = client
        .call(&Request::SubmitWorkload {
            name: "q".into(),
            workload: "fft".into(),
            threads: 2,
            scale: Scale::Test,
            encoding: Encoding::Delta,
            order: OrderMode::TotalOrder,
        })
        .expect("submit")
    else {
        panic!("submission not accepted");
    };
    let job = client.wait_for(id, Duration::from_secs(120)).expect("wait");
    assert_eq!(job.state, JobState::Done, "{:?}", job.state);

    // The recording the daemon just made carries its seek index.
    let Response::Fetched { files, .. } = client.call(&Request::Fetch { id }).expect("fetch")
    else {
        panic!("fetch refused");
    };
    assert!(
        files.iter().any(|(name, bytes)| name == "checkpoints.qrc" && !bytes.is_empty()),
        "record jobs persist checkpoints.qrc: {:?}",
        files.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );

    // Dry run: a plan, not a result, and nothing is executed or cached.
    let (cached, payload) = client
        .query(id, ReplayQuery::ReverseStep { events: 1 }, true, 0, 9)
        .expect("dry-run query");
    assert!(!cached);
    let plan = QueryPlan::from_bytes(&payload).expect("plan decodes");
    assert!(plan.timeline_len > 0 && plan.end <= plan.timeline_len);
    assert_eq!(counter(&mut client, "qr_server_queries_total{outcome=\"cached\"}"), 0);

    // First execution misses the cache; the repeat hits it bit-for-bit
    // and the executed counter proves nothing re-ran.
    let query = ReplayQuery::Thread { tid: qr_common::ThreadId(0) };
    let (cached, first) = client.query(id, query, false, 0, 42).expect("first query");
    assert!(!cached);
    let result = QueryResult::from_bytes(&first).expect("result decodes");
    assert!(result.end > result.start);
    let executed_after_first =
        counter(&mut client, "qr_server_queries_total{outcome=\"executed\"}");

    let (cached, repeat) = client.query(id, query, false, 0, 42).expect("repeat query");
    assert!(cached, "a repeated replay id must hit the cache");
    assert_eq!(repeat, first, "the cached answer is the original answer, bit for bit");
    assert_eq!(
        counter(&mut client, "qr_server_queries_total{outcome=\"executed\"}"),
        executed_after_first,
        "the cache hit must not re-execute"
    );
    assert_eq!(counter(&mut client, "qr_server_queries_total{outcome=\"cached\"}"), 1);

    // A different replay id is its own cache entry.
    let (cached, _) = client
        .query(id, ReplayQuery::BeforeDivergence { instructions: 16 }, false, 0, 43)
        .expect("other query");
    assert!(!cached);

    // The safety limit and unknown sessions are structured errors.
    let err = client.query(id, query, false, 1, 0).expect_err("over max-events");
    assert!(err.to_string().contains("exceeding max-events 1"), "{err}");
    let err = client.query(999, query, false, 0, 0).expect_err("unknown session");
    assert!(err.to_string().contains("no session 999"), "{err}");

    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("shutdown: {other:?}"),
    }
    drop(client);
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}
