//! Service-level contract of `quickrecd`: N parallel submissions
//! produce recordings fingerprint-identical to sequential local runs,
//! backpressure rejects overload instead of wedging, and graceful
//! shutdown drains every queued job without leaving a torn store entry.

use qr_capo::{record, Recording, RecordingConfig};
use qr_server::proto::{Endpoint, JobState, Request, Response};
use qr_server::{Client, Server, ServerConfig};
use qr_workloads::Scale;
use quickrec_core::{Encoding, OrderMode};
use std::path::PathBuf;
use std::time::Duration;

const WORKLOADS: [&str; 4] = ["fft", "lu", "radix", "ocean"];
const THREADS: usize = 2;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qr-server-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn start(dir: &std::path::Path, workers: usize, queue: usize) -> qr_server::ServerHandle {
    let endpoint = Endpoint::Unix(dir.join("qd.sock"));
    let config = ServerConfig {
        workers,
        shards: workers,
        queue_capacity: queue,
        store_root: dir.join("store"),
        event_workers: 2,
        max_connections: 256,
    };
    Server::start(&endpoint, &config).expect("start server")
}

fn local_fingerprint(workload: &str) -> u64 {
    let spec = qr_workloads::find(workload).expect("workload");
    let program = (spec.build)(THREADS, Scale::Test).expect("build");
    let recording = record(program, RecordingConfig::with_cores(THREADS)).expect("record");
    recording.fingerprint
}

fn submit(workload: &str) -> Request {
    Request::SubmitWorkload {
        name: workload.to_string(),
        workload: workload.to_string(),
        threads: THREADS as u32,
        scale: Scale::Test,
        encoding: Encoding::Delta,
        order: OrderMode::TotalOrder,
    }
}

#[test]
fn parallel_submissions_match_sequential_local_fingerprints() {
    let dir = scratch("parallel");
    let handle = start(&dir, 4, 16);
    let endpoint = handle.endpoint().clone();

    // Sequential local baseline, no server involved.
    let expected: Vec<(String, u64)> = WORKLOADS
        .iter()
        .map(|w| (w.to_string(), local_fingerprint(w)))
        .collect();

    // One client thread per workload, all submitting concurrently.
    let joined: Vec<(String, u64, Vec<(String, Vec<u8>)>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = WORKLOADS
            .iter()
            .map(|w| {
                let endpoint = endpoint.clone();
                scope.spawn(move || {
                    let mut client =
                        Client::connect_with_retry(&endpoint, Duration::from_secs(5))
                            .expect("connect");
                    let Response::Submitted { id } =
                        client.call(&submit(w)).expect("submit call")
                    else {
                        panic!("{w}: submission not accepted");
                    };
                    let job = client.wait_for(id, Duration::from_secs(120)).expect("wait");
                    assert_eq!(job.state, JobState::Done, "{w}: {:?}", job.state);
                    let Response::Fetched { files, fingerprint } =
                        client.call(&Request::Fetch { id }).expect("fetch call")
                    else {
                        panic!("{w}: fetch refused");
                    };
                    (w.to_string(), fingerprint, files)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    for (workload, expected_fp) in &expected {
        let (_, fingerprint, files) = joined
            .iter()
            .find(|(w, _, _)| w == workload)
            .expect("every workload came back");
        assert_eq!(
            fingerprint, expected_fp,
            "{workload}: server recording must match a sequential local run"
        );
        // The fetched file set is a complete, loadable recording whose
        // own fingerprint agrees.
        let fetched_dir = dir.join(format!("fetched-{workload}"));
        std::fs::create_dir_all(&fetched_dir).expect("fetched dir");
        for (name, bytes) in files {
            std::fs::write(fetched_dir.join(name), bytes).expect("write fetched file");
        }
        let loaded = Recording::load(&fetched_dir).expect("load fetched recording");
        assert_eq!(&loaded.fingerprint, expected_fp, "{workload}");
    }

    // Follow-up jobs against stored sessions: replay, verify and race
    // detection all complete against the compressed store entries.
    let mut client = Client::connect(&endpoint).expect("connect follow-up");
    for (i, req) in
        [Request::Replay { id: 1 }, Request::Verify { id: 2 }, Request::Races { id: 3 }]
            .into_iter()
            .enumerate()
    {
        let id = i as u64 + 1;
        match client.call(&req).expect("follow-up call") {
            Response::Queued => {}
            other => panic!("follow-up {req:?}: {other:?}"),
        }
        let job = client.wait_for(id, Duration::from_secs(120)).expect("follow-up wait");
        assert_eq!(job.state, JobState::Done, "follow-up {req:?}: {:?}", job.state);
    }

    // STATS reflects what actually happened.
    let Response::Stats(stats) = client.call(&Request::Stats).expect("stats call") else {
        panic!("stats refused");
    };
    assert_eq!(stats.accepted, WORKLOADS.len() as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.completed, WORKLOADS.len() as u64 + 3);
    assert_eq!(stats.sessions.len(), WORKLOADS.len());
    for s in &stats.sessions {
        assert_eq!(s.records, 1, "session {}", s.id);
        assert!(s.bytes_stored > 0 && s.bytes_stored < s.bytes_raw, "session {}", s.id);
    }

    match client.call(&Request::Shutdown).expect("shutdown call") {
        Response::ShuttingDown => {}
        other => panic!("shutdown: {other:?}"),
    }
    drop(client);
    handle.wait();

    // No torn store entries after shutdown.
    let store = dir.join("store");
    let staging: Vec<_> = std::fs::read_dir(&store)
        .expect("store root")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp"))
        .collect();
    assert!(staging.is_empty(), "graceful shutdown left staging dirs: {staging:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn backpressure_rejects_overload_and_reports_busy() {
    let dir = scratch("busy");
    let handle = start(&dir, 1, 1);
    let endpoint = handle.endpoint().clone();

    let mut client = Client::connect(&endpoint).expect("connect");
    let mut accepted = Vec::new();
    let mut busy = 0u32;
    // One worker, queue of one: a fast burst must overflow into Busy.
    for _ in 0..8 {
        match client.call(&submit("fft")).expect("submit") {
            Response::Submitted { id } => accepted.push(id),
            Response::Busy { .. } => busy += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(busy > 0, "an 8-burst against a 1-deep queue must see Busy");
    assert!(!accepted.is_empty(), "some submissions must get through");

    // Every accepted job still completes; rejected ones left no ghost
    // sessions behind.
    for &id in &accepted {
        let job = client.wait_for(id, Duration::from_secs(120)).expect("wait");
        assert_eq!(job.state, JobState::Done, "session {id}: {:?}", job.state);
    }
    let Response::JobList(jobs) = client.call(&Request::Jobs).expect("jobs") else {
        panic!("jobs refused");
    };
    assert_eq!(jobs.len(), accepted.len(), "rejected submissions must not linger");
    let Response::Stats(stats) = client.call(&Request::Stats).expect("stats") else {
        panic!("stats refused");
    };
    assert_eq!(stats.rejected_busy, u64::from(busy));
    assert_eq!(stats.accepted, accepted.len() as u64);

    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("shutdown: {other:?}"),
    }
    drop(client);
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_drains_queued_jobs_and_leaves_every_session_terminal() {
    let dir = scratch("drain");
    let handle = start(&dir, 1, 8);
    let endpoint = handle.endpoint().clone();

    // Queue several jobs behind a single worker, then shut down
    // immediately: graceful shutdown must finish them all.
    let mut client = Client::connect(&endpoint).expect("connect");
    let mut ids = Vec::new();
    for w in WORKLOADS {
        match client.call(&submit(w)).expect("submit") {
            Response::Submitted { id } => ids.push(id),
            other => panic!("{w}: {other:?}"),
        }
    }
    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("shutdown: {other:?}"),
    }
    drop(client);
    handle.wait();

    // The store holds one committed, fetchable entry per accepted job.
    let store = qr_store::RecordingStore::open(&dir.join("store")).expect("reopen store");
    let entries = store.list().expect("list");
    assert_eq!(entries.len(), ids.len(), "every drained job committed its recording");
    for manifest in &entries {
        store.fetch(manifest.id).expect("entry fetches cleanly");
    }

    std::fs::remove_dir_all(&dir).ok();
}
