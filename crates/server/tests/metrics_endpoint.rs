//! The METRICS wire request: a live daemon renders its `qr-obs`
//! registry as parseable text exposition covering the recorder, store
//! and server metric families, and shutdown unblocks the accept loop
//! promptly (no sleep-polling anywhere on the path).

use qr_server::proto::{Endpoint, JobState, Request, Response};
use qr_server::{Client, Server, ServerConfig};
use qr_workloads::Scale;
use quickrec_core::{Encoding, OrderMode};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qr-metrics-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn start(dir: &std::path::Path) -> qr_server::ServerHandle {
    let endpoint = Endpoint::Unix(dir.join("qd.sock"));
    let config = ServerConfig {
        workers: 2,
        shards: 2,
        queue_capacity: 8,
        store_root: dir.join("store"),
        event_workers: 2,
        max_connections: 256,
    };
    Server::start(&endpoint, &config).expect("start server")
}

#[test]
fn metrics_request_returns_parseable_exposition_with_all_families() {
    let dir = scratch("families");
    let handle = start(&dir);
    let endpoint = handle.endpoint().clone();

    let mut client = Client::connect(&endpoint).expect("connect");
    // Drive one real RECORD job through the daemon so the recorder and
    // store families register in-process, not just the server's own.
    let Response::Submitted { id } = client
        .call(&Request::SubmitWorkload {
            name: "m".into(),
            workload: "fft".into(),
            threads: 2,
            scale: Scale::Test,
            encoding: Encoding::Delta,
            order: OrderMode::TotalOrder,
        })
        .expect("submit")
    else {
        panic!("submission not accepted");
    };
    let job = client.wait_for(id, Duration::from_secs(120)).expect("wait");
    assert_eq!(job.state, JobState::Done, "{:?}", job.state);
    match client.call(&Request::Ping).expect("ping") {
        Response::Pong => {}
        other => panic!("ping: {other:?}"),
    }

    let text = client.metrics().expect("metrics request");
    let exposition = qr_obs::parse_exposition(&text)
        .unwrap_or_else(|e| panic!("malformed exposition: {e}\n{text}"));

    // One family per instrumented subsystem that this run exercised.
    for family in [
        "qr_server_requests_total",
        "qr_server_request_latency_us",
        "qr_server_connections_total",
        "qr_server_open_connections",
        "qr_server_event_loop_wakeups_total",
        "qr_server_event_loop_events_total",
        "qr_server_event_loop_conns_adopted_total",
        "qr_recorder_chunks_total",
        "qr_recorder_chunk_size_insns",
        "qr_recorder_log_bytes_total",
        "qr_store_encode_latency_us",
        "qr_store_bytes_total",
    ] {
        assert!(
            exposition.has_family(family),
            "exposition is missing `{family}`:\n{text}"
        );
    }
    // Histograms carry quantile summary lines.
    assert!(
        text.contains("qr_server_request_latency_us{") && text.contains("quantile=\"0.99\""),
        "latency histogram lacks quantile samples:\n{text}"
    );
    // The submit and ping we just made are counted by kind.
    assert!(
        text.contains("qr_server_requests_total{kind=\"ping\"}"),
        "ping not counted:\n{text}"
    );
    assert!(
        text.contains("qr_server_requests_total{kind=\"submit_workload\"}"),
        "submit not counted:\n{text}"
    );

    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown => {}
        other => panic!("shutdown: {other:?}"),
    }
    drop(client);
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_unblocks_accept_loop_without_polling_delay() {
    let dir = scratch("wake");
    let handle = start(&dir);

    // No client ever connects: the accept loop sits in a blocking
    // accept(). shutdown() must wake it via the self-connection and
    // wait() must return promptly — this wedges forever (or until a
    // connection happens to arrive) if the wake-up is missing.
    let started = Instant::now();
    handle.shutdown();
    handle.wait();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "shutdown of an idle server took {elapsed:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
