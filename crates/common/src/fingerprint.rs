//! Deterministic state fingerprinting.
//!
//! Record/replay validation compares the *architectural outcome* of two
//! executions: final memory image, per-thread register files, console
//! output and exit codes. A [`Fingerprint`] folds all of that into one
//! 64-bit digest using FNV-1a with explicit domain separation, so a
//! divergence anywhere in the state changes the digest with high
//! probability.
//!
//! The hash is *not* cryptographic; it only needs to be fast, portable and
//! deterministic across runs and platforms.
//!
//! # Example
//!
//! ```
//! use qr_common::Fingerprint;
//!
//! let mut a = Fingerprint::new();
//! a.field("mem", &[1, 2, 3]);
//! let mut b = Fingerprint::new();
//! b.field("mem", &[1, 2, 4]);
//! assert_ne!(a.digest(), b.digest());
//! ```

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a digest over labelled fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// Creates an empty fingerprint.
    pub fn new() -> Self {
        Fingerprint { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        for &b in data {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u32` in little-endian order.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a `u64` in little-endian order.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a labelled field: the label, a separator, the data, and a
    /// length suffix, so `("ab", "c")` and `("a", "bc")` hash differently.
    pub fn field(&mut self, label: &str, data: &[u8]) -> &mut Self {
        self.bytes(label.as_bytes());
        self.bytes(&[0xff]);
        self.bytes(data);
        self.u64(data.len() as u64)
    }

    /// Final 64-bit digest.
    pub fn digest(&self) -> u64 {
        // One extra round of mixing so trailing zero bytes still perturb
        // the output.
        let mut x = self.state;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.digest())
    }
}

/// Hashes a single byte slice in one call.
pub fn hash_bytes(data: &[u8]) -> u64 {
    let mut fp = Fingerprint::new();
    fp.bytes(data);
    fp.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_nonempty_differ() {
        let empty = Fingerprint::new().digest();
        let mut f = Fingerprint::new();
        f.bytes(&[0]);
        assert_ne!(empty, f.digest());
    }

    #[test]
    fn field_boundaries_are_unambiguous() {
        let mut a = Fingerprint::new();
        a.field("ab", b"c");
        let mut b = Fingerprint::new();
        b.field("a", b"bc");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn order_matters() {
        let mut a = Fingerprint::new();
        a.field("x", b"1").field("y", b"2");
        let mut b = Fingerprint::new();
        b.field("y", b"2").field("x", b"1");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn trailing_zeroes_change_the_digest() {
        let a = hash_bytes(&[1, 2, 3]);
        let b = hash_bytes(&[1, 2, 3, 0]);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_across_invocations() {
        assert_eq!(hash_bytes(b"quickrec"), hash_bytes(b"quickrec"));
    }

    #[test]
    fn display_is_16_hex_digits() {
        let mut f = Fingerprint::new();
        f.field("m", &[9]);
        let s = f.to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn integer_helpers_match_byte_encoding() {
        let mut a = Fingerprint::new();
        a.u32(0x0403_0201);
        let mut b = Fingerprint::new();
        b.bytes(&[1, 2, 3, 4]);
        assert_eq!(a.digest(), b.digest());
    }
}
