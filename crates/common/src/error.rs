//! Workspace-wide error type.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, QrError>;

/// Errors produced anywhere in the QuickRec-RS stack.
///
/// Each variant carries enough context to diagnose the failure without a
/// debugger; the `Display` form is a single lowercase sentence per the API
/// guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QrError {
    /// Assembling a program failed (unknown label, bad operand, …).
    Assemble(String),
    /// The interpreter hit an instruction or state it cannot execute.
    Execution {
        /// Human-readable cause.
        detail: String,
    },
    /// A guest memory access was outside the mapped address space.
    MemoryFault {
        /// Offending address.
        addr: u32,
        /// What the access was trying to do.
        detail: String,
    },
    /// A configuration value was rejected.
    InvalidConfig(String),
    /// Decoding a recorded log failed.
    LogDecode(String),
    /// Recorded bytes were corrupt at a known byte offset.
    ///
    /// This is the structured form every decode path reachable from
    /// untrusted bytes reports: `what` names the artifact being decoded
    /// (e.g. "chunk log", "input event"), `offset` is where in the
    /// buffer decoding stopped, and `detail` describes the fault.
    Corrupt {
        /// What was being decoded.
        what: String,
        /// Byte offset into the buffer where the fault was detected.
        offset: u64,
        /// Human-readable cause.
        detail: String,
    },
    /// Replay diverged from the recorded execution.
    ReplayDivergence(String),
    /// The requested operation is not supported in the current mode.
    Unsupported(String),
    /// The simulation exceeded its instruction budget (likely livelock).
    BudgetExceeded {
        /// Instructions executed before giving up.
        executed: u64,
    },
}

impl fmt::Display for QrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QrError::Assemble(msg) => write!(f, "assembly failed: {msg}"),
            QrError::Execution { detail } => write!(f, "execution error: {detail}"),
            QrError::MemoryFault { addr, detail } => {
                write!(f, "memory fault at {addr:#010x}: {detail}")
            }
            QrError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            QrError::LogDecode(msg) => write!(f, "log decode failed: {msg}"),
            QrError::Corrupt { what, offset, detail } => {
                write!(f, "corrupt {what} at byte {offset}: {detail}")
            }
            QrError::ReplayDivergence(msg) => write!(f, "replay diverged: {msg}"),
            QrError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            QrError::BudgetExceeded { executed } => {
                write!(f, "instruction budget exceeded after {executed} instructions")
            }
        }
    }
}

impl std::error::Error for QrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_display_carries_offset_and_context() {
        let e = QrError::Corrupt {
            what: "input log".into(),
            offset: 4096,
            detail: "truncated-record".into(),
        };
        let s = e.to_string();
        assert!(s.contains("input log"));
        assert!(s.contains("4096"));
        assert!(s.contains("truncated-record"));
    }

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = QrError::MemoryFault { addr: 0x10, detail: "store to unmapped page".into() };
        let s = e.to_string();
        assert!(s.contains("0x00000010"));
        assert!(s.contains("store to unmapped"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QrError>();
        let boxed: Box<dyn std::error::Error + Send + Sync> = Box::new(QrError::Assemble("x".into()));
        assert!(boxed.to_string().contains("assembly failed"));
    }

    #[test]
    fn variants_round_trip_through_display() {
        for e in [
            QrError::Assemble("bad label".into()),
            QrError::Execution { detail: "div by zero".into() },
            QrError::InvalidConfig("cores must be > 0".into()),
            QrError::LogDecode("truncated packet".into()),
            QrError::Corrupt { what: "chunk log".into(), offset: 17, detail: "checksum-mismatch".into() },
            QrError::ReplayDivergence("ic mismatch".into()),
            QrError::Unsupported("rsw replay".into()),
            QrError::BudgetExceeded { executed: 42 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
