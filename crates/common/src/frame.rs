//! The self-describing framed container format for on-disk logs.
//!
//! QuickRec's goal is *always-on* recording, and an always-on recorder's
//! logs are most valuable exactly when the recorded process crashed —
//! which is when they are torn mid-drain or corrupted. The framed
//! container makes every log file crash-consistent:
//!
//! ```text
//! container := magic(4)="QRCF"  version(1)  kind(1)  record*
//! record    := len(u32 LE)  payload(len bytes)  crc32(u32 LE, of payload)
//! ```
//!
//! Each record is independently decodable: a reader walks records from
//! the front and stops at the first one whose length runs past the
//! buffer or whose CRC-32 trailer does not match. Everything before that
//! point is a *complete, checksum-valid prefix* — the salvageable part
//! of a torn log. The `kind` byte names the payload ([`PayloadKind`]) so
//! a chunk log cannot be mistaken for an input log.
//!
//! [`read`] is the strict decoder (any fault is a
//! [`QrError::Corrupt`] with byte offset); [`scan`] is the tolerant
//! decoder used by salvage, which returns the valid prefix plus a
//! [`FrameFault`] describing what stopped it.

use crate::crc32;
use crate::error::{QrError, Result};

/// Container magic. The first byte (`0x51`) is chosen so that no
/// single-bit flip of it collides with a legacy encoding tag (`0..=2`):
/// a framed file with a damaged magic is reported as corrupt rather than
/// silently mis-parsed as a legacy stream.
pub const MAGIC: [u8; 4] = *b"QRCF";

/// Current container format version.
pub const VERSION: u8 = 1;

/// Bytes before the first record: magic + version + kind.
pub const HEADER_LEN: usize = 6;

/// Per-record overhead: u32 length prefix + u32 CRC trailer.
pub const RECORD_OVERHEAD: usize = 8;

/// What a framed container carries, stored in the header's kind byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// A chunk (memory) log.
    ChunkLog,
    /// An input log.
    InputLog,
    /// Recording metadata.
    Meta,
    /// A chunk footprint log (read/write line sets per chunk).
    FootprintLog,
    /// One direction of a `quickrecd` wire-protocol connection (each
    /// message is one record).
    Wire,
    /// A block-compressed log (`qr-store`): record 0 is the block index,
    /// then one record per compressed block.
    CompressedLog,
    /// A recording-store manifest (`qr-store`).
    StoreManifest,
    /// A trace-span journal (`qr-obs`): one record per begin/end/instant
    /// event.
    TraceJournal,
    /// A recording-level format manifest (`format.qrv`): names the
    /// recording format version, container version, chunk-log encoding
    /// and the payload kinds present in the recording directory.
    FormatManifest,
    /// A persisted replay-checkpoint index (`checkpoints.qrc`): record 0
    /// is the seek index (keys per checkpoint), then one record per
    /// serialized checkpoint snapshot.
    CheckpointIndex,
    /// A partial-order edge log (`order.qrp`): record 0 commits the
    /// per-thread node counts and edge total, then one record per
    /// happens-before edge group.
    OrderLog,
}

impl PayloadKind {
    /// Every payload kind, in kind-byte order. The golden-trace
    /// conformance suite matches over this exhaustively: a new variant
    /// without golden-fixture coverage fails a test, not production.
    pub const ALL: [PayloadKind; 11] = [
        PayloadKind::ChunkLog,
        PayloadKind::InputLog,
        PayloadKind::Meta,
        PayloadKind::FootprintLog,
        PayloadKind::Wire,
        PayloadKind::CompressedLog,
        PayloadKind::StoreManifest,
        PayloadKind::TraceJournal,
        PayloadKind::FormatManifest,
        PayloadKind::CheckpointIndex,
        PayloadKind::OrderLog,
    ];

    /// Stable kind byte.
    pub fn code(self) -> u8 {
        match self {
            PayloadKind::ChunkLog => 0,
            PayloadKind::InputLog => 1,
            PayloadKind::Meta => 2,
            PayloadKind::FootprintLog => 3,
            PayloadKind::Wire => 4,
            PayloadKind::CompressedLog => 5,
            PayloadKind::StoreManifest => 6,
            PayloadKind::TraceJournal => 7,
            PayloadKind::FormatManifest => 8,
            PayloadKind::CheckpointIndex => 9,
            PayloadKind::OrderLog => 10,
        }
    }

    /// Inverse of [`PayloadKind::code`].
    pub fn from_code(code: u8) -> Option<PayloadKind> {
        match code {
            0 => Some(PayloadKind::ChunkLog),
            1 => Some(PayloadKind::InputLog),
            2 => Some(PayloadKind::Meta),
            3 => Some(PayloadKind::FootprintLog),
            4 => Some(PayloadKind::Wire),
            5 => Some(PayloadKind::CompressedLog),
            6 => Some(PayloadKind::StoreManifest),
            7 => Some(PayloadKind::TraceJournal),
            8 => Some(PayloadKind::FormatManifest),
            9 => Some(PayloadKind::CheckpointIndex),
            10 => Some(PayloadKind::OrderLog),
            _ => None,
        }
    }

    /// Human-readable payload name.
    pub fn name(self) -> &'static str {
        match self {
            PayloadKind::ChunkLog => "chunk log",
            PayloadKind::InputLog => "input log",
            PayloadKind::Meta => "recording meta",
            PayloadKind::FootprintLog => "footprint log",
            PayloadKind::Wire => "wire message stream",
            PayloadKind::CompressedLog => "compressed log",
            PayloadKind::StoreManifest => "store manifest",
            PayloadKind::TraceJournal => "trace journal",
            PayloadKind::FormatManifest => "format manifest",
            PayloadKind::CheckpointIndex => "checkpoint index",
            PayloadKind::OrderLog => "order log",
        }
    }
}

/// Why a container stopped decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The magic bytes did not match.
    BadMagic,
    /// The format version is newer than this reader understands; carries
    /// the version byte actually found so reports can say both sides.
    BadVersion {
        /// The version byte the container header carried.
        found: u8,
    },
    /// The kind byte named no known payload.
    BadKind,
    /// The buffer ended inside the container header.
    TruncatedHeader,
    /// A record's declared length ran past the end of the buffer.
    TruncatedRecord,
    /// A record's CRC-32 trailer did not match its payload.
    ChecksumMismatch,
}

impl FaultKind {
    /// Short name for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BadMagic => "bad-magic",
            FaultKind::BadVersion { .. } => "bad-version",
            FaultKind::BadKind => "bad-kind",
            FaultKind::TruncatedHeader => "truncated-header",
            FaultKind::TruncatedRecord => "truncated-record",
            FaultKind::ChecksumMismatch => "checksum-mismatch",
        }
    }

    /// Self-diagnosing description for error details: like
    /// [`FaultKind::label`], but a version fault also reports the found
    /// vs. newest-supported version so a conformance failure on a future
    /// trace names both sides.
    pub fn detail(self) -> String {
        match self {
            FaultKind::BadVersion { found } => {
                format!("bad-version (found v{found}, newest supported v{VERSION})")
            }
            other => other.label().to_string(),
        }
    }
}

/// A decoding fault located at a byte offset in the container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameFault {
    /// What went wrong.
    pub kind: FaultKind,
    /// Byte offset into the container where the fault was detected.
    pub offset: usize,
}

impl FrameFault {
    /// Converts the fault into a structured error, naming what was being
    /// decoded.
    pub fn to_error(self, what: &str) -> QrError {
        QrError::Corrupt {
            what: what.to_string(),
            offset: self.offset as u64,
            detail: self.kind.detail(),
        }
    }
}

impl std::fmt::Display for FrameFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.kind.label(), self.offset)
    }
}

/// Incremental container writer.
///
/// # Example
///
/// ```
/// use qr_common::frame::{self, PayloadKind};
///
/// let mut w = frame::Writer::new(PayloadKind::ChunkLog);
/// w.record(b"first");
/// w.record(b"second");
/// let bytes = w.finish();
/// let records = frame::read(&bytes, PayloadKind::ChunkLog, "example").unwrap();
/// assert_eq!(records, vec![b"first".as_slice(), b"second".as_slice()]);
/// ```
#[derive(Debug, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts a container of the given payload kind.
    pub fn new(kind: PayloadKind) -> Writer {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(kind.code());
        Writer { buf }
    }

    /// Appends one record (length prefix + payload + CRC-32 trailer).
    ///
    /// # Panics
    ///
    /// Panics if `payload` is longer than `u32::MAX` bytes — the length
    /// prefix is a `u32`, and a silent `as` truncation here would write a
    /// well-formed but *wrong* frame (the record would carry the first
    /// `len % 2^32` bytes of a >4 GiB payload with a matching CRC).
    /// Callers that handle oversized payloads gracefully use
    /// [`Writer::try_record`].
    pub fn record(&mut self, payload: &[u8]) -> &mut Writer {
        self.try_record(payload)
            .expect("frame record payload exceeds the u32 length prefix")
    }

    /// Fallible [`Writer::record`]: rejects payloads longer than the
    /// `u32` length prefix can describe instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Unsupported`] when `payload.len()` exceeds
    /// `u32::MAX`; the writer is left unchanged.
    pub fn try_record(&mut self, payload: &[u8]) -> Result<&mut Writer> {
        let len = checked_record_len(payload.len())?;
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.buf.extend_from_slice(&crc32::checksum(payload).to_le_bytes());
        Ok(self)
    }

    /// The finished container bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked conversion of a payload length into the `u32` record length
/// prefix. Split out (rather than inlined into [`Writer::try_record`])
/// so the >4 GiB boundary is unit-testable without allocating one.
fn checked_record_len(len: usize) -> Result<u32> {
    u32::try_from(len).map_err(|_| {
        QrError::Unsupported(format!(
            "frame record of {len} bytes exceeds the {}-byte u32 length prefix",
            u32::MAX
        ))
    })
}

/// The result of tolerantly scanning a container: every record of the
/// longest complete, checksum-valid prefix, plus the fault (if any) that
/// stopped the scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan<'a> {
    /// Payload kind from the header (`None` if the header itself was
    /// unreadable).
    pub kind: Option<PayloadKind>,
    /// Payload slices of the valid record prefix, in order.
    pub records: Vec<&'a [u8]>,
    /// What stopped the scan, or `None` for a fully valid container.
    pub fault: Option<FrameFault>,
    /// Bytes covered by the header and the valid record prefix; the
    /// remainder (`buf.len() - valid_len`) is the torn/corrupt tail.
    pub valid_len: usize,
}

impl Scan<'_> {
    /// Bytes of the container that were *not* salvageable.
    pub fn bytes_dropped(&self, total_len: usize) -> usize {
        total_len.saturating_sub(self.valid_len)
    }
}

/// Whether `buf` starts with the framed-container magic (used by
/// decoders to route between the framed and legacy formats).
pub fn is_framed(buf: &[u8]) -> bool {
    buf.len() >= MAGIC.len() && buf[..MAGIC.len()] == MAGIC
}

/// Tolerantly scans a container, returning the valid record prefix and
/// the first fault encountered.
///
/// A fault in the header (bad magic, unknown version or kind) yields an
/// empty record list; `valid_len` is then 0.
pub fn scan(buf: &[u8]) -> Scan<'_> {
    let fault = |kind: FaultKind, offset: usize| Scan {
        kind: None,
        records: Vec::new(),
        fault: Some(FrameFault { kind, offset }),
        valid_len: 0,
    };
    if buf.len() < HEADER_LEN {
        // A short buffer that is a proper prefix of the magic (e.g. a
        // file torn to "QRC") is a truncated framed container, not an
        // unframed one — `is_framed` alone can't tell, it needs all 4
        // magic bytes.
        let seen = buf.len().min(MAGIC.len());
        let kind = if buf[..seen] == MAGIC[..seen] {
            FaultKind::TruncatedHeader
        } else {
            FaultKind::BadMagic
        };
        return fault(kind, seen);
    }
    if !is_framed(buf) {
        return fault(FaultKind::BadMagic, 0);
    }
    if buf[4] != VERSION {
        return fault(FaultKind::BadVersion { found: buf[4] }, 4);
    }
    let Some(kind) = PayloadKind::from_code(buf[5]) else {
        return fault(FaultKind::BadKind, 5);
    };
    let mut records = Vec::new();
    let mut off = HEADER_LEN;
    let mut stop = None;
    while off < buf.len() {
        if buf.len() - off < 4 {
            stop = Some(FrameFault { kind: FaultKind::TruncatedRecord, offset: off });
            break;
        }
        let len = u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]) as usize;
        let Some(total) = len.checked_add(RECORD_OVERHEAD) else {
            stop = Some(FrameFault { kind: FaultKind::TruncatedRecord, offset: off });
            break;
        };
        if buf.len() - off < total {
            stop = Some(FrameFault { kind: FaultKind::TruncatedRecord, offset: off });
            break;
        }
        let payload = &buf[off + 4..off + 4 + len];
        let trailer = u32::from_le_bytes([
            buf[off + 4 + len],
            buf[off + 5 + len],
            buf[off + 6 + len],
            buf[off + 7 + len],
        ]);
        if crc32::checksum(payload) != trailer {
            stop = Some(FrameFault { kind: FaultKind::ChecksumMismatch, offset: off });
            break;
        }
        records.push(payload);
        off += total;
    }
    Scan { kind: Some(kind), records, fault: stop, valid_len: off }
}

/// Strictly decodes a container of the expected kind, returning every
/// record payload.
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] (with byte offset) for any structural
/// fault, checksum mismatch, or kind mismatch; `what` names what is
/// being decoded in the error.
pub fn read<'a>(buf: &'a [u8], expected: PayloadKind, what: &str) -> Result<Vec<&'a [u8]>> {
    let scanned = scan(buf);
    if let Some(fault) = scanned.fault {
        return Err(fault.to_error(what));
    }
    match scanned.kind {
        Some(kind) if kind == expected => Ok(scanned.records),
        Some(kind) => Err(QrError::Corrupt {
            what: what.to_string(),
            offset: 5,
            detail: format!("container holds a {}, expected a {}", kind.name(), expected.name()),
        }),
        None => unreachable!("fault-free scan always has a kind"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn container(records: &[&[u8]]) -> Vec<u8> {
        let mut w = Writer::new(PayloadKind::ChunkLog);
        for r in records {
            w.record(r);
        }
        w.finish()
    }

    #[test]
    fn round_trips_records() {
        let recs: Vec<&[u8]> = vec![b"alpha", b"", b"gamma-longer-record"];
        let buf = container(&recs);
        assert_eq!(read(&buf, PayloadKind::ChunkLog, "test").unwrap(), recs);
        let scanned = scan(&buf);
        assert_eq!(scanned.records, recs);
        assert_eq!(scanned.fault, None);
        assert_eq!(scanned.valid_len, buf.len());
    }

    #[test]
    fn empty_container_is_valid() {
        let buf = container(&[]);
        assert_eq!(buf.len(), HEADER_LEN);
        assert!(read(&buf, PayloadKind::ChunkLog, "test").unwrap().is_empty());
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let buf = container(&[b"x"]);
        let err = read(&buf, PayloadKind::InputLog, "test").unwrap_err();
        assert!(err.to_string().contains("expected a input log") || err.to_string().contains("chunk log"));
    }

    #[test]
    fn truncation_salvages_the_valid_prefix() {
        let recs: Vec<&[u8]> = vec![b"one", b"two", b"three"];
        let buf = container(&recs);
        // Cut inside the last record: first two records survive.
        let cut = buf.len() - 2;
        let scanned = scan(&buf[..cut]);
        assert_eq!(scanned.records, vec![b"one".as_slice(), b"two".as_slice()]);
        assert_eq!(scanned.fault.unwrap().kind, FaultKind::TruncatedRecord);
        assert!(read(&buf[..cut], PayloadKind::ChunkLog, "test").is_err());
    }

    #[test]
    fn short_magic_prefix_is_truncation_not_bad_magic() {
        // A file torn to a proper prefix of the magic ("Q", "QR",
        // "QRC") is a truncated framed container; salvage reports must
        // not misclassify it as an unframed (corrupt-magic) one.
        for cut in 0..MAGIC.len() {
            let scanned = scan(&MAGIC[..cut]);
            let fault = scanned.fault.expect("short buffer faults");
            assert_eq!(fault.kind, FaultKind::TruncatedHeader, "cut={cut}");
            assert_eq!(fault.offset, cut);
        }
        // A full magic with a missing version/kind byte is still a
        // truncated header.
        let scanned = scan(&MAGIC);
        assert_eq!(scanned.fault.unwrap().kind, FaultKind::TruncatedHeader);
    }

    #[test]
    fn short_non_magic_prefix_is_still_bad_magic() {
        for short in [b"X".as_slice(), b"XY", b"XYZ", b"QRX", b"qrc"] {
            let scanned = scan(short);
            assert_eq!(
                scanned.fault.expect("short buffer faults").kind,
                FaultKind::BadMagic,
                "{short:?}"
            );
        }
    }

    #[test]
    fn every_truncation_point_is_detected_or_a_clean_record_boundary() {
        let recs = [b"aaaa".as_slice(), b"bbbbbbbb", b"cc"];
        let buf = container(&recs);
        // Offsets where a cut leaves a structurally complete container: the
        // header end and each record end. Cuts there are indistinguishable
        // from a shorter log at the frame layer — the serialization layer
        // above commits to a record count to close that gap.
        let mut boundaries = vec![HEADER_LEN];
        let mut off = HEADER_LEN;
        for r in &recs {
            off += r.len() + RECORD_OVERHEAD;
            boundaries.push(off);
        }
        for cut in 0..buf.len() {
            let scanned = scan(&buf[..cut]);
            if boundaries.contains(&cut) {
                assert!(scanned.fault.is_none(), "boundary cut {cut} is a valid shorter log");
            } else {
                assert!(scanned.fault.is_some(), "cut {cut} must fault");
            }
            assert!(scanned.valid_len <= cut);
            // Salvaged records must be a prefix of the real ones.
            for (got, want) in scanned.records.iter().zip(recs) {
                assert_eq!(*got, want);
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let buf = container(&[b"payload-one", b"payload-two"]);
        for pos in 0..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[pos] ^= 1 << bit;
                assert!(
                    read(&bad, PayloadKind::ChunkLog, "test").is_err(),
                    "flip at byte {pos} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn bit_flip_salvage_keeps_only_checksum_valid_records() {
        let buf = container(&[b"first", b"second"]);
        // Flip a byte inside the first record's payload.
        let mut bad = buf.clone();
        bad[HEADER_LEN + 4] ^= 0x10;
        let scanned = scan(&bad);
        assert!(scanned.records.is_empty());
        assert_eq!(scanned.fault.unwrap().kind, FaultKind::ChecksumMismatch);
        assert_eq!(scanned.fault.unwrap().offset, HEADER_LEN);
    }

    #[test]
    fn newer_version_is_refused_not_misread() {
        let mut buf = container(&[b"x"]);
        buf[4] = VERSION + 1;
        let scanned = scan(&buf);
        assert_eq!(scanned.fault.unwrap().kind, FaultKind::BadVersion { found: VERSION + 1 });
        match read(&buf, PayloadKind::ChunkLog, "test") {
            Err(QrError::Corrupt { offset, detail, .. }) => {
                assert_eq!(offset, 4);
                // The detail names both sides of the mismatch, so a
                // conformance failure on a future trace self-diagnoses.
                assert_eq!(detail, format!("bad-version (found v{}, newest supported v{VERSION})", VERSION + 1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn payload_kind_codes_round_trip_and_all_is_exhaustive() {
        for kind in PayloadKind::ALL {
            assert_eq!(PayloadKind::from_code(kind.code()), Some(kind));
            // Forces a compile error (non-exhaustive match) when a new
            // variant is added without updating ALL.
            match kind {
                PayloadKind::ChunkLog
                | PayloadKind::InputLog
                | PayloadKind::Meta
                | PayloadKind::FootprintLog
                | PayloadKind::Wire
                | PayloadKind::CompressedLog
                | PayloadKind::StoreManifest
                | PayloadKind::TraceJournal
                | PayloadKind::FormatManifest
                | PayloadKind::CheckpointIndex
                | PayloadKind::OrderLog => {}
            }
        }
        // Codes are dense from 0: everything below ALL.len() decodes,
        // everything at or above it is rejected.
        for code in 0..=255u8 {
            let decoded = PayloadKind::from_code(code);
            assert_eq!(decoded.is_some(), (code as usize) < PayloadKind::ALL.len(), "code {code}");
            if let Some(kind) = decoded {
                assert_eq!(kind.code(), code);
            }
        }
    }

    #[test]
    fn magic_flips_never_alias_legacy_tags() {
        // The legacy chunk-log format starts with an encoding tag in
        // 0..=2; a single-bit flip of the framed magic's first byte must
        // never produce one, or a damaged framed log would be mis-parsed
        // as legacy.
        for bit in 0..8 {
            assert!(MAGIC[0] ^ (1 << bit) > 2, "bit {bit}");
        }
    }

    #[test]
    fn record_length_conversion_is_checked_at_the_u32_boundary() {
        // At the boundary: still representable.
        assert_eq!(checked_record_len(u32::MAX as usize).unwrap(), u32::MAX);
        assert_eq!(checked_record_len(0).unwrap(), 0);
        // One past it: a structured error, not a silent `as` truncation
        // (which would produce 0 here and write a wrong-but-well-formed
        // frame for a >4 GiB payload).
        let err = checked_record_len(u32::MAX as usize + 1).unwrap_err();
        assert!(matches!(err, QrError::Unsupported(_)), "{err}");
        assert!(err.to_string().contains("length prefix"), "{err}");
    }

    #[test]
    fn try_record_accepts_ordinary_payloads() {
        let mut w = Writer::new(PayloadKind::Meta);
        w.try_record(b"ok").unwrap();
        let buf = w.finish();
        assert_eq!(read(&buf, PayloadKind::Meta, "test").unwrap(), vec![b"ok".as_slice()]);
    }

    #[test]
    fn oversized_length_field_is_a_fault_not_a_panic() {
        let mut w = Writer::new(PayloadKind::Meta);
        w.record(b"ok");
        let mut buf = w.finish();
        // Rewrite the record length to an absurd value.
        buf[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let scanned = scan(&buf);
        assert_eq!(scanned.fault.unwrap().kind, FaultKind::TruncatedRecord);
    }
}
