#![warn(missing_docs)]

//! Shared foundation types for the QuickRec-RS workspace.
//!
//! This crate holds the small, dependency-free vocabulary used by every
//! other crate in the reproduction of *QuickRec: prototyping an Intel
//! architecture extension for record and replay of multithreaded programs*
//! (ISCA 2013):
//!
//! - strongly-typed identifiers ([`CoreId`], [`ThreadId`], [`VirtAddr`],
//!   [`LineAddr`], …),
//! - the workspace-wide error type ([`QrError`]),
//! - LEB128 varint and zigzag codecs used by the chunk-packet encodings
//!   ([`varint`]),
//! - CRC-32 checksums and the crash-consistent framed container format
//!   all on-disk logs are written in ([`crc32`], [`frame`]),
//! - a deterministic, seedable hash / PRNG pair used for state
//!   fingerprinting and signature hashing ([`fingerprint`], [`rng`]),
//! - a minimal TOML-subset parser for the golden-conformance registries
//!   ([`tomlmini`]).
//!
//! # Example
//!
//! ```
//! use qr_common::{CoreId, VirtAddr, LineAddr};
//!
//! let addr = VirtAddr(0x1234_5678);
//! assert_eq!(addr.line(), LineAddr(0x1234_5678 >> 6));
//! assert_eq!(CoreId(2).to_string(), "core2");
//! ```

pub mod crc32;
pub mod cursor;
pub mod error;
pub mod fingerprint;
pub mod frame;
pub mod ids;
pub mod rng;
pub mod tomlmini;
pub mod varint;

pub use error::{QrError, Result};
pub use fingerprint::Fingerprint;
pub use ids::{CoreId, Cycle, LineAddr, Pid, ThreadId, VirtAddr, CACHE_LINE_BYTES};
pub use rng::SplitMix64;
