//! A minimal, dependency-free TOML-subset parser.
//!
//! The golden-trace conformance suite pins fingerprints and expected
//! errors in human-editable registries (`tests/golden/MANIFEST.toml`,
//! `tests/golden/KNOWN_FAILURES.toml`). The workspace is deliberately
//! dependency-free, so this module implements the small TOML subset
//! those files use, rather than pulling in a full parser:
//!
//! - `#` comments and blank lines,
//! - `[table]` headers and `[[array-of-tables]]` headers,
//! - `key = value` pairs where a value is a basic `"string"` (with
//!   `\\`, `\"`, `\n`, `\t` escapes), a decimal or `0x` hex integer
//!   (underscore separators allowed), a boolean, or a flat array of
//!   those,
//! - bare keys (`[A-Za-z0-9_-]+`).
//!
//! Nested tables, dotted keys, floats, dates and multi-line strings are
//! out of scope and rejected with a line-numbered error.

use crate::error::{QrError, Result};

/// One parsed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer (decimal or hex in the source).
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A flat array of values.
    Array(Vec<Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// An ordered set of `key = value` pairs (one `[section]`, one
/// `[[section]]` instance, or the document root).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    /// Pairs in source order.
    pub pairs: Vec<(String, Value)>,
}

impl Table {
    /// The value bound to `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The string bound to `key`.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] when the key is missing or not
    /// a string.
    pub fn require_str(&self, key: &str) -> Result<&str> {
        self.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| QrError::InvalidConfig(format!("missing string key `{key}`")))
    }

    /// The integer bound to `key`.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] when the key is missing or not
    /// an integer.
    pub fn require_int(&self, key: &str) -> Result<i64> {
        self.get(key)
            .and_then(Value::as_int)
            .ok_or_else(|| QrError::InvalidConfig(format!("missing integer key `{key}`")))
    }
}

/// A parsed document: root pairs plus every `[name]` / `[[name]]`
/// section in source order (array-of-tables sections repeat the name).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Doc {
    /// Pairs before the first section header.
    pub root: Table,
    /// `(section name, table)` in source order.
    pub sections: Vec<(String, Table)>,
}

impl Doc {
    /// Every section named `name`, in source order (the accessor for
    /// `[[name]]` arrays of tables).
    pub fn sections_named<'a>(&'a self, name: &str) -> Vec<&'a Table> {
        self.sections.iter().filter(|(n, _)| n == name).map(|(_, t)| t).collect()
    }
}

fn err(line_no: usize, detail: impl std::fmt::Display) -> QrError {
    QrError::InvalidConfig(format!("toml line {line_no}: {detail}"))
}

/// Parses a document in the supported TOML subset.
///
/// # Errors
///
/// Returns [`QrError::InvalidConfig`] naming the offending line for
/// anything outside the subset or structurally malformed.
pub fn parse(text: &str) -> Result<Doc> {
    let mut doc = Doc::default();
    let mut current: Option<usize> = None; // index into doc.sections
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .map(str::trim)
                .filter(|n| is_bare_key(n))
                .ok_or_else(|| err(line_no, "malformed [[section]] header"))?;
            doc.sections.push((name.to_string(), Table::default()));
            current = Some(doc.sections.len() - 1);
        } else if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .map(str::trim)
                .filter(|n| is_bare_key(n))
                .ok_or_else(|| err(line_no, "malformed [section] header"))?;
            doc.sections.push((name.to_string(), Table::default()));
            current = Some(doc.sections.len() - 1);
        } else {
            let (key, value) = parse_pair(line, line_no)?;
            let table = match current {
                Some(i) => &mut doc.sections[i].1,
                None => &mut doc.root,
            };
            if table.get(&key).is_some() {
                return Err(err(line_no, format!("duplicate key `{key}`")));
            }
            table.pairs.push((key, value));
        }
    }
    Ok(doc)
}

/// Removes a trailing `#` comment, respecting `#` inside strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_pair(line: &str, line_no: usize) -> Result<(String, Value)> {
    let (key, rest) = line
        .split_once('=')
        .ok_or_else(|| err(line_no, "expected `key = value`"))?;
    let key = key.trim();
    if !is_bare_key(key) {
        return Err(err(line_no, format!("bad key `{key}` (bare keys only)")));
    }
    let (value, used) = parse_value(rest.trim(), line_no)?;
    if used != rest.trim().len() {
        return Err(err(line_no, "trailing characters after value"));
    }
    Ok((key.to_string(), value))
}

/// Parses one value from the front of `s`, returning it and the bytes
/// consumed.
fn parse_value(s: &str, line_no: usize) -> Result<(Value, usize)> {
    if let Some(rest) = s.strip_prefix('"') {
        let (string, used) = parse_string(rest, line_no)?;
        return Ok((Value::Str(string), used + 1));
    }
    if let Some(rest) = s.strip_prefix('[') {
        let (items, used) = parse_array(rest, line_no)?;
        return Ok((Value::Array(items), used + 1));
    }
    // Bare token: up to the next delimiter.
    let end = s
        .char_indices()
        .find(|&(_, c)| c == ',' || c == ']' || c.is_whitespace())
        .map_or(s.len(), |(i, _)| i);
    let token = &s[..end];
    let value = match token {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::Int(parse_int(token).ok_or_else(|| {
            err(line_no, format!("unsupported value `{token}` (strings, integers, booleans and flat arrays only)"))
        })?),
    };
    Ok((value, end))
}

fn parse_int(token: &str) -> Option<i64> {
    let (neg, token) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    let cleaned: String = token.chars().filter(|&c| c != '_').collect();
    if cleaned.is_empty() || token.starts_with('_') || token.ends_with('_') {
        return None;
    }
    let magnitude = match cleaned.strip_prefix("0x") {
        Some(hex) if !hex.is_empty() => u64::from_str_radix(hex, 16).ok()?,
        Some(_) => return None,
        None => {
            if !cleaned.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            cleaned.parse::<u64>().ok()?
        }
    };
    if neg {
        (magnitude <= i64::MAX as u64 + 1).then(|| (magnitude as i64).wrapping_neg())
    } else {
        i64::try_from(magnitude).ok()
    }
}

/// Parses a basic string body (opening quote already consumed),
/// returning the string and bytes consumed including the closing quote.
fn parse_string(s: &str, line_no: usize) -> Result<(String, usize)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let (_, esc) = chars
                    .next()
                    .ok_or_else(|| err(line_no, "dangling escape in string"))?;
                out.push(match esc {
                    '\\' => '\\',
                    '"' => '"',
                    'n' => '\n',
                    't' => '\t',
                    other => return Err(err(line_no, format!("unsupported escape `\\{other}`"))),
                });
            }
            _ => out.push(c),
        }
    }
    Err(err(line_no, "unterminated string"))
}

/// Parses a flat array body (opening bracket already consumed),
/// returning the items and bytes consumed including the closing bracket.
fn parse_array(s: &str, line_no: usize) -> Result<(Vec<Value>, usize)> {
    let mut items = Vec::new();
    let mut off = 0usize;
    loop {
        while s[off..].starts_with(|c: char| c.is_whitespace() || c == ',') {
            off += 1;
        }
        if let Some(rest) = s[off..].strip_prefix(']') {
            let _ = rest;
            return Ok((items, off + 1));
        }
        if off >= s.len() {
            return Err(err(line_no, "unterminated array"));
        }
        let (value, used) = parse_value(&s[off..], line_no)?;
        if matches!(value, Value::Array(_)) {
            return Err(err(line_no, "nested arrays are not supported"));
        }
        items.push(value);
        off += used;
    }
}

/// Escapes a string for embedding in a generated registry file (the
/// inverse of what [`parse`] accepts).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_root_sections_and_arrays_of_tables() {
        let doc = parse(
            r#"
# registry
title = "golden"   # inline comment
count = 3

[meta]
version = 0x2a
enabled = true

[[fixture]]
name = "hello-delta"
fingerprint = "00ff"

[[fixture]]
name = "fft2-raw"
files = ["meta.qrm", "chunks.qrl"]
negative = -7
"#,
        )
        .unwrap();
        assert_eq!(doc.root.require_str("title").unwrap(), "golden");
        assert_eq!(doc.root.require_int("count").unwrap(), 3);
        let meta = &doc.sections_named("meta")[0];
        assert_eq!(meta.require_int("version").unwrap(), 42);
        assert_eq!(meta.get("enabled").unwrap().as_bool(), Some(true));
        let fixtures = doc.sections_named("fixture");
        assert_eq!(fixtures.len(), 2);
        assert_eq!(fixtures[1].require_str("name").unwrap(), "fft2-raw");
        let files: Vec<&str> = fixtures[1].get("files").unwrap().as_array().unwrap()
            .iter()
            .filter_map(Value::as_str)
            .collect();
        assert_eq!(files, ["meta.qrm", "chunks.qrl"]);
        assert_eq!(fixtures[1].require_int("negative").unwrap(), -7);
    }

    #[test]
    fn strings_round_trip_through_escape() {
        for original in ["plain", "with \"quotes\"", "tab\there", "line\nbreak", "back\\slash"] {
            let text = format!("value = \"{}\"\n", escape(original));
            let doc = parse(&text).unwrap();
            assert_eq!(doc.root.require_str("value").unwrap(), original, "{text:?}");
        }
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("detail = \"bad-kind # not a comment\"").unwrap();
        assert_eq!(doc.root.require_str("detail").unwrap(), "bad-kind # not a comment");
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        for (text, needle) in [
            ("key", "expected `key = value`"),
            ("[unclosed", "malformed [section]"),
            ("[[half]", "malformed [[section]]"),
            ("k = \"open", "unterminated string"),
            ("k = [1, 2", "unterminated array"),
            ("k = [[1]]", "nested arrays"),
            ("k = 1.5", "unsupported value"),
            ("a = 1\na = 2", "duplicate key"),
            ("k = \"x\\q\"", "unsupported escape"),
            ("k = 1 2", "trailing characters"),
        ] {
            let e = parse(text).unwrap_err();
            assert!(
                matches!(&e, QrError::InvalidConfig(msg) if msg.contains(needle) && msg.contains("line")),
                "{text:?}: {e}"
            );
        }
    }

    #[test]
    fn integer_edge_cases() {
        assert_eq!(parse("k = 9_000_000").unwrap().root.require_int("k").unwrap(), 9_000_000);
        assert_eq!(parse("k = 0xdeadbeef").unwrap().root.require_int("k").unwrap(), 0xdead_beef);
        assert_eq!(parse("k = -1").unwrap().root.require_int("k").unwrap(), -1);
        assert!(parse("k = 0x").is_err());
        assert!(parse("k = _1").is_err());
        // u64-range hex that overflows i64 is rejected, not wrapped.
        assert!(parse("k = 0xffffffffffffffff").is_err());
    }

    #[test]
    fn missing_keys_are_structured_errors() {
        let doc = parse("present = 1").unwrap();
        assert!(doc.root.require_str("absent").is_err());
        assert!(doc.root.require_int("absent").is_err());
        // Wrong type is also a miss.
        assert!(doc.root.require_str("present").is_err());
    }
}
