//! Strongly-typed identifiers used across the QuickRec-RS workspace.
//!
//! Following the newtype guideline, quantities that are "just integers" at
//! the hardware level (core numbers, thread ids, virtual addresses, cache
//! line numbers, cycle counts) get distinct types so that, e.g., a
//! [`ThreadId`] can never be passed where a [`CoreId`] is expected.

use std::fmt;

/// Size of a cache line in bytes. Conflict detection, signatures and the
/// MESI protocol all operate at this granularity, as in the QuickIA
/// prototype platform.
pub const CACHE_LINE_BYTES: u32 = 64;

/// Log2 of [`CACHE_LINE_BYTES`].
pub const CACHE_LINE_SHIFT: u32 = CACHE_LINE_BYTES.trailing_zeros();

/// Identifier of a physical core in the simulated machine (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u8);

impl CoreId {
    /// Index usable for per-core `Vec` storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifier of a software thread managed by the simulated kernel.
///
/// Thread ids are unique for the lifetime of a machine and never reused,
/// which keeps recorded logs unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// Index usable for per-thread `Vec` storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// Identifier of a simulated process (one address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A 32-bit virtual address in the PIA address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u32);

impl VirtAddr {
    /// The cache line containing this address.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> CACHE_LINE_SHIFT)
    }

    /// Byte offset of this address within its cache line.
    pub fn line_offset(self) -> u32 {
        self.0 & (CACHE_LINE_BYTES - 1)
    }

    /// Address advanced by `bytes`, wrapping like 32-bit hardware would.
    pub fn wrapping_add(self, bytes: u32) -> VirtAddr {
        VirtAddr(self.0.wrapping_add(bytes))
    }

    /// Whether an access of `bytes` starting here stays within one line.
    pub fn fits_in_line(self, bytes: u32) -> bool {
        self.line_offset() + bytes <= CACHE_LINE_BYTES
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache line number (virtual address divided by [`CACHE_LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u32);

impl LineAddr {
    /// First byte address of this line.
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << CACHE_LINE_SHIFT)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// A simulated cycle count (also used as the global bus timestamp domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Zero cycles.
    pub const ZERO: Cycle = Cycle(0);

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl std::ops::Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl std::ops::AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_is_64_byte_granular() {
        assert_eq!(VirtAddr(0).line(), LineAddr(0));
        assert_eq!(VirtAddr(63).line(), LineAddr(0));
        assert_eq!(VirtAddr(64).line(), LineAddr(1));
        assert_eq!(VirtAddr(0xffff_ffff).line(), LineAddr(0x03ff_ffff));
    }

    #[test]
    fn line_offset_and_base_roundtrip() {
        let a = VirtAddr(0x1007);
        assert_eq!(a.line_offset(), 7);
        assert_eq!(a.line().base(), VirtAddr(0x1000));
        assert_eq!(a.line().base().0 + a.line_offset(), a.0);
    }

    #[test]
    fn fits_in_line_checks_span() {
        assert!(VirtAddr(0).fits_in_line(64));
        assert!(!VirtAddr(1).fits_in_line(64));
        assert!(VirtAddr(60).fits_in_line(4));
        assert!(!VirtAddr(61).fits_in_line(4));
    }

    #[test]
    fn cycle_arithmetic() {
        let mut c = Cycle::ZERO;
        c += 10;
        assert_eq!(c, Cycle(10));
        assert_eq!((c + 5).since(c), 5);
        assert_eq!(c.since(c + 5), 0, "since saturates");
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(ThreadId(9).to_string(), "tid9");
        assert_eq!(Pid(1).to_string(), "pid1");
        assert_eq!(VirtAddr(0xabc).to_string(), "0x00000abc");
        assert_eq!(Cycle(7).to_string(), "7cy");
    }

    #[test]
    fn wrapping_add_wraps_like_hardware() {
        assert_eq!(VirtAddr(0xffff_ffff).wrapping_add(1), VirtAddr(0));
    }
}
