//! Deterministic pseudo-random number generation.
//!
//! Simulator components that need "random" behaviour (interleaving jitter,
//! synthetic device input, signature hash mixing) must be reproducible from
//! a seed, so they use this small SplitMix64 generator rather than a
//! host-entropy source. SplitMix64 passes BigCrush for this bit width and
//! has a one-word state, which keeps machine snapshots tiny.
//!
//! # Example
//!
//! ```
//! use qr_common::SplitMix64;
//!
//! let mut a = SplitMix64::new(7);
//! let mut b = SplitMix64::new(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// One-word deterministic PRNG (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a nonzero bound");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // simulator's bounds (all far below 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Derives an independent generator, e.g. one per core.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "nonzero bound")]
    fn below_zero_bound_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = SplitMix64::new(11);
        let mut a = root.split();
        let mut b = root.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(r.chance(1, 1));
            assert!(!r.chance(0, 5));
        }
    }
}
