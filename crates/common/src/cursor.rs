//! A positional byte reader for fixed layouts.
//!
//! The checkpoint snapshots introduced for time-travel replay serialize
//! machine state (register files, cache metadata, store buffers, memory
//! pages) as flat little-endian fields and LEB128 varints. Every decode
//! is reachable from untrusted bytes, so each primitive here returns a
//! structured [`QrError::Corrupt`] carrying the byte offset where the
//! read failed instead of panicking or silently truncating.
//!
//! Writers don't need a mirror type: appending to a `Vec<u8>` with
//! `to_le_bytes` / [`crate::varint::write_u64`] is already infallible.

use crate::error::{QrError, Result};
use crate::varint;

/// Cursor over a byte buffer with structured out-of-bounds errors.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> ByteReader<'a> {
    /// Starts reading `buf` from the front; `what` names the artifact
    /// being decoded in error messages.
    pub fn new(buf: &'a [u8], what: &'a str) -> ByteReader<'a> {
        ByteReader { buf, pos: 0, what }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn corrupt(&self, detail: impl Into<String>) -> QrError {
        QrError::Corrupt {
            what: self.what.to_string(),
            offset: self.pos as u64,
            detail: detail.into(),
        }
    }

    /// Takes `len` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] if fewer than `len` bytes remain.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8]> {
        if self.remaining() < len {
            return Err(self.corrupt(format!(
                "need {len} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on a truncated buffer.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on a truncated buffer.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on a truncated buffer.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on truncation or overflow.
    pub fn varint(&mut self) -> Result<u64> {
        let (value, len) = varint::read_u64(&self.buf[self.pos..])
            .map_err(|e| self.corrupt(e.to_string()))?;
        self.pos += len;
        Ok(value)
    }

    /// Reads a varint and checks it fits a `usize` count bounded by
    /// `max` (guards against implausible lengths driving allocations).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] if the value exceeds `max`.
    pub fn count(&mut self, max: u64) -> Result<usize> {
        let at = self.pos;
        let value = self.varint()?;
        if value > max {
            return Err(QrError::Corrupt {
                what: self.what.to_string(),
                offset: at as u64,
                detail: format!("implausible count {value} (max {max})"),
            });
        }
        Ok(value as usize)
    }

    /// Asserts the buffer was fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] naming the number of trailing bytes.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        buf.push(7u8);
        buf.extend_from_slice(&0xdead_beefu32.to_le_bytes());
        buf.extend_from_slice(&0x1122_3344_5566_7788u64.to_le_bytes());
        varint::write_u64(&mut buf, 300);
        let mut r = ByteReader::new(&buf, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(r.varint().unwrap(), 300);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_structured_error_with_offset() {
        let buf = [1u8, 2];
        let mut r = ByteReader::new(&buf, "snapshot");
        assert_eq!(r.u8().unwrap(), 1);
        let err = r.u32().unwrap_err();
        match err {
            QrError::Corrupt { what, offset, .. } => {
                assert_eq!(what, "snapshot");
                assert_eq!(offset, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let buf = [0u8; 3];
        let mut r = ByteReader::new(&buf, "test");
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn implausible_counts_are_rejected() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 1_000_000);
        let mut r = ByteReader::new(&buf, "test");
        let err = r.count(1000).unwrap_err();
        assert!(err.to_string().contains("implausible count"), "{err}");
    }
}
