//! CRC-32 (IEEE 802.3) checksums for on-disk log integrity.
//!
//! Recording logs are written while the recorded process is still
//! running, so a crash can tear them at any byte. Every framed record
//! (see [`crate::frame`]) carries a CRC-32 trailer so the loader can
//! distinguish a complete record from a torn or bit-flipped one. The
//! polynomial is the reflected IEEE polynomial `0xEDB88320` — the same
//! one used by zlib, PNG and Ethernet — so the values are easy to
//! cross-check with external tooling.
//!
//! # Example
//!
//! ```
//! use qr_common::crc32;
//!
//! assert_eq!(crc32::checksum(b"123456789"), 0xCBF4_3926);
//! ```

/// Reflected IEEE CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` in one call.
pub fn checksum(data: &[u8]) -> u32 {
    let mut hasher = Hasher::new();
    hasher.update(data);
    hasher.finalize()
}

/// Incremental CRC-32 state, for checksumming data produced in pieces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hasher {
    state: u32,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// Creates a fresh hasher.
    pub fn new() -> Hasher {
        Hasher { state: !0 }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        for &byte in data {
            let idx = ((self.state ^ byte as u32) & 0xff) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Final checksum value.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values (cross-checked with zlib).
        assert_eq!(checksum(b""), 0);
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum(b"a"), 0xE8B7_BE43);
        assert_eq!(checksum(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"split across several update calls";
        for cut in 0..data.len() {
            let mut h = Hasher::new();
            h.update(&data[..cut]);
            h.update(&data[cut..]);
            assert_eq!(h.finalize(), checksum(data), "cut at {cut}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data: Vec<u8> = (0..=255u8).collect();
        let clean = checksum(&data);
        for pos in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[pos] ^= 1 << bit;
                assert_ne!(checksum(&flipped), clean, "flip at byte {pos} bit {bit}");
            }
        }
    }

    #[test]
    fn detects_transpositions_and_zero_fill() {
        let data = b"abcdefgh".to_vec();
        let clean = checksum(&data);
        let mut swapped = data.clone();
        swapped.swap(2, 5);
        assert_ne!(checksum(&swapped), clean);
        let zeroed = vec![0u8; data.len()];
        assert_ne!(checksum(&zeroed), clean);
    }
}
