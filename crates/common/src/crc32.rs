//! CRC-32 (IEEE 802.3) checksums for on-disk log integrity.
//!
//! Recording logs are written while the recorded process is still
//! running, so a crash can tear them at any byte. Every framed record
//! (see [`crate::frame`]) carries a CRC-32 trailer so the loader can
//! distinguish a complete record from a torn or bit-flipped one. The
//! polynomial is the reflected IEEE polynomial `0xEDB88320` — the same
//! one used by zlib, PNG and Ethernet — so the values are easy to
//! cross-check with external tooling.
//!
//! # Hot-path implementation
//!
//! Every recorded byte crosses this module twice (once when the frame
//! writer appends a record trailer, once when the scanner re-checks it),
//! so [`Hasher::update`] uses the *slice-by-8* technique: eight 256-entry
//! tables, built at compile time, fold eight input bytes into the state
//! per step instead of one. The classic one-table byte loop is kept as
//! [`Hasher::update_scalar`]/[`checksum_scalar`] — it is the reference
//! path the differential battery (and the `repro e13` benchmark) checks
//! the fast path against, and it handles the under-8-byte tail.
//!
//! # Example
//!
//! ```
//! use qr_common::crc32;
//!
//! assert_eq!(crc32::checksum(b"123456789"), 0xCBF4_3926);
//! ```

/// Reflected IEEE CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slice-by-8 lookup tables, built at compile time.
///
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][b]` is
/// the CRC of byte `b` followed by `k` zero bytes, so XOR-ing one lane
/// per input byte advances the state eight bytes at once.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 of `data` in one call.
pub fn checksum(data: &[u8]) -> u32 {
    let mut hasher = Hasher::new();
    hasher.update(data);
    hasher.finalize()
}

/// CRC-32 of `data` via the scalar reference path (one table, one byte
/// per step). Exists so tests and benchmarks can prove the slice-by-8
/// path computes identical values; production callers use [`checksum`].
pub fn checksum_scalar(data: &[u8]) -> u32 {
    let mut hasher = Hasher::new();
    hasher.update_scalar(data);
    hasher.finalize()
}

/// Incremental CRC-32 state, for checksumming data produced in pieces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hasher {
    state: u32,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// Creates a fresh hasher.
    pub fn new() -> Hasher {
        Hasher { state: !0 }
    }

    /// Absorbs `data`, eight bytes per table step.
    pub fn update(&mut self, data: &[u8]) {
        let mut state = self.state;
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ state;
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            state = TABLES[7][(lo & 0xff) as usize]
                ^ TABLES[6][((lo >> 8) & 0xff) as usize]
                ^ TABLES[5][((lo >> 16) & 0xff) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xff) as usize]
                ^ TABLES[2][((hi >> 8) & 0xff) as usize]
                ^ TABLES[1][((hi >> 16) & 0xff) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        self.state = state;
        self.update_scalar(chunks.remainder());
    }

    /// Absorbs `data` one byte at a time — the reference implementation
    /// the fast path is differentially tested against, and the tail loop
    /// for inputs not a multiple of eight bytes.
    pub fn update_scalar(&mut self, data: &[u8]) {
        for &byte in data {
            let idx = ((self.state ^ byte as u32) & 0xff) as usize;
            self.state = (self.state >> 8) ^ TABLES[0][idx];
        }
    }

    /// Final checksum value.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values (cross-checked with zlib).
        assert_eq!(checksum(b""), 0);
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum(b"a"), 0xE8B7_BE43);
        assert_eq!(checksum(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn scalar_reference_matches_known_vectors() {
        assert_eq!(checksum_scalar(b""), 0);
        assert_eq!(checksum_scalar(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum_scalar(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn slice_by_8_matches_scalar_on_every_length() {
        // Every length 0..=64 hits a different head/tail split of the
        // 8-byte fast loop.
        let mut rng = SplitMix64::new(0x51ce_8);
        let data: Vec<u8> = (0..64).map(|_| rng.next_u64() as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(checksum(&data[..len]), checksum_scalar(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn slice_by_8_matches_scalar_on_random_corpora() {
        let mut rng = SplitMix64::new(0xD1FF_0001);
        for case in 0..200 {
            let len = rng.below(4096) as usize;
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            assert_eq!(checksum(&data), checksum_scalar(&data), "case {case} len {len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"split across several update calls";
        for cut in 0..data.len() {
            let mut h = Hasher::new();
            h.update(&data[..cut]);
            h.update(&data[cut..]);
            assert_eq!(h.finalize(), checksum(data), "cut at {cut}");
        }
    }

    #[test]
    fn incremental_mixed_fast_and_scalar_updates_agree() {
        let mut rng = SplitMix64::new(0xD1FF_0002);
        let data: Vec<u8> = (0..1024).map(|_| rng.next_u64() as u8).collect();
        for _ in 0..50 {
            let mut fast = Hasher::new();
            let mut slow = Hasher::new();
            let mut off = 0usize;
            while off < data.len() {
                let n = (rng.below(96) as usize + 1).min(data.len() - off);
                fast.update(&data[off..off + n]);
                slow.update_scalar(&data[off..off + n]);
                off += n;
            }
            assert_eq!(fast.finalize(), slow.finalize());
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data: Vec<u8> = (0..=255u8).collect();
        let clean = checksum(&data);
        for pos in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[pos] ^= 1 << bit;
                assert_ne!(checksum(&flipped), clean, "flip at byte {pos} bit {bit}");
            }
        }
    }

    #[test]
    fn detects_transpositions_and_zero_fill() {
        let data = b"abcdefgh".to_vec();
        let clean = checksum(&data);
        let mut swapped = data.clone();
        swapped.swap(2, 5);
        assert_ne!(checksum(&swapped), clean);
        let zeroed = vec![0u8; data.len()];
        assert_ne!(checksum(&zeroed), clean);
    }
}
