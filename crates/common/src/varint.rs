//! LEB128 varint and zigzag codecs.
//!
//! The chunk-packet encodings in `quickrec-core` (`Packed` and `Delta`)
//! store instruction counts, timestamps and timestamp deltas as
//! variable-length integers. The format is standard unsigned LEB128 with
//! zigzag mapping for signed deltas.
//!
//! # Example
//!
//! ```
//! use qr_common::varint;
//!
//! let mut buf = Vec::new();
//! varint::write_u64(&mut buf, 300);
//! let (value, len) = varint::read_u64(&buf).unwrap();
//! assert_eq!((value, len), (300, 2));
//! ```

use crate::error::{QrError, Result};

/// Maximum encoded length of a `u64` varint in bytes.
pub const MAX_LEN: usize = 10;

/// Appends `value` to `buf` as unsigned LEB128, returning the encoded length.
pub fn write_u64(buf: &mut Vec<u8>, mut value: u64) -> usize {
    let start = buf.len();
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
    buf.len() - start
}

/// Reads an unsigned LEB128 value from the front of `buf`.
///
/// Returns the decoded value and the number of bytes consumed.
///
/// # Errors
///
/// Returns [`QrError::LogDecode`] if `buf` ends mid-varint or the encoding
/// overflows 64 bits.
pub fn read_u64(buf: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 64 {
            return Err(QrError::LogDecode("varint overflows u64".into()));
        }
        let payload = (byte & 0x7f) as u64;
        if shift == 63 && payload > 1 {
            return Err(QrError::LogDecode("varint overflows u64".into()));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(QrError::LogDecode("truncated varint".into()))
}

/// Like [`read_u64`], but additionally rejects non-minimal encodings
/// (a multi-byte varint whose final byte contributes no bits, e.g.
/// `[0x80, 0x00]` for 0).
///
/// [`write_u64`] always emits the minimal form, so grammars that need a
/// *canonical* byte stream — exactly one encoding per value, like the
/// store's LZ token stream — decode with this and treat the overlong
/// forms as corruption.
///
/// # Errors
///
/// Returns [`QrError::LogDecode`] for truncation, overflow, or an
/// overlong encoding.
pub fn read_u64_canonical(buf: &[u8]) -> Result<(u64, usize)> {
    let (value, len) = read_u64(buf)?;
    if len > 1 && buf[len - 1] == 0 {
        return Err(QrError::LogDecode("overlong varint".into()));
    }
    Ok((value, len))
}

/// Zigzag-encodes a signed value so small magnitudes use few LEB128 bytes.
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Appends a signed value as zigzag LEB128, returning the encoded length.
pub fn write_i64(buf: &mut Vec<u8>, value: i64) -> usize {
    write_u64(buf, zigzag(value))
}

/// Reads a zigzag LEB128 signed value from the front of `buf`.
///
/// # Errors
///
/// Propagates [`read_u64`] errors.
pub fn read_i64(buf: &[u8]) -> Result<(i64, usize)> {
    let (raw, len) = read_u64(buf)?;
    Ok((unzigzag(raw), len))
}

/// Number of bytes [`write_u64`] would emit for `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_take_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            assert_eq!(write_u64(&mut buf, v), 1);
            assert_eq!(read_u64(&buf).unwrap(), (v, 1));
        }
    }

    #[test]
    fn boundary_values_round_trip() {
        for v in [127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            let len = write_u64(&mut buf, v);
            assert_eq!(len, encoded_len(v), "encoded_len matches actual for {v}");
            assert_eq!(read_u64(&buf).unwrap(), (v, len));
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(read_u64(&buf[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn overlong_encoding_is_an_error() {
        // 11 continuation bytes cannot fit in a u64.
        let buf = [0x80u8; 10]
            .iter()
            .copied()
            .chain(std::iter::once(0x01))
            .collect::<Vec<_>>();
        assert!(read_u64(&buf).is_err());
    }

    #[test]
    fn canonical_read_accepts_exactly_the_written_form() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            let len = write_u64(&mut buf, v);
            assert_eq!(read_u64_canonical(&buf).unwrap(), (v, len), "minimal form of {v}");
            // Pad with a redundant continuation: same value, one byte
            // longer. The plain reader accepts it, the canonical one
            // must not.
            if len < MAX_LEN {
                let mut overlong = buf.clone();
                *overlong.last_mut().unwrap() |= 0x80;
                overlong.push(0x00);
                assert_eq!(read_u64(&overlong).unwrap(), (v, len + 1));
                assert!(read_u64_canonical(&overlong).is_err(), "overlong form of {v}");
            }
        }
    }

    #[test]
    fn canonical_read_propagates_truncation_and_overflow() {
        assert!(read_u64_canonical(&[0x80]).is_err());
        assert!(read_u64_canonical(&[0x80; 11]).is_err());
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [-1_000_000i64, -1, 0, 1, 42, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [i64::MIN, -300, -1, 0, 1, 300, i64::MAX] {
            let mut buf = Vec::new();
            let len = write_i64(&mut buf, v);
            assert_eq!(read_i64(&buf).unwrap(), (v, len));
        }
    }

    #[test]
    fn sequential_decode_consumes_exact_lengths() {
        let values = [0u64, 1, 127, 128, 99999, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut off = 0;
        for &v in &values {
            let (got, len) = read_u64(&buf[off..]).unwrap();
            assert_eq!(got, v);
            off += len;
        }
        assert_eq!(off, buf.len());
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use crate::SplitMix64;

    /// A value stream mixing uniform bits with small and boundary values,
    /// so every encoded length 1..=10 is exercised.
    fn values(rng: &mut SplitMix64) -> impl Iterator<Item = u64> + '_ {
        (0..4096).map(move |i| match i % 4 {
            0 => rng.next_u64(),
            1 => rng.next_u64() >> (rng.below(64) as u32),
            2 => (1u64 << rng.below(64) as u32).wrapping_sub(rng.below(2)),
            _ => rng.below(256),
        })
    }

    #[test]
    fn u64_round_trips() {
        let mut rng = SplitMix64::new(0x5eed_0001);
        let vs: Vec<u64> = values(&mut rng).collect();
        for v in vs {
            let mut buf = Vec::new();
            let len = write_u64(&mut buf, v);
            assert_eq!(len, encoded_len(v));
            assert_eq!(read_u64(&buf).unwrap(), (v, len));
        }
    }

    #[test]
    fn i64_round_trips() {
        let mut rng = SplitMix64::new(0x5eed_0002);
        let vs: Vec<u64> = values(&mut rng).collect();
        for v in vs {
            let v = v as i64;
            let mut buf = Vec::new();
            let len = write_i64(&mut buf, v);
            assert_eq!(read_i64(&buf).unwrap(), (v, len));
        }
    }

    #[test]
    fn decode_never_reads_past_terminator() {
        let mut rng = SplitMix64::new(0x5eed_0003);
        for _ in 0..2048 {
            let v = rng.next_u64() >> (rng.below(64) as u32);
            let mut buf = Vec::new();
            let len = write_u64(&mut buf, v);
            let junk_len = rng.below(16) as usize;
            for _ in 0..junk_len {
                buf.push(rng.next_u64() as u8);
            }
            assert_eq!(read_u64(&buf).unwrap(), (v, len));
        }
    }

    #[test]
    fn decode_arbitrary_bytes_never_panics() {
        let mut rng = SplitMix64::new(0x5eed_0004);
        for _ in 0..4096 {
            let len = rng.below(12) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = read_u64(&bytes);
            let _ = read_i64(&bytes);
        }
    }
}
