//! Randomized tests across the ISA toolchain: random instruction
//! sequences must survive encode→decode and disassemble→reassemble
//! unchanged. Driven by the deterministic `SplitMix64` generator so every
//! run covers the same (large) case set.

use qr_common::SplitMix64;
use qr_isa::instr::{AccessWidth, AluOp, BranchCond, Instr};
use qr_isa::program::{CODE_BASE, INSTR_BYTES};
use qr_isa::{disasm, text, Program, Reg};
use std::collections::BTreeMap;

fn reg(rng: &mut SplitMix64) -> Reg {
    Reg::from_num(rng.below(16) as u8).expect("in range")
}

fn width(rng: &mut SplitMix64) -> AccessWidth {
    match rng.below(3) {
        0 => AccessWidth::Byte,
        1 => AccessWidth::Half,
        _ => AccessWidth::Word,
    }
}

/// A random instruction whose control-flow targets stay inside a
/// `code_len`-instruction program (so reassembly is meaningful).
fn instr(rng: &mut SplitMix64, code_len: u32) -> Instr {
    let target = |rng: &mut SplitMix64| CODE_BASE + rng.below(code_len as u64) as u32 * INSTR_BYTES;
    match rng.below(23) {
        0 => Instr::Nop,
        1 => Instr::Fence,
        2 => Instr::Ret,
        3 => Instr::Syscall,
        4 => Instr::Pause,
        5 => Instr::Halt,
        6 => Instr::Movi { rd: reg(rng), imm: rng.next_u32() },
        7 => Instr::Mov { rd: reg(rng), rs: reg(rng) },
        8 => Instr::Alu {
            op: AluOp::ALL[rng.below(AluOp::ALL.len() as u64) as usize],
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        9 => Instr::AluImm {
            op: AluOp::ALL[rng.below(AluOp::ALL.len() as u64) as usize],
            rd: reg(rng),
            rs1: reg(rng),
            imm: rng.next_u32(),
        },
        10 => Instr::Ld {
            rd: reg(rng),
            base: reg(rng),
            offset: rng.below(2048) as i32 - 1024,
            width: width(rng),
        },
        11 => Instr::St {
            src: reg(rng),
            base: reg(rng),
            offset: rng.below(2048) as i32 - 1024,
            width: width(rng),
        },
        12 => Instr::Cas { rd: reg(rng), addr: reg(rng), src: reg(rng) },
        13 => Instr::Xchg { rd: reg(rng), addr: reg(rng) },
        14 => Instr::FetchAdd { rd: reg(rng), addr: reg(rng), src: reg(rng) },
        15 => Instr::Jmp { target: target(rng) },
        16 => Instr::Jr { rs: reg(rng) },
        17 => {
            let cond = BranchCond::ALL[rng.below(BranchCond::ALL.len() as u64) as usize];
            // Eqz/Nez ignore rs2; the assemblers always emit R0 there,
            // so generate the canonical form.
            let rs2 = if matches!(cond, BranchCond::Eqz | BranchCond::Nez) {
                Reg::R0
            } else {
                reg(rng)
            };
            Instr::Br { cond, rs1: reg(rng), rs2, target: target(rng) }
        }
        18 => Instr::Call { target: target(rng) },
        19 => Instr::CallR { rs: reg(rng) },
        20 => Instr::Push { rs: reg(rng) },
        21 => Instr::Pop { rd: reg(rng) },
        22 => Instr::Rdtsc { rd: reg(rng) },
        _ => Instr::Rdrand { rd: reg(rng) },
    }
}

fn check_reassembly(code: Vec<Instr>, data: Vec<u8>) {
    let program = Program::new("prop", code, data, CODE_BASE, BTreeMap::new()).unwrap();
    let source = disasm::disassemble(&program);
    let back = text::assemble("prop2", &source)
        .unwrap_or_else(|e| panic!("reassembly failed: {e}\n{source}"));
    assert_eq!(back.code(), program.code());
    assert_eq!(back.data(), program.data());
    assert_eq!(back.entry(), program.entry());
}

#[test]
fn disassemble_reassemble_preserves_programs() {
    let mut rng = SplitMix64::new(0x0d15_a001);
    for _ in 0..128 {
        let len = 1 + rng.below(79) as u32;
        let code: Vec<Instr> = (0..len).map(|_| instr(&mut rng, len)).collect();
        let data_len = rng.below(128) as usize;
        let data: Vec<u8> = (0..data_len).map(|_| rng.next_u64() as u8).collect();
        check_reassembly(code, data);
    }
}

/// Regression (from the retired proptest corpus): a single-instruction
/// program with a data section whose length is not word-aligned.
#[test]
fn reassembly_survives_unaligned_data_tail() {
    check_reassembly(vec![Instr::Nop], vec![0u8; 17]);
}

/// Regression: a backward conditional branch targeting instruction 0.
#[test]
fn reassembly_survives_branch_to_program_start() {
    let code = vec![Instr::Br {
        cond: BranchCond::Eqz,
        rs1: Reg::R0,
        rs2: Reg::R0,
        target: CODE_BASE,
    }];
    check_reassembly(code, vec![]);
}

#[test]
fn binary_encoding_round_trips() {
    let mut rng = SplitMix64::new(0x0d15_a002);
    for _ in 0..4096 {
        let i = instr(&mut rng, 1000);
        let bytes = i.encode();
        assert_eq!(Instr::decode(&bytes).unwrap(), i);
    }
}

/// The text assembler must reject or accept arbitrary input without
/// panicking (it is exposed to user-written files via the CLI).
#[test]
fn text_assembler_never_panics() {
    let mut rng = SplitMix64::new(0x0d15_a003);
    for _ in 0..256 {
        let len = rng.below(400) as usize;
        let source: String = (0..len)
            .map(|_| {
                // Printable-heavy byte soup with occasional newlines and
                // non-ASCII characters.
                match rng.below(20) {
                    0 => '\n',
                    1 => '\t',
                    2 => char::from_u32(0xa0 + rng.below(0x2000) as u32).unwrap_or('x'),
                    _ => (0x20 + rng.below(0x5f) as u8) as char,
                }
            })
            .collect();
        let _ = text::assemble("fuzz", &source);
    }
}

/// Structured-looking fuzz: lines of plausible tokens.
#[test]
fn tokenish_input_never_panics() {
    let mut rng = SplitMix64::new(0x0d15_a004);
    const MNEMONICS: [&str; 10] =
        ["movi", "ld", "st", "add", "jmp", "beq", "cas", ".word", ".byte", ".space"];
    const OPERAND_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789, -";
    for _ in 0..256 {
        let lines = rng.below(30) as usize;
        let source: String = (0..lines)
            .map(|_| match rng.below(4) {
                0 => ".data".to_string(),
                1 => ".text".to_string(),
                2 => {
                    let len = 1 + rng.below(8) as usize;
                    let mut s: String = (0..len)
                        .map(|_| (b'a' + rng.below(26) as u8) as char)
                        .collect();
                    s.push(':');
                    s
                }
                _ => {
                    let m = MNEMONICS[rng.below(MNEMONICS.len() as u64) as usize];
                    let len = rng.below(21) as usize;
                    let operands: String = (0..len)
                        .map(|_| OPERAND_CHARS[rng.below(OPERAND_CHARS.len() as u64) as usize] as char)
                        .collect();
                    format!("{m} {operands}")
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let _ = text::assemble("fuzz", &source);
    }
}

/// Regression: `.space` with a negative operand must be a parse error,
/// not a panic.
#[test]
fn negative_space_directive_is_rejected() {
    assert!(text::assemble("fuzz", ".space -01").is_err());
    assert!(text::assemble("fuzz", ".data\n.space -4").is_err());
}
