//! Property tests across the ISA toolchain: random instruction sequences
//! must survive encode→decode and disassemble→reassemble unchanged.

use proptest::prelude::*;
use qr_isa::instr::{AccessWidth, AluOp, BranchCond, Instr};
use qr_isa::program::{CODE_BASE, INSTR_BYTES};
use qr_isa::{disasm, text, Program, Reg};
use std::collections::BTreeMap;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|n| Reg::from_num(n).expect("in range"))
}

fn arb_width() -> impl Strategy<Value = AccessWidth> {
    prop_oneof![Just(AccessWidth::Byte), Just(AccessWidth::Half), Just(AccessWidth::Word)]
}

/// A random instruction whose control-flow targets stay inside a
/// `code_len`-instruction program (so reassembly is meaningful).
fn arb_instr(code_len: u32) -> impl Strategy<Value = Instr> {
    let target = (0..code_len).prop_map(|i| CODE_BASE + i * INSTR_BYTES);
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Fence),
        Just(Instr::Ret),
        Just(Instr::Syscall),
        Just(Instr::Pause),
        Just(Instr::Halt),
        (arb_reg(), any::<u32>()).prop_map(|(rd, imm)| Instr::Movi { rd, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Mov { rd, rs }),
        (0usize..AluOp::ALL.len(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op: AluOp::ALL[op], rd, rs1, rs2 }),
        (0usize..AluOp::ALL.len(), arb_reg(), arb_reg(), any::<u32>())
            .prop_map(|(op, rd, rs1, imm)| Instr::AluImm { op: AluOp::ALL[op], rd, rs1, imm }),
        (arb_reg(), arb_reg(), -1024i32..1024, arb_width())
            .prop_map(|(rd, base, offset, width)| Instr::Ld { rd, base, offset, width }),
        (arb_reg(), arb_reg(), -1024i32..1024, arb_width())
            .prop_map(|(src, base, offset, width)| Instr::St { src, base, offset, width }),
        (arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(rd, addr, src)| Instr::Cas { rd, addr, src }),
        (arb_reg(), arb_reg()).prop_map(|(rd, addr)| Instr::Xchg { rd, addr }),
        (arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(rd, addr, src)| Instr::FetchAdd { rd, addr, src }),
        target.clone().prop_map(|target| Instr::Jmp { target }),
        (arb_reg(),).prop_map(|(rs,)| Instr::Jr { rs }),
        (
            0usize..BranchCond::ALL.len(),
            arb_reg(),
            arb_reg(),
            target.clone()
        )
            .prop_map(|(c, rs1, rs2, target)| {
                let cond = BranchCond::ALL[c];
                // Eqz/Nez ignore rs2; the assemblers always emit R0 there,
                // so generate the canonical form.
                let rs2 = if matches!(cond, BranchCond::Eqz | BranchCond::Nez) {
                    Reg::R0
                } else {
                    rs2
                };
                Instr::Br { cond, rs1, rs2, target }
            }),
        target.prop_map(|target| Instr::Call { target }),
        (arb_reg(),).prop_map(|(rs,)| Instr::CallR { rs }),
        (arb_reg(),).prop_map(|(rs,)| Instr::Push { rs }),
        (arb_reg(),).prop_map(|(rd,)| Instr::Pop { rd }),
        (arb_reg(),).prop_map(|(rd,)| Instr::Rdtsc { rd }),
        (arb_reg(),).prop_map(|(rd,)| Instr::Rdrand { rd }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn disassemble_reassemble_preserves_programs(
        len in 1u32..80,
        seed_instrs in proptest::collection::vec(arb_instr(80), 1..80),
        data in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // Clamp to `len` instructions so every branch target is valid.
        let code: Vec<Instr> = seed_instrs.into_iter().take(len as usize).collect();
        prop_assume!(!code.is_empty());
        let program = Program::new("prop", code, data, CODE_BASE, BTreeMap::new()).unwrap();
        let source = disasm::disassemble(&program);
        let back = text::assemble("prop2", &source).unwrap_or_else(|e| {
            panic!("reassembly failed: {e}\n{source}")
        });
        prop_assert_eq!(back.code(), program.code());
        prop_assert_eq!(back.data(), program.data());
        prop_assert_eq!(back.entry(), program.entry());
    }

    #[test]
    fn binary_encoding_round_trips(instrs in proptest::collection::vec(arb_instr(1000), 1..100)) {
        for instr in &instrs {
            let bytes = instr.encode();
            prop_assert_eq!(Instr::decode(&bytes).unwrap(), *instr);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The text assembler must reject or accept arbitrary input without
    /// panicking (it is exposed to user-written files via the CLI).
    #[test]
    fn text_assembler_never_panics(source in "\\PC{0,400}") {
        let _ = text::assemble("fuzz", &source);
    }

    /// Structured-looking fuzz: lines of plausible tokens.
    #[test]
    fn tokenish_input_never_panics(
        lines in proptest::collection::vec(
            prop_oneof![
                Just(".data".to_string()),
                Just(".text".to_string()),
                "[a-z]{1,8}:".prop_map(|s| s),
                "(movi|ld|st|add|jmp|beq|cas|\\.word|\\.byte|\\.space|\\.align) [a-z0-9, -]{0,20}".prop_map(|s| s),
            ],
            0..30
        )
    ) {
        let source = lines.join("\n");
        let _ = text::assemble("fuzz", &source);
    }
}
