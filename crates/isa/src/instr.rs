//! PIA instructions and their fixed 8-byte binary encoding.
//!
//! Every instruction encodes as `[opcode, a, b, c, imm[0..4]]` where `a`,
//! `b`, `c` are register numbers or sub-opcodes and `imm` is a 32-bit
//! little-endian immediate. A fixed width keeps the fetch path of the
//! interpreter trivial; the recording hardware never looks inside
//! instruction encodings, only at retired-instruction counts and memory
//! traffic, so nothing in the reproduction depends on x86-style variable
//! length decoding.

use crate::reg::Reg;
use qr_common::{QrError, Result};

/// Width of a data memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessWidth {
    /// 1 byte, zero-extended on load.
    Byte,
    /// 2 bytes, zero-extended on load.
    Half,
    /// 4 bytes.
    Word,
}

impl AccessWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            AccessWidth::Byte => 1,
            AccessWidth::Half => 2,
            AccessWidth::Word => 4,
        }
    }

    fn code(self) -> u8 {
        match self {
            AccessWidth::Byte => 0,
            AccessWidth::Half => 1,
            AccessWidth::Word => 2,
        }
    }

    fn from_code(code: u8) -> Option<AccessWidth> {
        match code {
            0 => Some(AccessWidth::Byte),
            1 => Some(AccessWidth::Half),
            2 => Some(AccessWidth::Word),
            _ => None,
        }
    }
}

/// Register-register ALU operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Unsigned division; division by zero traps.
    Divu,
    /// Unsigned remainder; division by zero traps.
    Remu,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 5 bits).
    Shl,
    /// Logical shift right (shift amount masked to 5 bits).
    Shr,
    /// Arithmetic shift right (shift amount masked to 5 bits).
    Sar,
    /// Set `rd = 1` if `rs1 < rs2` signed, else 0.
    Slt,
    /// Set `rd = 1` if `rs1 < rs2` unsigned, else 0.
    Sltu,
    /// Set `rd = 1` if `rs1 == rs2`, else 0.
    Seq,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 14] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Divu,
        AluOp::Remu,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Seq,
    ];

    fn code(self) -> u8 {
        AluOp::ALL.iter().position(|&op| op == self).unwrap() as u8
    }

    fn from_code(code: u8) -> Option<AluOp> {
        AluOp::ALL.get(code as usize).copied()
    }

    /// Mnemonic used by the assembler and disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Divu => "divu",
            AluOp::Remu => "remu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Seq => "seq",
        }
    }
}

/// Branch condition selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `rs1 == rs2`.
    Eq,
    /// `rs1 != rs2`.
    Ne,
    /// `rs1 < rs2` signed.
    Lt,
    /// `rs1 < rs2` unsigned.
    Ltu,
    /// `rs1 >= rs2` signed.
    Ge,
    /// `rs1 >= rs2` unsigned.
    Geu,
    /// `rs1 == 0` (`rs2` ignored).
    Eqz,
    /// `rs1 != 0` (`rs2` ignored).
    Nez,
}

impl BranchCond {
    /// All branch conditions, in encoding order.
    pub const ALL: [BranchCond; 8] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ltu,
        BranchCond::Ge,
        BranchCond::Geu,
        BranchCond::Eqz,
        BranchCond::Nez,
    ];

    fn code(self) -> u8 {
        BranchCond::ALL.iter().position(|&c| c == self).unwrap() as u8
    }

    fn from_code(code: u8) -> Option<BranchCond> {
        BranchCond::ALL.get(code as usize).copied()
    }

    /// Evaluates the condition on two operand values.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Geu => a >= b,
            BranchCond::Eqz => a == 0,
            BranchCond::Nez => a != 0,
        }
    }

    /// Mnemonic used by the assembler and disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ltu => "bltu",
            BranchCond::Ge => "bge",
            BranchCond::Geu => "bgeu",
            BranchCond::Eqz => "beqz",
            BranchCond::Nez => "bnez",
        }
    }
}

/// Top-level opcode byte of the binary encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Opcode {
    Nop = 0,
    Movi = 1,
    Mov = 2,
    Alu = 3,
    AluImm = 4,
    Ld = 5,
    St = 6,
    Cas = 7,
    Xchg = 8,
    FetchAdd = 9,
    Fence = 10,
    Jmp = 11,
    Jr = 12,
    Br = 13,
    Call = 14,
    CallR = 15,
    Ret = 16,
    Push = 17,
    Pop = 18,
    Syscall = 19,
    Rdtsc = 20,
    Rdrand = 21,
    Pause = 22,
    Halt = 23,
}

impl Opcode {
    fn from_byte(b: u8) -> Option<Opcode> {
        const ALL: [Opcode; 24] = [
            Opcode::Nop,
            Opcode::Movi,
            Opcode::Mov,
            Opcode::Alu,
            Opcode::AluImm,
            Opcode::Ld,
            Opcode::St,
            Opcode::Cas,
            Opcode::Xchg,
            Opcode::FetchAdd,
            Opcode::Fence,
            Opcode::Jmp,
            Opcode::Jr,
            Opcode::Br,
            Opcode::Call,
            Opcode::CallR,
            Opcode::Ret,
            Opcode::Push,
            Opcode::Pop,
            Opcode::Syscall,
            Opcode::Rdtsc,
            Opcode::Rdrand,
            Opcode::Pause,
            Opcode::Halt,
        ];
        ALL.get(b as usize).copied()
    }
}

/// Byte width of one encoded instruction.
pub const ENCODED_BYTES: usize = 8;

/// A decoded PIA instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation.
    Nop,
    /// `rd = imm`.
    Movi {
        /// Destination register.
        rd: Reg,
        /// 32-bit immediate (bit pattern, may be interpreted signed).
        imm: u32,
    },
    /// `rd = rs`.
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd = rs1 <op> rs2`.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
    },
    /// `rd = rs1 <op> imm`.
    AluImm {
        /// Operation selector.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Immediate right operand (bit pattern).
        imm: u32,
    },
    /// `rd = mem[rs1 + offset]`, zero-extended for sub-word widths.
    Ld {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i32,
        /// Access width.
        width: AccessWidth,
    },
    /// `mem[rs1 + offset] = src` (low bytes for sub-word widths).
    St {
        /// Value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i32,
        /// Access width.
        width: AccessWidth,
    },
    /// Atomic compare-and-swap on the word at `[addr]`:
    /// if `mem == rd` then `mem = src`; `rd` receives the old value.
    /// Full memory barrier, like `lock cmpxchg`.
    Cas {
        /// Expected value in, old value out.
        rd: Reg,
        /// Address register (word-aligned address).
        addr: Reg,
        /// Replacement value.
        src: Reg,
    },
    /// Atomic exchange of `rd` with the word at `[addr]`. Full barrier,
    /// like IA `xchg` with a memory operand.
    Xchg {
        /// Value in, old memory value out.
        rd: Reg,
        /// Address register (word-aligned address).
        addr: Reg,
    },
    /// Atomic fetch-and-add: `rd = mem[addr]; mem[addr] += src`. Full
    /// barrier, like `lock xadd`.
    FetchAdd {
        /// Receives the pre-add memory value.
        rd: Reg,
        /// Address register (word-aligned address).
        addr: Reg,
        /// Addend.
        src: Reg,
    },
    /// Full memory fence: drains the store buffer.
    Fence,
    /// Unconditional jump to an absolute code address.
    Jmp {
        /// Absolute byte address of the target instruction.
        target: u32,
    },
    /// Indirect jump to the address in `rs`.
    Jr {
        /// Register holding the target address.
        rs: Reg,
    },
    /// Conditional branch to an absolute code address.
    Br {
        /// Condition to evaluate.
        cond: BranchCond,
        /// Left operand.
        rs1: Reg,
        /// Right operand (ignored by `Eqz`/`Nez`).
        rs2: Reg,
        /// Absolute byte address of the target instruction.
        target: u32,
    },
    /// Pushes the return address and jumps to `target`.
    Call {
        /// Absolute byte address of the callee.
        target: u32,
    },
    /// Pushes the return address and jumps to the address in `rs`.
    CallR {
        /// Register holding the callee address.
        rs: Reg,
    },
    /// Pops the return address and jumps to it.
    Ret,
    /// `sp -= 4; mem[sp] = rs`.
    Push {
        /// Register to push.
        rs: Reg,
    },
    /// `rd = mem[sp]; sp += 4`.
    Pop {
        /// Destination register.
        rd: Reg,
    },
    /// Traps to the kernel. Syscall number in `R0`, arguments in
    /// `R1..=R5`, result in `R0` (see [`crate::abi`]).
    Syscall,
    /// Reads the core's cycle counter — a nondeterministic input that the
    /// recording stack must log.
    Rdtsc {
        /// Destination register (low 32 bits of the counter).
        rd: Reg,
    },
    /// Reads a hardware random number — nondeterministic, logged.
    Rdrand {
        /// Destination register.
        rd: Reg,
    },
    /// Spin-wait hint; a scheduling hint only.
    Pause,
    /// Stops the executing thread (bare-metal programs; threads under the
    /// kernel normally use the `exit` syscall).
    Halt,
}

impl Instr {
    /// Top-level opcode of this instruction.
    pub fn opcode(&self) -> Opcode {
        match self {
            Instr::Nop => Opcode::Nop,
            Instr::Movi { .. } => Opcode::Movi,
            Instr::Mov { .. } => Opcode::Mov,
            Instr::Alu { .. } => Opcode::Alu,
            Instr::AluImm { .. } => Opcode::AluImm,
            Instr::Ld { .. } => Opcode::Ld,
            Instr::St { .. } => Opcode::St,
            Instr::Cas { .. } => Opcode::Cas,
            Instr::Xchg { .. } => Opcode::Xchg,
            Instr::FetchAdd { .. } => Opcode::FetchAdd,
            Instr::Fence => Opcode::Fence,
            Instr::Jmp { .. } => Opcode::Jmp,
            Instr::Jr { .. } => Opcode::Jr,
            Instr::Br { .. } => Opcode::Br,
            Instr::Call { .. } => Opcode::Call,
            Instr::CallR { .. } => Opcode::CallR,
            Instr::Ret => Opcode::Ret,
            Instr::Push { .. } => Opcode::Push,
            Instr::Pop { .. } => Opcode::Pop,
            Instr::Syscall => Opcode::Syscall,
            Instr::Rdtsc { .. } => Opcode::Rdtsc,
            Instr::Rdrand { .. } => Opcode::Rdrand,
            Instr::Pause => Opcode::Pause,
            Instr::Halt => Opcode::Halt,
        }
    }

    /// Whether this instruction may access data memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Ld { .. }
                | Instr::St { .. }
                | Instr::Cas { .. }
                | Instr::Xchg { .. }
                | Instr::FetchAdd { .. }
                | Instr::Push { .. }
                | Instr::Pop { .. }
                | Instr::Call { .. }
                | Instr::CallR { .. }
                | Instr::Ret
        )
    }

    /// Whether this is an atomic read-modify-write.
    pub fn is_atomic(&self) -> bool {
        matches!(self, Instr::Cas { .. } | Instr::Xchg { .. } | Instr::FetchAdd { .. })
    }

    /// Encodes into the fixed 8-byte format.
    pub fn encode(&self) -> [u8; ENCODED_BYTES] {
        let (op, a, b, c, imm) = match *self {
            Instr::Nop => (Opcode::Nop, 0, 0, 0, 0),
            Instr::Movi { rd, imm } => (Opcode::Movi, rd as u8, 0, 0, imm),
            Instr::Mov { rd, rs } => (Opcode::Mov, rd as u8, rs as u8, 0, 0),
            Instr::Alu { op, rd, rs1, rs2 } => {
                (Opcode::Alu, rd as u8, rs1 as u8, rs2 as u8, op.code() as u32)
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                (Opcode::AluImm, rd as u8, rs1 as u8, op.code(), imm)
            }
            Instr::Ld { rd, base, offset, width } => {
                (Opcode::Ld, rd as u8, base as u8, width.code(), offset as u32)
            }
            Instr::St { src, base, offset, width } => {
                (Opcode::St, src as u8, base as u8, width.code(), offset as u32)
            }
            Instr::Cas { rd, addr, src } => (Opcode::Cas, rd as u8, addr as u8, src as u8, 0),
            Instr::Xchg { rd, addr } => (Opcode::Xchg, rd as u8, addr as u8, 0, 0),
            Instr::FetchAdd { rd, addr, src } => {
                (Opcode::FetchAdd, rd as u8, addr as u8, src as u8, 0)
            }
            Instr::Fence => (Opcode::Fence, 0, 0, 0, 0),
            Instr::Jmp { target } => (Opcode::Jmp, 0, 0, 0, target),
            Instr::Jr { rs } => (Opcode::Jr, 0, rs as u8, 0, 0),
            Instr::Br { cond, rs1, rs2, target } => {
                (Opcode::Br, rs1 as u8, rs2 as u8, cond.code(), target)
            }
            Instr::Call { target } => (Opcode::Call, 0, 0, 0, target),
            Instr::CallR { rs } => (Opcode::CallR, 0, rs as u8, 0, 0),
            Instr::Ret => (Opcode::Ret, 0, 0, 0, 0),
            Instr::Push { rs } => (Opcode::Push, 0, rs as u8, 0, 0),
            Instr::Pop { rd } => (Opcode::Pop, rd as u8, 0, 0, 0),
            Instr::Syscall => (Opcode::Syscall, 0, 0, 0, 0),
            Instr::Rdtsc { rd } => (Opcode::Rdtsc, rd as u8, 0, 0, 0),
            Instr::Rdrand { rd } => (Opcode::Rdrand, rd as u8, 0, 0, 0),
            Instr::Pause => (Opcode::Pause, 0, 0, 0, 0),
            Instr::Halt => (Opcode::Halt, 0, 0, 0, 0),
        };
        let mut out = [0u8; ENCODED_BYTES];
        out[0] = op as u8;
        out[1] = a;
        out[2] = b;
        out[3] = c;
        out[4..8].copy_from_slice(&imm.to_le_bytes());
        out
    }

    /// Decodes from the fixed 8-byte format.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] for unknown opcodes or malformed
    /// sub-fields (invalid register numbers, widths, conditions).
    pub fn decode(bytes: &[u8; ENCODED_BYTES]) -> Result<Instr> {
        let op = Opcode::from_byte(bytes[0])
            .ok_or_else(|| exec_err(format!("unknown opcode byte {:#04x}", bytes[0])))?;
        let a = bytes[1];
        let b = bytes[2];
        let c = bytes[3];
        let imm = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let reg = |n: u8| Reg::from_num(n).ok_or_else(|| exec_err(format!("bad register {n}")));
        Ok(match op {
            Opcode::Nop => Instr::Nop,
            Opcode::Movi => Instr::Movi { rd: reg(a)?, imm },
            Opcode::Mov => Instr::Mov { rd: reg(a)?, rs: reg(b)? },
            Opcode::Alu => Instr::Alu {
                op: AluOp::from_code(imm as u8)
                    .ok_or_else(|| exec_err(format!("bad alu op {imm}")))?,
                rd: reg(a)?,
                rs1: reg(b)?,
                rs2: reg(c)?,
            },
            Opcode::AluImm => Instr::AluImm {
                op: AluOp::from_code(c).ok_or_else(|| exec_err(format!("bad alu op {c}")))?,
                rd: reg(a)?,
                rs1: reg(b)?,
                imm,
            },
            Opcode::Ld => Instr::Ld {
                rd: reg(a)?,
                base: reg(b)?,
                offset: imm as i32,
                width: AccessWidth::from_code(c)
                    .ok_or_else(|| exec_err(format!("bad width {c}")))?,
            },
            Opcode::St => Instr::St {
                src: reg(a)?,
                base: reg(b)?,
                offset: imm as i32,
                width: AccessWidth::from_code(c)
                    .ok_or_else(|| exec_err(format!("bad width {c}")))?,
            },
            Opcode::Cas => Instr::Cas { rd: reg(a)?, addr: reg(b)?, src: reg(c)? },
            Opcode::Xchg => Instr::Xchg { rd: reg(a)?, addr: reg(b)? },
            Opcode::FetchAdd => Instr::FetchAdd { rd: reg(a)?, addr: reg(b)?, src: reg(c)? },
            Opcode::Fence => Instr::Fence,
            Opcode::Jmp => Instr::Jmp { target: imm },
            Opcode::Jr => Instr::Jr { rs: reg(b)? },
            Opcode::Br => Instr::Br {
                cond: BranchCond::from_code(c)
                    .ok_or_else(|| exec_err(format!("bad branch cond {c}")))?,
                rs1: reg(a)?,
                rs2: reg(b)?,
                target: imm,
            },
            Opcode::Call => Instr::Call { target: imm },
            Opcode::CallR => Instr::CallR { rs: reg(b)? },
            Opcode::Ret => Instr::Ret,
            Opcode::Push => Instr::Push { rs: reg(b)? },
            Opcode::Pop => Instr::Pop { rd: reg(a)? },
            Opcode::Syscall => Instr::Syscall,
            Opcode::Rdtsc => Instr::Rdtsc { rd: reg(a)? },
            Opcode::Rdrand => Instr::Rdrand { rd: reg(a)? },
            Opcode::Pause => Instr::Pause,
            Opcode::Halt => Instr::Halt,
        })
    }
}

fn exec_err(detail: String) -> QrError {
    QrError::Execution { detail }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        let mut v = vec![
            Instr::Nop,
            Instr::Movi { rd: Reg::R3, imm: 0xdead_beef },
            Instr::Mov { rd: Reg::R1, rs: Reg::R2 },
            Instr::Fence,
            Instr::Jmp { target: 0x1040 },
            Instr::Jr { rs: Reg::R9 },
            Instr::Call { target: 0x2000 },
            Instr::CallR { rs: Reg::R4 },
            Instr::Ret,
            Instr::Push { rs: Reg::R7 },
            Instr::Pop { rd: Reg::R8 },
            Instr::Syscall,
            Instr::Rdtsc { rd: Reg::R0 },
            Instr::Rdrand { rd: Reg::R11 },
            Instr::Pause,
            Instr::Halt,
            Instr::Cas { rd: Reg::R1, addr: Reg::R2, src: Reg::R3 },
            Instr::Xchg { rd: Reg::R5, addr: Reg::R6 },
            Instr::FetchAdd { rd: Reg::R1, addr: Reg::R10, src: Reg::R12 },
        ];
        for op in AluOp::ALL {
            v.push(Instr::Alu { op, rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 });
            v.push(Instr::AluImm { op, rd: Reg::R4, rs1: Reg::R5, imm: 0x1234 });
        }
        for width in [AccessWidth::Byte, AccessWidth::Half, AccessWidth::Word] {
            v.push(Instr::Ld { rd: Reg::R1, base: Reg::R2, offset: -8, width });
            v.push(Instr::St { src: Reg::R3, base: Reg::R4, offset: 1024, width });
        }
        for cond in BranchCond::ALL {
            v.push(Instr::Br { cond, rs1: Reg::R1, rs2: Reg::R2, target: 0x1000 });
        }
        v
    }

    #[test]
    fn encode_decode_round_trips_every_form() {
        for instr in sample_instrs() {
            let bytes = instr.encode();
            let back = Instr::decode(&bytes).unwrap();
            assert_eq!(instr, back, "round trip failed for {instr:?}");
        }
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let bytes = [0xEEu8, 0, 0, 0, 0, 0, 0, 0];
        assert!(Instr::decode(&bytes).is_err());
    }

    #[test]
    fn bad_register_is_rejected() {
        let mut bytes = Instr::Mov { rd: Reg::R0, rs: Reg::R0 }.encode();
        bytes[1] = 200;
        assert!(Instr::decode(&bytes).is_err());
    }

    #[test]
    fn bad_width_is_rejected() {
        let mut bytes =
            Instr::Ld { rd: Reg::R0, base: Reg::R1, offset: 0, width: AccessWidth::Word }.encode();
        bytes[3] = 9;
        assert!(Instr::decode(&bytes).is_err());
    }

    #[test]
    fn bad_branch_cond_is_rejected() {
        let mut bytes = Instr::Br {
            cond: BranchCond::Eq,
            rs1: Reg::R0,
            rs2: Reg::R0,
            target: 0,
        }
        .encode();
        bytes[3] = 99;
        assert!(Instr::decode(&bytes).is_err());
    }

    #[test]
    fn negative_offsets_survive_encoding() {
        let i = Instr::Ld { rd: Reg::R1, base: Reg::R2, offset: -4, width: AccessWidth::Word };
        match Instr::decode(&i.encode()).unwrap() {
            Instr::Ld { offset, .. } => assert_eq!(offset, -4),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn branch_cond_semantics() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(!BranchCond::Eq.eval(5, 6));
        assert!(BranchCond::Lt.eval(-1i32 as u32, 0));
        assert!(!BranchCond::Ltu.eval(-1i32 as u32, 0));
        assert!(BranchCond::Ge.eval(0, -1i32 as u32));
        assert!(BranchCond::Geu.eval(u32::MAX, 0));
        assert!(BranchCond::Eqz.eval(0, 999));
        assert!(BranchCond::Nez.eval(1, 999));
    }

    #[test]
    fn classification_helpers() {
        assert!(Instr::Ld { rd: Reg::R0, base: Reg::R0, offset: 0, width: AccessWidth::Word }
            .is_memory());
        assert!(Instr::Ret.is_memory(), "ret pops the stack");
        assert!(!Instr::Nop.is_memory());
        assert!(Instr::Cas { rd: Reg::R0, addr: Reg::R1, src: Reg::R2 }.is_atomic());
        assert!(!Instr::Fence.is_atomic());
    }

    #[test]
    fn access_width_bytes() {
        assert_eq!(AccessWidth::Byte.bytes(), 1);
        assert_eq!(AccessWidth::Half.bytes(), 2);
        assert_eq!(AccessWidth::Word.bytes(), 4);
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use qr_common::SplitMix64;

    fn random_bytes(rng: &mut SplitMix64) -> [u8; ENCODED_BYTES] {
        rng.next_u64().to_le_bytes()
    }

    #[test]
    fn decode_never_panics() {
        let mut rng = SplitMix64::new(0x15a_0001);
        for _ in 0..65_536 {
            let _ = Instr::decode(&random_bytes(&mut rng));
        }
        // Also sweep every opcode byte with random operand fields, so no
        // opcode arm is missed by chance.
        for op in 0..=255u8 {
            for _ in 0..64 {
                let mut bytes = random_bytes(&mut rng);
                bytes[0] = op;
                let _ = Instr::decode(&bytes);
            }
        }
    }

    #[test]
    fn decoded_instructions_reencode_identically() {
        let mut rng = SplitMix64::new(0x15a_0002);
        for _ in 0..65_536 {
            let mut bytes = random_bytes(&mut rng);
            // Bias half the cases toward valid opcodes so the decode-ok
            // path is exercised heavily.
            if rng.chance(1, 2) {
                bytes[0] = rng.below(Opcode::Halt as u64 + 1) as u8;
            }
            if let Ok(instr) = Instr::decode(&bytes) {
                // Re-encoding a decoded instruction must produce bytes that
                // decode to the same instruction (the encoding is canonical
                // modulo don't-care fields).
                let re = instr.encode();
                assert_eq!(Instr::decode(&re).unwrap(), instr);
            }
        }
    }
}
