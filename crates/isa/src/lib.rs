#![warn(missing_docs)]

//! PIA — the *Prototype IA* instruction set used by QuickRec-RS.
//!
//! The QuickRec prototype (ISCA 2013) extended FPGA-emulated Pentium cores.
//! Re-implementing x86 decode adds nothing to the record/replay questions
//! the paper studies, so this reproduction defines a compact 32-bit
//! IA-*like* ISA with the properties the recording hardware actually cares
//! about:
//!
//! - loads/stores at byte and word granularity (conflicts are detected at
//!   cache-line granularity by the recorder),
//! - x86-style atomic read-modify-write instructions ([`Instr::Cas`],
//!   [`Instr::Xchg`], [`Instr::FetchAdd`]) with full-barrier semantics,
//! - a total-store-order memory model (stores buffer in `qr-mem`),
//! - nondeterministic reads ([`Instr::Rdtsc`], [`Instr::Rdrand`]) that the
//!   Capo3-style software stack must log, exactly like `rdtsc` on IA,
//! - a `syscall` instruction that traps to the simulated kernel.
//!
//! The crate provides the instruction type with a fixed 8-byte binary
//! encoding ([`instr`]), a programmatic assembler ([`asm::Asm`]), a textual
//! assembler ([`text::assemble`]), a disassembler ([`disasm`]) and the
//! guest syscall ABI ([`abi`]).
//!
//! # Example
//!
//! ```
//! use qr_isa::asm::Asm;
//! use qr_isa::reg::Reg;
//!
//! let mut asm = Asm::new();
//! asm.movi(Reg::R1, 5);
//! asm.label("loop");
//! asm.addi(Reg::R1, Reg::R1, -1);
//! asm.bnez(Reg::R1, "loop");
//! asm.halt();
//! let program = asm.finish().unwrap();
//! assert_eq!(program.code().len(), 4);
//! ```

pub mod abi;
pub mod asm;
pub mod disasm;
pub mod instr;
pub mod program;
pub mod reg;
pub mod text;

pub use asm::Asm;
pub use instr::{AccessWidth, Instr, Opcode};
pub use program::{Program, CODE_BASE, DATA_BASE, INSTR_BYTES};
pub use reg::Reg;
