//! Programmatic assembler for PIA programs.
//!
//! [`Asm`] is a builder that emits instructions, resolves labels (forward
//! references included), and lays out the data segment. The SPLASH-2-style
//! workloads in `qr-workloads` are written against this API.
//!
//! # Example
//!
//! ```
//! use qr_isa::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! let counter = a.data_word("counter", &[0]);
//! a.movi_sym(Reg::R2, "counter");
//! a.movi(Reg::R1, 10);
//! a.label("loop");
//! a.ld(Reg::R3, Reg::R2, 0);
//! a.addi(Reg::R3, Reg::R3, 1);
//! a.st(Reg::R2, 0, Reg::R3);
//! a.addi(Reg::R1, Reg::R1, -1);
//! a.bnez(Reg::R1, "loop");
//! a.halt();
//! let program = a.finish()?;
//! assert_eq!(program.symbol("counter").unwrap().0, counter);
//! # Ok::<(), qr_common::QrError>(())
//! ```

use crate::instr::{AccessWidth, AluOp, BranchCond, Instr};
use crate::program::{Program, CODE_BASE, DATA_BASE, INSTR_BYTES};
use crate::reg::Reg;
use qr_common::{QrError, Result};
use std::collections::BTreeMap;

/// Which field of a pending instruction a label fixup patches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FixupKind {
    /// `Jmp`/`Call`/`Br` target field.
    Target,
    /// `Movi` immediate (address of a code or data symbol).
    MoviImm,
}

#[derive(Debug, Clone)]
struct Fixup {
    instr_index: usize,
    label: String,
    kind: FixupKind,
}

/// Incremental assembler producing a [`Program`].
///
/// Code labels and data symbols share one namespace; `movi_sym` can
/// materialize either kind of address into a register.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    name: String,
    code: Vec<Instr>,
    data: Vec<u8>,
    symbols: BTreeMap<String, u32>,
    fixups: Vec<Fixup>,
    entry_label: Option<String>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Asm {
        Asm { name: "program".into(), ..Asm::default() }
    }

    /// Creates an empty assembler for a named program.
    pub fn with_name(name: impl Into<String>) -> Asm {
        Asm { name: name.into(), ..Asm::default() }
    }

    // ----- labels, symbols, layout ------------------------------------

    /// Defines a code label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined; duplicated labels are
    /// always a bug in the generator, not input data.
    pub fn label(&mut self, name: &str) -> &mut Asm {
        let addr = CODE_BASE + self.code.len() as u32 * INSTR_BYTES;
        self.define(name, addr);
        self
    }

    /// Marks a label as the program entry point (defaults to the first
    /// instruction).
    pub fn entry(&mut self, label: &str) -> &mut Asm {
        self.entry_label = Some(label.to_string());
        self
    }

    /// Address the next emitted instruction will have.
    pub fn here(&self) -> u32 {
        CODE_BASE + self.code.len() as u32 * INSTR_BYTES
    }

    /// Whether a symbol (label or data) is already defined.
    pub fn has_symbol(&self, name: &str) -> bool {
        self.symbols.contains_key(name)
    }

    fn define(&mut self, name: &str, addr: u32) {
        let prior = self.symbols.insert(name.to_string(), addr);
        assert!(prior.is_none(), "symbol `{name}` defined twice");
    }

    /// Reserves and zero-fills `words` 32-bit words in the data segment
    /// under `name`, 4-byte aligned. Returns the symbol's address.
    pub fn data_space(&mut self, name: &str, words: usize) -> u32 {
        self.align_data(4);
        let addr = DATA_BASE + self.data.len() as u32;
        self.define(name, addr);
        self.data.extend(std::iter::repeat_n(0u8, words * 4));
        addr
    }

    /// Emits initialized 32-bit words under `name`. Returns the address.
    pub fn data_word(&mut self, name: &str, values: &[u32]) -> u32 {
        self.align_data(4);
        let addr = DATA_BASE + self.data.len() as u32;
        self.define(name, addr);
        for v in values {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Emits initialized bytes under `name`. Returns the address.
    pub fn data_bytes(&mut self, name: &str, bytes: &[u8]) -> u32 {
        let addr = DATA_BASE + self.data.len() as u32;
        self.define(name, addr);
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Pads the data segment to an `align`-byte boundary (power of two).
    pub fn align_data(&mut self, align: u32) -> &mut Asm {
        debug_assert!(align.is_power_of_two());
        while !(DATA_BASE + self.data.len() as u32).is_multiple_of(align) {
            self.data.push(0);
        }
        self
    }

    /// Aligns the data segment to a cache-line boundary — used by the
    /// workloads to control (or deliberately provoke) false sharing.
    pub fn align_data_line(&mut self) -> &mut Asm {
        self.align_data(qr_common::CACHE_LINE_BYTES)
    }

    // ----- raw emission ------------------------------------------------

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Asm {
        self.code.push(instr);
        self
    }

    fn emit_fixup(&mut self, instr: Instr, label: &str, kind: FixupKind) -> &mut Asm {
        self.fixups.push(Fixup { instr_index: self.code.len(), label: label.to_string(), kind });
        self.code.push(instr);
        self
    }

    // ----- moves and ALU -----------------------------------------------

    /// `rd = imm` (signed immediate, stored as a bit pattern).
    pub fn movi(&mut self, rd: Reg, imm: i32) -> &mut Asm {
        self.emit(Instr::Movi { rd, imm: imm as u32 })
    }

    /// `rd = imm` (unsigned immediate).
    pub fn movi_u(&mut self, rd: Reg, imm: u32) -> &mut Asm {
        self.emit(Instr::Movi { rd, imm })
    }

    /// `rd = address of label` (code label or data symbol; may be a
    /// forward reference).
    pub fn movi_sym(&mut self, rd: Reg, label: &str) -> &mut Asm {
        self.emit_fixup(Instr::Movi { rd, imm: 0 }, label, FixupKind::MoviImm)
    }

    /// `rd = rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Asm {
        self.emit(Instr::Mov { rd, rs })
    }

    /// Emits a register-register ALU instruction.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.emit(Instr::Alu { op, rd, rs1, rs2 })
    }

    /// Emits a register-immediate ALU instruction.
    pub fn alu_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.emit(Instr::AluImm { op, rd, rs1, imm: imm as u32 })
    }

    // ----- memory --------------------------------------------------------

    /// `rd = word at [base + offset]`.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.emit(Instr::Ld { rd, base, offset, width: AccessWidth::Word })
    }

    /// `rd = zero-extended byte at [base + offset]`.
    pub fn ldb(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.emit(Instr::Ld { rd, base, offset, width: AccessWidth::Byte })
    }

    /// `rd = zero-extended halfword at [base + offset]`.
    pub fn ldh(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.emit(Instr::Ld { rd, base, offset, width: AccessWidth::Half })
    }

    /// `word at [base + offset] = src`.
    pub fn st(&mut self, base: Reg, offset: i32, src: Reg) -> &mut Asm {
        self.emit(Instr::St { src, base, offset, width: AccessWidth::Word })
    }

    /// `byte at [base + offset] = low byte of src`.
    pub fn stb(&mut self, base: Reg, offset: i32, src: Reg) -> &mut Asm {
        self.emit(Instr::St { src, base, offset, width: AccessWidth::Byte })
    }

    /// `halfword at [base + offset] = low half of src`.
    pub fn sth(&mut self, base: Reg, offset: i32, src: Reg) -> &mut Asm {
        self.emit(Instr::St { src, base, offset, width: AccessWidth::Half })
    }

    /// Atomic compare-and-swap (see [`Instr::Cas`]).
    pub fn cas(&mut self, rd: Reg, addr: Reg, src: Reg) -> &mut Asm {
        self.emit(Instr::Cas { rd, addr, src })
    }

    /// Atomic exchange (see [`Instr::Xchg`]).
    pub fn xchg(&mut self, rd: Reg, addr: Reg) -> &mut Asm {
        self.emit(Instr::Xchg { rd, addr })
    }

    /// Atomic fetch-and-add (see [`Instr::FetchAdd`]).
    pub fn fetch_add(&mut self, rd: Reg, addr: Reg, src: Reg) -> &mut Asm {
        self.emit(Instr::FetchAdd { rd, addr, src })
    }

    /// Full memory fence.
    pub fn fence(&mut self) -> &mut Asm {
        self.emit(Instr::Fence)
    }

    // ----- control flow ---------------------------------------------------

    /// Unconditional jump to a label.
    pub fn jmp(&mut self, label: &str) -> &mut Asm {
        self.emit_fixup(Instr::Jmp { target: 0 }, label, FixupKind::Target)
    }

    /// Indirect jump through a register.
    pub fn jr(&mut self, rs: Reg) -> &mut Asm {
        self.emit(Instr::Jr { rs })
    }

    /// Conditional branch to a label.
    pub fn br(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.emit_fixup(Instr::Br { cond, rs1, rs2, target: 0 }, label, FixupKind::Target)
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.br(BranchCond::Eq, rs1, rs2, label)
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.br(BranchCond::Ne, rs1, rs2, label)
    }

    /// `blt rs1, rs2, label` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.br(BranchCond::Lt, rs1, rs2, label)
    }

    /// `bltu rs1, rs2, label` (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.br(BranchCond::Ltu, rs1, rs2, label)
    }

    /// `bge rs1, rs2, label` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.br(BranchCond::Ge, rs1, rs2, label)
    }

    /// `bgeu rs1, rs2, label` (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.br(BranchCond::Geu, rs1, rs2, label)
    }

    /// `beqz rs, label`.
    pub fn beqz(&mut self, rs: Reg, label: &str) -> &mut Asm {
        self.br(BranchCond::Eqz, rs, Reg::R0, label)
    }

    /// `bnez rs, label`.
    pub fn bnez(&mut self, rs: Reg, label: &str) -> &mut Asm {
        self.br(BranchCond::Nez, rs, Reg::R0, label)
    }

    /// Calls a labelled function (pushes the return address).
    pub fn call(&mut self, label: &str) -> &mut Asm {
        self.emit_fixup(Instr::Call { target: 0 }, label, FixupKind::Target)
    }

    /// Calls through a register.
    pub fn call_r(&mut self, rs: Reg) -> &mut Asm {
        self.emit(Instr::CallR { rs })
    }

    /// Returns from a call.
    pub fn ret(&mut self) -> &mut Asm {
        self.emit(Instr::Ret)
    }

    /// Pushes a register.
    pub fn push(&mut self, rs: Reg) -> &mut Asm {
        self.emit(Instr::Push { rs })
    }

    /// Pops into a register.
    pub fn pop(&mut self, rd: Reg) -> &mut Asm {
        self.emit(Instr::Pop { rd })
    }

    // ----- system ----------------------------------------------------------

    /// Emits a syscall trap.
    pub fn syscall(&mut self) -> &mut Asm {
        self.emit(Instr::Syscall)
    }

    /// Reads the cycle counter.
    pub fn rdtsc(&mut self, rd: Reg) -> &mut Asm {
        self.emit(Instr::Rdtsc { rd })
    }

    /// Reads a hardware random number.
    pub fn rdrand(&mut self, rd: Reg) -> &mut Asm {
        self.emit(Instr::Rdrand { rd })
    }

    /// Spin-wait hint.
    pub fn pause(&mut self) -> &mut Asm {
        self.emit(Instr::Pause)
    }

    /// Stops the thread.
    pub fn halt(&mut self) -> &mut Asm {
        self.emit(Instr::Halt)
    }

    /// No operation.
    pub fn nop(&mut self) -> &mut Asm {
        self.emit(Instr::Nop)
    }

    // ----- convenience macros used heavily by workloads --------------------

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alu_imm(AluOp::Add, rd, rs1, imm)
    }

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }

    /// `rd = rs1 * rs2` (low 32 bits).
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Mul, rd, rs1, rs2)
    }

    /// `rd = rs1 * imm`.
    pub fn muli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alu_imm(AluOp::Mul, rd, rs1, imm)
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alu_imm(AluOp::And, rd, rs1, imm)
    }

    /// `rd = rs1 | imm`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alu_imm(AluOp::Or, rd, rs1, imm)
    }

    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Xor, rd, rs1, rs2)
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::And, rd, rs1, rs2)
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Or, rd, rs1, rs2)
    }

    /// `rd = rs1 << rs2` (register shift amount).
    pub fn shl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Shl, rd, rs1, rs2)
    }

    /// `rd = rs1 >> rs2` (logical, register shift amount).
    pub fn shr(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Shr, rd, rs1, rs2)
    }

    /// `rd = 1 if rs1 < rs2 (unsigned), else 0`.
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Sltu, rd, rs1, rs2)
    }

    /// `rd = 1 if rs1 == rs2, else 0`.
    pub fn seq(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Seq, rd, rs1, rs2)
    }

    /// `rd = rs1 << imm`.
    pub fn shli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alu_imm(AluOp::Shl, rd, rs1, imm)
    }

    /// `rd = rs1 >> imm` (logical).
    pub fn shri(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alu_imm(AluOp::Shr, rd, rs1, imm)
    }

    /// `rd = rs1 % rs2` (unsigned).
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Remu, rd, rs1, rs2)
    }

    /// `rd = rs1 / rs2` (unsigned).
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Divu, rd, rs1, rs2)
    }

    // ----- finish ----------------------------------------------------------

    /// Resolves all fixups and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Assemble`] for undefined labels and
    /// [`QrError::InvalidConfig`] if the layout is invalid (propagated
    /// from [`Program::new`]).
    pub fn finish(mut self) -> Result<Program> {
        for fixup in std::mem::take(&mut self.fixups) {
            let addr = *self
                .symbols
                .get(&fixup.label)
                .ok_or_else(|| QrError::Assemble(format!("undefined label `{}`", fixup.label)))?;
            let instr = &mut self.code[fixup.instr_index];
            match (fixup.kind, instr) {
                (FixupKind::Target, Instr::Jmp { target })
                | (FixupKind::Target, Instr::Call { target })
                | (FixupKind::Target, Instr::Br { target, .. }) => *target = addr,
                (FixupKind::MoviImm, Instr::Movi { imm, .. }) => *imm = addr,
                (kind, instr) => {
                    return Err(QrError::Assemble(format!(
                        "internal fixup mismatch: {kind:?} on {instr:?}"
                    )))
                }
            }
        }
        let entry = match &self.entry_label {
            Some(label) => *self
                .symbols
                .get(label)
                .ok_or_else(|| QrError::Assemble(format!("undefined entry label `{label}`")))?,
            None => CODE_BASE,
        };
        if self.code.is_empty() {
            return Err(QrError::Assemble("program has no instructions".into()));
        }
        Program::new(self.name.clone(), self.code, self.data, entry, self.symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        a.jmp("end"); // forward
        a.label("mid");
        a.movi(Reg::R1, 1);
        a.label("end");
        a.jmp("mid"); // backward
        a.halt();
        let p = a.finish().unwrap();
        match p.code()[0] {
            Instr::Jmp { target } => assert_eq!(target, CODE_BASE + 2 * INSTR_BYTES),
            other => panic!("{other:?}"),
        }
        match p.code()[2] {
            Instr::Jmp { target } => assert_eq!(target, CODE_BASE + INSTR_BYTES),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new();
        a.jmp("nowhere");
        a.halt();
        match a.finish() {
            Err(QrError::Assemble(msg)) => assert!(msg.contains("nowhere")),
            other => panic!("expected assemble error, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
    }

    #[test]
    fn data_symbols_are_aligned_and_addressable() {
        let mut a = Asm::new();
        a.data_bytes("msg", b"hi");
        let w = a.data_word("w", &[7]);
        assert_eq!(w % 4, 0, "words are 4-byte aligned");
        a.align_data_line();
        let arr = a.data_space("arr", 16);
        assert_eq!(arr % 64, 0, "line alignment holds");
        a.movi_sym(Reg::R1, "w");
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.symbol("w").unwrap().0, w);
        match p.code()[0] {
            Instr::Movi { imm, .. } => assert_eq!(imm, w),
            other => panic!("{other:?}"),
        }
        // Initialized word landed in the image.
        let off = (w - DATA_BASE) as usize;
        assert_eq!(&p.data()[off..off + 4], &7u32.to_le_bytes());
    }

    #[test]
    fn entry_label_sets_entry_point() {
        let mut a = Asm::new();
        a.nop();
        a.label("start");
        a.halt();
        a.entry("start");
        let p = a.finish().unwrap();
        assert_eq!(p.entry().0, CODE_BASE + INSTR_BYTES);
    }

    #[test]
    fn empty_program_is_rejected() {
        assert!(Asm::new().finish().is_err());
    }

    #[test]
    fn movi_sym_to_code_label_works() {
        let mut a = Asm::new();
        a.movi_sym(Reg::R1, "fun");
        a.halt();
        a.label("fun");
        a.ret();
        let p = a.finish().unwrap();
        match p.code()[0] {
            Instr::Movi { imm, .. } => assert_eq!(imm, CODE_BASE + 2 * INSTR_BYTES),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn here_tracks_emission() {
        let mut a = Asm::new();
        assert_eq!(a.here(), CODE_BASE);
        a.nop();
        assert_eq!(a.here(), CODE_BASE + INSTR_BYTES);
    }
}
