//! Textual assembler for PIA programs.
//!
//! A small, line-oriented assembly dialect mirroring the [`crate::asm::Asm`]
//! builder. Useful for tests, examples and hand-written snippets; the
//! disassembler ([`crate::disasm`]) emits this exact syntax.
//!
//! ```text
//! ; comments start with ';' or '#'
//! .entry main
//! .text
//! main:
//!     movi r1, 10
//!     movi r2, counter      ; data symbol -> address
//! loop:
//!     ld   r3, r2, 0
//!     addi r3, r3, 1
//!     st   r2, 0, r3
//!     addi r1, r1, -1
//!     bnez r1, loop
//!     halt
//! .data
//! counter: .word 0
//! buf:     .space 4          ; 4 zero words
//! msg:     .byte 0x68 0x69
//! .align 64
//! ```
//!
//! Branch/jump/call targets may be labels or absolute numeric addresses.
//!
//! # Example
//!
//! ```
//! let src = "
//!     movi r1, 3
//! spin:
//!     addi r1, r1, -1
//!     bnez r1, spin
//!     halt
//! ";
//! let program = qr_isa::text::assemble("demo", src)?;
//! assert_eq!(program.code().len(), 4);
//! # Ok::<(), qr_common::QrError>(())
//! ```

use crate::asm::Asm;
use crate::instr::{AluOp, BranchCond};
use crate::program::Program;
use crate::reg::Reg;
use qr_common::{QrError, Result};

/// Assembles textual source into a [`Program`].
///
/// # Errors
///
/// Returns [`QrError::Assemble`] with a line number for any syntax error,
/// unknown mnemonic, bad operand or undefined label.
pub fn assemble(name: &str, source: &str) -> Result<Program> {
    let mut ctx = Parser {
        asm: Asm::with_name(name),
        in_data: false,
        pending_data_label: None,
        anon_counter: 0,
    };
    for (lineno, raw) in source.lines().enumerate() {
        ctx.line(lineno + 1, raw)?;
    }
    ctx.asm.finish()
}

struct Parser {
    asm: Asm,
    in_data: bool,
    pending_data_label: Option<String>,
    anon_counter: usize,
}

impl Parser {
    fn line(&mut self, lineno: usize, raw: &str) -> Result<()> {
        let code = raw.split([';', '#']).next().unwrap_or("").trim();
        if code.is_empty() {
            return Ok(());
        }
        let err = |msg: String| QrError::Assemble(format!("line {lineno}: {msg}"));

        let mut rest = code;
        // Leading label definitions ("name:").
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let label = head.trim();
            if !is_ident(label) {
                break;
            }
            if self.asm.has_symbol(label) || self.pending_data_label.as_deref() == Some(label) {
                return Err(err(format!("label `{label}` defined twice")));
            }
            if self.in_data {
                self.pending_data_label = Some(label.to_string());
                // A data label with no directive yet defines at the current
                // position when the next directive arrives.
            } else {
                self.asm.label(label);
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            // A bare data label defines an address immediately.
            if let Some(label) = self.pending_data_label.take() {
                self.asm.data_bytes(&label, &[]);
            }
            return Ok(());
        }

        if let Some(directive) = rest.strip_prefix('.') {
            return self.directive(directive, &err);
        }

        if self.in_data {
            return Err(err(format!("instruction `{rest}` inside .data section")));
        }
        self.instruction(rest, &err)
    }

    fn directive(&mut self, text: &str, err: &dyn Fn(String) -> QrError) -> Result<()> {
        let mut parts = text.split_whitespace();
        let name = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        match name {
            "text" => {
                self.in_data = false;
                Ok(())
            }
            "data" => {
                self.in_data = true;
                Ok(())
            }
            "entry" => {
                let arg = args.first().ok_or_else(|| err(".entry needs an argument".into()))?;
                if let Ok(addr) = parse_num(arg) {
                    let label = numeric_entry_label(&mut self.asm, addr as u32);
                    self.asm.entry(&label);
                    Ok(())
                } else {
                    self.asm.entry(arg);
                    Ok(())
                }
            }
            "word" => {
                let label = self.take_data_label();
                let mut values = Vec::new();
                for a in &args {
                    values.push(parse_num(a).map_err(err)? as u32);
                }
                self.asm.data_word(&label, &values);
                Ok(())
            }
            "byte" => {
                let label = self.take_data_label();
                let mut values = Vec::new();
                for a in &args {
                    let v = parse_num(a).map_err(err)?;
                    if !(0..=255).contains(&v) {
                        return Err(err(format!("byte value {v} out of range")));
                    }
                    values.push(v as u8);
                }
                self.asm.data_bytes(&label, &values);
                Ok(())
            }
            "space" => {
                let label = self.take_data_label();
                let words = args
                    .first()
                    .ok_or_else(|| err(".space needs a word count".into()))
                    .and_then(|a| parse_num(a).map_err(err))?;
                let limit = crate::program::MAX_DATA_BYTES as i64 / 4;
                if !(0..=limit).contains(&words) {
                    return Err(err(format!(".space of {words} words is out of range")));
                }
                self.asm.data_space(&label, words as usize);
                Ok(())
            }
            "align" => {
                let n = args
                    .first()
                    .ok_or_else(|| err(".align needs an argument".into()))
                    .and_then(|a| parse_num(a).map_err(err))? as u32;
                if !n.is_power_of_two() || n > 4096 {
                    return Err(err(format!(
                        ".align {n} is not a power of two in 1..=4096"
                    )));
                }
                self.asm.align_data(n);
                Ok(())
            }
            other => Err(err(format!("unknown directive .{other}"))),
        }
    }

    fn take_data_label(&mut self) -> String {
        self.pending_data_label.take().unwrap_or_else(|| {
            // Anonymous data block; symbols must be unique.
            self.anon_counter += 1;
            format!("__anon_{}", self.anon_counter)
        })
    }

    fn instruction(&mut self, text: &str, err: &dyn Fn(String) -> QrError) -> Result<()> {
        let (mnemonic, ops_text) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> =
            ops_text.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        let mnemonic = mnemonic.to_ascii_lowercase();

        let reg = |i: usize| -> Result<Reg> {
            let t = ops.get(i).ok_or_else(|| err(format!("missing operand {i}")))?;
            Reg::parse(t).ok_or_else(|| err(format!("bad register `{t}`")))
        };
        let imm = |i: usize| -> Result<i64> {
            let t = ops.get(i).ok_or_else(|| err(format!("missing operand {i}")))?;
            parse_num(t).map_err(err)
        };

        // Register-register ALU mnemonics.
        if let Some(op) = alu_from_mnemonic(&mnemonic) {
            self.asm.alu(op, reg(0)?, reg(1)?, reg(2)?);
            return Ok(());
        }
        // Register-immediate: mnemonic ending in 'i'.
        if let Some(base) = mnemonic.strip_suffix('i') {
            if let Some(op) = alu_from_mnemonic(base) {
                self.asm.alu_imm(op, reg(0)?, reg(1)?, imm(2)? as i32);
                return Ok(());
            }
        }
        // Branches.
        if let Some(cond) = branch_from_mnemonic(&mnemonic) {
            let zero_form = matches!(cond, BranchCond::Eqz | BranchCond::Nez);
            let target_idx = if zero_form { 1 } else { 2 };
            let target = ops
                .get(target_idx)
                .ok_or_else(|| err("missing branch target".into()))?;
            let rs2 = if zero_form { Reg::R0 } else { reg(1)? };
            self.branch(cond, reg(0)?, rs2, target);
            return Ok(());
        }

        match mnemonic.as_str() {
            "nop" => {
                self.asm.nop();
            }
            "movi" => {
                let rd = reg(0)?;
                let t = ops.get(1).ok_or_else(|| err("movi needs a value".into()))?;
                match parse_num(t) {
                    Ok(v) => {
                        self.asm.movi_u(rd, v as u32);
                    }
                    Err(_) if is_ident(t) => {
                        self.asm.movi_sym(rd, t);
                    }
                    Err(m) => return Err(err(m)),
                }
            }
            "mov" => {
                self.asm.mov(reg(0)?, reg(1)?);
            }
            "ld" => {
                self.asm.ld(reg(0)?, reg(1)?, imm(2)? as i32);
            }
            "ldb" => {
                self.asm.ldb(reg(0)?, reg(1)?, imm(2)? as i32);
            }
            "ldh" => {
                self.asm.ldh(reg(0)?, reg(1)?, imm(2)? as i32);
            }
            "st" => {
                self.asm.st(reg(0)?, imm(1)? as i32, reg(2)?);
            }
            "stb" => {
                self.asm.stb(reg(0)?, imm(1)? as i32, reg(2)?);
            }
            "sth" => {
                self.asm.sth(reg(0)?, imm(1)? as i32, reg(2)?);
            }
            "cas" => {
                self.asm.cas(reg(0)?, reg(1)?, reg(2)?);
            }
            "xchg" => {
                self.asm.xchg(reg(0)?, reg(1)?);
            }
            "xadd" => {
                self.asm.fetch_add(reg(0)?, reg(1)?, reg(2)?);
            }
            "fence" => {
                self.asm.fence();
            }
            "jmp" => {
                let t = ops.first().ok_or_else(|| err("jmp needs a target".into()))?;
                self.jump(t);
            }
            "jr" => {
                self.asm.jr(reg(0)?);
            }
            "call" => {
                let t = ops.first().ok_or_else(|| err("call needs a target".into()))?;
                self.call(t);
            }
            "callr" => {
                self.asm.call_r(reg(0)?);
            }
            "ret" => {
                self.asm.ret();
            }
            "push" => {
                self.asm.push(reg(0)?);
            }
            "pop" => {
                self.asm.pop(reg(0)?);
            }
            "syscall" => {
                self.asm.syscall();
            }
            "rdtsc" => {
                self.asm.rdtsc(reg(0)?);
            }
            "rdrand" => {
                self.asm.rdrand(reg(0)?);
            }
            "pause" => {
                self.asm.pause();
            }
            "halt" => {
                self.asm.halt();
            }
            other => return Err(err(format!("unknown mnemonic `{other}`"))),
        }
        Ok(())
    }

    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: &str) {
        if let Ok(addr) = parse_num(target) {
            self.asm.emit(crate::instr::Instr::Br { cond, rs1, rs2, target: addr as u32 });
        } else {
            self.asm.br(cond, rs1, rs2, target);
        }
    }

    fn jump(&mut self, target: &str) {
        if let Ok(addr) = parse_num(target) {
            self.asm.emit(crate::instr::Instr::Jmp { target: addr as u32 });
        } else {
            self.asm.jmp(target);
        }
    }

    fn call(&mut self, target: &str) {
        if let Ok(addr) = parse_num(target) {
            self.asm.emit(crate::instr::Instr::Call { target: addr as u32 });
        } else {
            self.asm.call(target);
        }
    }
}

fn alu_from_mnemonic(m: &str) -> Option<AluOp> {
    AluOp::ALL.iter().copied().find(|op| op.mnemonic() == m)
}

fn branch_from_mnemonic(m: &str) -> Option<BranchCond> {
    BranchCond::ALL.iter().copied().find(|c| c.mnemonic() == m)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_num(text: &str) -> std::result::Result<i64, String> {
    let t = text.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let value = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).map_err(|_| format!("bad hex number `{text}`"))?
    } else if t.chars().all(|c| c.is_ascii_digit()) && !t.is_empty() {
        t.parse::<i64>().map_err(|_| format!("bad number `{text}`"))?
    } else {
        return Err(format!("not a number `{text}`"));
    };
    Ok(if neg { -value } else { value })
}

/// Supports `.entry <numeric>` by defining a synthetic label at the given
/// address. Requires the address to already be emitted or emitted later;
/// validated at `finish`.
fn numeric_entry_label(asm: &mut Asm, _addr: u32) -> String {
    // The builder only supports label entries; for the numeric form used
    // by disassembler output the entry is always CODE_BASE (the
    // disassembler emits .entry before .text, and reassembled programs
    // start at the same base). A synthetic label at the current position
    // is therefore correct for the supported round-trip.
    let label = format!("__entry_{}", asm.here());
    asm.label(&label);
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use crate::instr::Instr;
    use crate::program::CODE_BASE;

    #[test]
    fn assembles_loop_with_labels() {
        let src = "
            movi r1, 3
        spin:
            addi r1, r1, -1
            bnez r1, spin
            halt
        ";
        let p = assemble("t", src).unwrap();
        assert_eq!(p.code().len(), 4);
        match p.code()[2] {
            Instr::Br { target, .. } => assert_eq!(target, CODE_BASE + 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn data_directives_define_symbols() {
        let src = "
            .data
            counter: .word 41
            msg: .byte 0x68 0x69
            buf: .space 2
            .text
            movi r1, counter
            ld r2, r1, 0
            addi r2, r2, 1
            st r1, 0, r2
            halt
        ";
        let p = assemble("t", src).unwrap();
        let counter = p.symbol("counter").unwrap();
        let off = (counter.0 - crate::program::DATA_BASE) as usize;
        assert_eq!(&p.data()[off..off + 4], &41u32.to_le_bytes());
        assert!(p.symbol("msg").is_some());
        assert!(p.symbol("buf").is_some());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "
            ; full comment
            # another comment

            halt ; trailing
        ";
        let p = assemble("t", src).unwrap();
        assert_eq!(p.code().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "\nmovi r1, 1\nfrobnicate r2\n";
        match assemble("t", src) {
            Err(QrError::Assemble(msg)) => {
                assert!(msg.contains("line 3"), "got: {msg}");
                assert!(msg.contains("frobnicate"));
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn bad_register_is_reported() {
        match assemble("t", "mov r99, r1\nhalt") {
            Err(QrError::Assemble(msg)) => assert!(msg.contains("r99")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn instructions_in_data_section_are_rejected() {
        let src = ".data\nmovi r1, 1\n";
        assert!(assemble("t", src).is_err());
    }

    #[test]
    fn numeric_branch_targets_are_accepted() {
        let src = "nop\njmp 0x1000\nhalt";
        let p = assemble("t", src).unwrap();
        match p.code()[1] {
            Instr::Jmp { target } => assert_eq!(target, 0x1000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn entry_directive_with_label() {
        let src = "
            .entry main
            nop
        main:
            halt
        ";
        let p = assemble("t", src).unwrap();
        assert_eq!(p.entry().0, CODE_BASE + 8);
    }

    #[test]
    fn disassemble_reassemble_round_trips_code() {
        let src = "
            movi r1, 10
            movi r2, buf
        loop:
            ld r3, r2, 0
            addi r3, r3, 1
            st r2, 0, r3
            xadd r4, r2, r3
            cas r5, r2, r3
            addi r1, r1, -1
            bnez r1, loop
            fence
            halt
            .data
            buf: .word 0
        ";
        let p1 = assemble("t", src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble("t2", &text).unwrap();
        assert_eq!(p1.code(), p2.code(), "code must round-trip");
        assert_eq!(p1.data(), p2.data(), "data must round-trip");
        assert_eq!(p1.entry(), p2.entry(), "entry must round-trip");
    }

    #[test]
    fn all_alu_imm_mnemonics_parse() {
        for op in AluOp::ALL {
            let src = format!("{}i r1, r2, 3\nhalt", op.mnemonic());
            let p = assemble("t", &src).unwrap();
            match p.code()[0] {
                Instr::AluImm { op: got, .. } => assert_eq!(got, op),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn all_branch_mnemonics_parse() {
        for cond in BranchCond::ALL {
            let zero_form = matches!(cond, BranchCond::Eqz | BranchCond::Nez);
            let src = if zero_form {
                format!("x:\n{} r1, x\nhalt", cond.mnemonic())
            } else {
                format!("x:\n{} r1, r2, x\nhalt", cond.mnemonic())
            };
            let p = assemble("t", &src).unwrap();
            match p.code()[0] {
                Instr::Br { cond: got, .. } => assert_eq!(got, cond),
                other => panic!("{other:?}"),
            }
        }
    }
}

#[cfg(test)]
mod duplicate_label_tests {
    use super::*;

    #[test]
    fn duplicate_labels_are_an_error_not_a_panic() {
        match assemble("t", "a:\nnop\na:\nhalt") {
            Err(QrError::Assemble(msg)) => assert!(msg.contains("defined twice")),
            other => panic!("{other:?}"),
        }
        match assemble("t", ".data\nx: .word 1\nx: .word 2") {
            Err(QrError::Assemble(msg)) => assert!(msg.contains("defined twice")),
            other => panic!("{other:?}"),
        }
        // A code label clashing with a data label is also caught.
        match assemble("t", "x:\nnop\n.data\nx: .word 1") {
            Err(QrError::Assemble(msg)) => assert!(msg.contains("defined twice")),
            other => panic!("{other:?}"),
        }
    }
}
