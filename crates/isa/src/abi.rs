//! Guest syscall ABI shared by the kernel (`qr-os`) and the workloads.
//!
//! Calling convention: the syscall number goes in `R0`, arguments in
//! `R1..=R5`, and the result comes back in `R0`. Nondeterministic results
//! (`time`, `read`, `rand`) are what the Capo3-style input log captures
//! during recording and injects during replay.

/// Terminates the calling thread. `R1` = exit code.
pub const SYS_EXIT: u32 = 1;

/// Writes `R2` bytes from guest address `R1` to the console.
/// Returns the number of bytes written.
pub const SYS_WRITE: u32 = 2;

/// Spawns a new thread. `R1` = entry address, `R2` = argument delivered in
/// the new thread's `R1`. Returns the new thread id.
pub const SYS_SPAWN: u32 = 3;

/// Blocks until thread `R1` exits. Returns its exit code.
pub const SYS_JOIN: u32 = 4;

/// Futex wait: blocks while the word at address `R1` equals `R2`.
/// Returns 0 when woken, 1 when the value already differed.
pub const SYS_FUTEX_WAIT: u32 = 5;

/// Futex wake: wakes up to `R2` threads waiting on address `R1`.
/// Returns the number of threads woken.
pub const SYS_FUTEX_WAKE: u32 = 6;

/// Yields the processor.
pub const SYS_YIELD: u32 = 7;

/// Returns the low 32 bits of the global cycle counter. Nondeterministic:
/// logged during recording.
pub const SYS_TIME: u32 = 8;

/// Grows the heap by `R1` bytes. Returns the previous program break.
pub const SYS_SBRK: u32 = 9;

/// Returns the calling thread's id.
pub const SYS_GETTID: u32 = 10;

/// Reads up to `R2` bytes from the synthetic input device into guest
/// address `R1`. Returns the number of bytes read. The payload is
/// nondeterministic and is captured by the input log (the analog of
/// Capo3's copy_to_user logging).
pub const SYS_READ: u32 = 11;

/// Returns the number of cores in the machine.
pub const SYS_NCORES: u32 = 12;

/// Returns a hardware random number. Nondeterministic: logged.
pub const SYS_RAND: u32 = 13;

/// Installs `R1` as the handler address for the user signal (`SIGUSR`).
/// Returns the previous handler (0 if none).
pub const SYS_SIGACTION: u32 = 14;

/// Sends `SIGUSR` to thread `R1`. Returns 0 on success, `u32::MAX` if the
/// target does not exist or already exited.
pub const SYS_KILL: u32 = 15;

/// Returns from a signal handler to the interrupted context.
pub const SYS_SIGRETURN: u32 = 16;

/// Highest syscall number in use (for table sizing and validation).
pub const SYS_MAX: u32 = SYS_SIGRETURN;

/// Human-readable name of a syscall number, for traces and logs.
pub fn syscall_name(number: u32) -> &'static str {
    match number {
        SYS_EXIT => "exit",
        SYS_WRITE => "write",
        SYS_SPAWN => "spawn",
        SYS_JOIN => "join",
        SYS_FUTEX_WAIT => "futex_wait",
        SYS_FUTEX_WAKE => "futex_wake",
        SYS_YIELD => "yield",
        SYS_TIME => "time",
        SYS_SBRK => "sbrk",
        SYS_GETTID => "gettid",
        SYS_READ => "read",
        SYS_NCORES => "ncores",
        SYS_RAND => "rand",
        SYS_SIGACTION => "sigaction",
        SYS_KILL => "kill",
        SYS_SIGRETURN => "sigreturn",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_are_unique() {
        let all = [
            SYS_EXIT,
            SYS_WRITE,
            SYS_SPAWN,
            SYS_JOIN,
            SYS_FUTEX_WAIT,
            SYS_FUTEX_WAKE,
            SYS_YIELD,
            SYS_TIME,
            SYS_SBRK,
            SYS_GETTID,
            SYS_READ,
            SYS_NCORES,
            SYS_RAND,
            SYS_SIGACTION,
            SYS_KILL,
            SYS_SIGRETURN,
        ];
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
        assert_eq!(*sorted.last().unwrap(), SYS_MAX);
    }

    #[test]
    fn names_are_defined_for_all_numbers() {
        for n in 1..=SYS_MAX {
            assert_ne!(syscall_name(n), "unknown", "syscall {n} should be named");
        }
        assert_eq!(syscall_name(0), "unknown");
        assert_eq!(syscall_name(SYS_MAX + 1), "unknown");
    }
}
