//! Disassembler for PIA instructions.
//!
//! The output syntax is exactly what [`crate::text::assemble`] accepts, so
//! `disassemble` → `assemble` round-trips (branch targets are printed as
//! absolute hex addresses, which the text assembler accepts in place of
//! labels).

use crate::instr::{AccessWidth, Instr};
use crate::program::Program;
use std::fmt::Write as _;

/// Renders one instruction in textual-assembler syntax.
pub fn instr_to_string(instr: &Instr) -> String {
    match *instr {
        Instr::Nop => "nop".to_string(),
        Instr::Movi { rd, imm } => format!("movi {rd}, {}", imm as i32),
        Instr::Mov { rd, rs } => format!("mov {rd}, {rs}"),
        Instr::Alu { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", op.mnemonic()),
        Instr::AluImm { op, rd, rs1, imm } => {
            format!("{}i {rd}, {rs1}, {}", op.mnemonic(), imm as i32)
        }
        Instr::Ld { rd, base, offset, width } => {
            format!("ld{} {rd}, {base}, {offset}", width_suffix(width))
        }
        Instr::St { src, base, offset, width } => {
            format!("st{} {base}, {offset}, {src}", width_suffix(width))
        }
        Instr::Cas { rd, addr, src } => format!("cas {rd}, {addr}, {src}"),
        Instr::Xchg { rd, addr } => format!("xchg {rd}, {addr}"),
        Instr::FetchAdd { rd, addr, src } => format!("xadd {rd}, {addr}, {src}"),
        Instr::Fence => "fence".to_string(),
        Instr::Jmp { target } => format!("jmp {target:#x}"),
        Instr::Jr { rs } => format!("jr {rs}"),
        Instr::Br { cond, rs1, rs2, target } => {
            use crate::instr::BranchCond;
            match cond {
                BranchCond::Eqz | BranchCond::Nez => {
                    format!("{} {rs1}, {target:#x}", cond.mnemonic())
                }
                _ => format!("{} {rs1}, {rs2}, {target:#x}", cond.mnemonic()),
            }
        }
        Instr::Call { target } => format!("call {target:#x}"),
        Instr::CallR { rs } => format!("callr {rs}"),
        Instr::Ret => "ret".to_string(),
        Instr::Push { rs } => format!("push {rs}"),
        Instr::Pop { rd } => format!("pop {rd}"),
        Instr::Syscall => "syscall".to_string(),
        Instr::Rdtsc { rd } => format!("rdtsc {rd}"),
        Instr::Rdrand { rd } => format!("rdrand {rd}"),
        Instr::Pause => "pause".to_string(),
        Instr::Halt => "halt".to_string(),
    }
}

fn width_suffix(width: AccessWidth) -> &'static str {
    match width {
        AccessWidth::Byte => "b",
        AccessWidth::Half => "h",
        AccessWidth::Word => "",
    }
}

/// Disassembles a whole program into textual-assembler source, including
/// the data segment and entry directive, such that reassembling yields an
/// equivalent program.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; program: {}", program.name());
    let _ = writeln!(out, ".entry {:#x}", program.entry().0);
    let _ = writeln!(out, ".text");
    for (i, instr) in program.code().iter().enumerate() {
        let addr = program.addr_of(i);
        let _ = writeln!(out, "  {:<40} ; {addr}", instr_to_string(instr));
    }
    if !program.data().is_empty() {
        let _ = writeln!(out, ".data");
        for chunk in program.data().chunks(16) {
            let bytes: Vec<String> = chunk.iter().map(|b| format!("{b:#04x}")).collect();
            let _ = writeln!(out, "  .byte {}", bytes.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::Reg;

    #[test]
    fn representative_forms_render() {
        use crate::instr::{AluOp, BranchCond};
        let cases = [
            (Instr::Nop, "nop"),
            (Instr::Movi { rd: Reg::R1, imm: -3i32 as u32 }, "movi r1, -3"),
            (Instr::Alu { op: AluOp::Add, rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 }, "add r1, r2, r3"),
            (
                Instr::AluImm { op: AluOp::Shl, rd: Reg::R1, rs1: Reg::R1, imm: 4 },
                "shli r1, r1, 4",
            ),
            (
                Instr::Ld { rd: Reg::R2, base: Reg::R15, offset: -8, width: AccessWidth::Word },
                "ld r2, sp, -8",
            ),
            (
                Instr::St { src: Reg::R3, base: Reg::R4, offset: 0, width: AccessWidth::Byte },
                "stb r4, 0, r3",
            ),
            (
                Instr::Br { cond: BranchCond::Eqz, rs1: Reg::R5, rs2: Reg::R0, target: 0x1010 },
                "beqz r5, 0x1010",
            ),
            (Instr::Jmp { target: 0x1000 }, "jmp 0x1000"),
            (Instr::FetchAdd { rd: Reg::R1, addr: Reg::R2, src: Reg::R3 }, "xadd r1, r2, r3"),
        ];
        for (instr, expected) in cases {
            assert_eq!(instr_to_string(&instr), expected);
        }
    }

    #[test]
    fn disassemble_contains_all_sections() {
        let mut a = Asm::new();
        a.data_word("x", &[1]);
        a.movi(Reg::R1, 5);
        a.halt();
        let p = a.finish().unwrap();
        let text = disassemble(&p);
        assert!(text.contains(".entry"));
        assert!(text.contains(".text"));
        assert!(text.contains(".data"));
        assert!(text.contains("movi r1, 5"));
        assert!(text.contains(".byte"));
    }
}
