//! General-purpose registers of the PIA ISA.

use std::fmt;

/// One of the sixteen 32-bit general-purpose registers.
///
/// All registers are freely writable. By software convention [`Reg::SP`]
/// (an alias of `R15`) holds the stack pointer — `push`, `pop`, `call` and
/// `ret` use it implicitly — and the kernel ABI passes the syscall number
/// in `R0` and arguments in `R1..=R5` (see [`crate::abi`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// Register 0 — syscall number / return value by ABI convention.
    R0 = 0,
    /// Register 1 — first syscall/function argument by convention.
    R1 = 1,
    /// Register 2.
    R2 = 2,
    /// Register 3.
    R3 = 3,
    /// Register 4.
    R4 = 4,
    /// Register 5.
    R5 = 5,
    /// Register 6.
    R6 = 6,
    /// Register 7.
    R7 = 7,
    /// Register 8.
    R8 = 8,
    /// Register 9.
    R9 = 9,
    /// Register 10.
    R10 = 10,
    /// Register 11.
    R11 = 11,
    /// Register 12.
    R12 = 12,
    /// Register 13.
    R13 = 13,
    /// Register 14 — frame pointer by convention.
    R14 = 14,
    /// Register 15 — the stack pointer.
    R15 = 15,
}

impl Reg {
    /// Stack-pointer alias for `R15`.
    pub const SP: Reg = Reg::R15;
    /// Frame-pointer alias for `R14`.
    pub const FP: Reg = Reg::R14;

    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Index usable for register-file arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Register with the given hardware number.
    ///
    /// Returns `None` for numbers 16 and above.
    pub fn from_num(n: u8) -> Option<Reg> {
        Reg::ALL.get(n as usize).copied()
    }

    /// Parses `"r4"`, `"R4"`, `"sp"` or `"fp"`.
    pub fn parse(text: &str) -> Option<Reg> {
        let lower = text.to_ascii_lowercase();
        match lower.as_str() {
            "sp" => return Some(Reg::SP),
            "fp" => return Some(Reg::FP),
            _ => {}
        }
        let num = lower.strip_prefix('r')?.parse::<u8>().ok()?;
        Reg::from_num(num)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::R15 => write!(f, "sp"),
            other => write!(f, "r{}", *other as u8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_num_covers_exactly_sixteen() {
        for n in 0..16 {
            assert_eq!(Reg::from_num(n).unwrap() as u8, n);
        }
        assert_eq!(Reg::from_num(16), None);
        assert_eq!(Reg::from_num(255), None);
    }

    #[test]
    fn parse_accepts_aliases_and_case() {
        assert_eq!(Reg::parse("sp"), Some(Reg::R15));
        assert_eq!(Reg::parse("SP"), Some(Reg::R15));
        assert_eq!(Reg::parse("fp"), Some(Reg::R14));
        assert_eq!(Reg::parse("r0"), Some(Reg::R0));
        assert_eq!(Reg::parse("R13"), Some(Reg::R13));
        assert_eq!(Reg::parse("r16"), None);
        assert_eq!(Reg::parse("x1"), None);
        assert_eq!(Reg::parse(""), None);
    }

    #[test]
    fn display_round_trips_through_parse() {
        for r in Reg::ALL {
            assert_eq!(Reg::parse(&r.to_string()), Some(r));
        }
    }

    #[test]
    fn sp_is_r15() {
        assert_eq!(Reg::SP, Reg::R15);
        assert_eq!(Reg::SP.to_string(), "sp");
    }
}
