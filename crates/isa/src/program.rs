//! Executable program images.
//!
//! A [`Program`] is the unit loaded into a simulated machine: a code
//! segment of PIA instructions, an initial data image, an entry point and
//! a symbol table. The memory layout is fixed and simple:
//!
//! | Region | Base | Contents |
//! |---|---|---|
//! | code  | [`CODE_BASE`]  | instructions, [`INSTR_BYTES`] each |
//! | data  | [`DATA_BASE`]  | the program's initial data image |
//! | heap  | end of data    | grows upward via the `sbrk` syscall |
//! | stacks| below [`STACK_TOP`] | one per thread, allocated by the kernel |

use crate::instr::{Instr, ENCODED_BYTES};
use qr_common::{Fingerprint, QrError, Result, VirtAddr};
use std::collections::BTreeMap;

/// Base virtual address of the code segment.
pub const CODE_BASE: u32 = 0x0000_1000;

/// Base virtual address of the data segment.
pub const DATA_BASE: u32 = 0x0010_0000;

/// Top of the stack region; thread stacks are carved downward from here.
pub const STACK_TOP: u32 = 0xf000_0000;

/// Maximum data-segment size (64 MiB) — keeps the image far below the
/// stack region and bounds assembler allocations on hostile input.
pub const MAX_DATA_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes occupied by one instruction ([`ENCODED_BYTES`] re-exported for
/// layout arithmetic).
pub const INSTR_BYTES: u32 = ENCODED_BYTES as u32;

/// An assembled, loadable program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    code: Vec<Instr>,
    data: Vec<u8>,
    entry: u32,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Creates a program from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] if the entry point does not fall
    /// on an instruction boundary inside the code segment, or if the code
    /// segment would overlap the data segment.
    pub fn new(
        name: impl Into<String>,
        code: Vec<Instr>,
        data: Vec<u8>,
        entry: u32,
        symbols: BTreeMap<String, u32>,
    ) -> Result<Program> {
        let code_end = CODE_BASE + code.len() as u32 * INSTR_BYTES;
        if code_end > DATA_BASE {
            return Err(QrError::InvalidConfig(format!(
                "code segment ends at {code_end:#x}, past the data base {DATA_BASE:#x}"
            )));
        }
        if data.len() as u64 > MAX_DATA_BYTES as u64 {
            return Err(QrError::InvalidConfig(format!(
                "data segment of {} bytes exceeds the {MAX_DATA_BYTES}-byte limit",
                data.len()
            )));
        }
        if entry < CODE_BASE || entry >= code_end || !(entry - CODE_BASE).is_multiple_of(INSTR_BYTES) {
            return Err(QrError::InvalidConfig(format!(
                "entry point {entry:#x} is not an instruction address in [{CODE_BASE:#x}, {code_end:#x})"
            )));
        }
        Ok(Program { name: name.into(), code, data, entry, symbols })
    }

    /// Human-readable program name (used in logs and experiment output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The code segment.
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// The initial data image, loaded at [`DATA_BASE`].
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Entry-point address.
    pub fn entry(&self) -> VirtAddr {
        VirtAddr(self.entry)
    }

    /// First address past the data image — the initial program break.
    pub fn initial_brk(&self) -> VirtAddr {
        VirtAddr(DATA_BASE + self.data.len() as u32)
    }

    /// The symbol table (labels and data symbols, by address).
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Address of a named symbol.
    pub fn symbol(&self, name: &str) -> Option<VirtAddr> {
        self.symbols.get(name).map(|&a| VirtAddr(a))
    }

    /// The instruction at a code address, if it is one.
    pub fn instr_at(&self, pc: VirtAddr) -> Option<Instr> {
        let off = pc.0.checked_sub(CODE_BASE)?;
        if off % INSTR_BYTES != 0 {
            return None;
        }
        self.code.get((off / INSTR_BYTES) as usize).copied()
    }

    /// Address of the instruction with the given index.
    pub fn addr_of(&self, index: usize) -> VirtAddr {
        VirtAddr(CODE_BASE + index as u32 * INSTR_BYTES)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Stable digest of the program image (code + data + entry), used to
    /// pair recorded logs with the binary they came from.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        let mut code_bytes = Vec::with_capacity(self.code.len() * ENCODED_BYTES);
        for instr in &self.code {
            code_bytes.extend_from_slice(&instr.encode());
        }
        fp.field("code", &code_bytes);
        fp.field("data", &self.data);
        fp.u32(self.entry);
        fp.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn tiny() -> Program {
        Program::new(
            "tiny",
            vec![Instr::Movi { rd: Reg::R0, imm: 1 }, Instr::Halt],
            vec![1, 2, 3],
            CODE_BASE,
            BTreeMap::new(),
        )
        .unwrap()
    }

    #[test]
    fn instr_at_maps_addresses() {
        let p = tiny();
        assert_eq!(p.instr_at(VirtAddr(CODE_BASE)), Some(Instr::Movi { rd: Reg::R0, imm: 1 }));
        assert_eq!(p.instr_at(VirtAddr(CODE_BASE + INSTR_BYTES)), Some(Instr::Halt));
        assert_eq!(p.instr_at(VirtAddr(CODE_BASE + 2 * INSTR_BYTES)), None);
        assert_eq!(p.instr_at(VirtAddr(CODE_BASE + 1)), None, "misaligned");
        assert_eq!(p.instr_at(VirtAddr(0)), None, "below code base");
    }

    #[test]
    fn entry_must_be_in_code() {
        let code = vec![Instr::Halt];
        assert!(Program::new("x", code.clone(), vec![], 0, BTreeMap::new()).is_err());
        assert!(Program::new("x", code.clone(), vec![], CODE_BASE + 3, BTreeMap::new()).is_err());
        assert!(
            Program::new("x", code.clone(), vec![], CODE_BASE + INSTR_BYTES, BTreeMap::new())
                .is_err(),
            "entry one past the end"
        );
        assert!(Program::new("x", code, vec![], CODE_BASE, BTreeMap::new()).is_ok());
    }

    #[test]
    fn oversized_code_is_rejected() {
        let n = ((DATA_BASE - CODE_BASE) / INSTR_BYTES + 1) as usize;
        let code = vec![Instr::Nop; n];
        assert!(Program::new("big", code, vec![], CODE_BASE, BTreeMap::new()).is_err());
    }

    #[test]
    fn initial_brk_follows_data() {
        let p = tiny();
        assert_eq!(p.initial_brk(), VirtAddr(DATA_BASE + 3));
    }

    #[test]
    fn fingerprint_changes_with_content() {
        let a = tiny();
        let b = Program::new(
            "tiny",
            vec![Instr::Movi { rd: Reg::R0, imm: 2 }, Instr::Halt],
            vec![1, 2, 3],
            CODE_BASE,
            BTreeMap::new(),
        )
        .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = Program::new(
            "tiny",
            vec![Instr::Movi { rd: Reg::R0, imm: 1 }, Instr::Halt],
            vec![1, 2, 4],
            CODE_BASE,
            BTreeMap::new(),
        )
        .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), tiny().fingerprint());
    }

    #[test]
    fn symbols_resolve() {
        let mut syms = BTreeMap::new();
        syms.insert("buf".to_string(), DATA_BASE);
        let p = Program::new("s", vec![Instr::Halt], vec![0; 8], CODE_BASE, syms).unwrap();
        assert_eq!(p.symbol("buf"), Some(VirtAddr(DATA_BASE)));
        assert_eq!(p.symbol("missing"), None);
    }
}
