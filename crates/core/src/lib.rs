#![warn(missing_docs)]

//! QuickRec recording hardware — the paper's architecture extension.
//!
//! This crate models the per-core *memory race recorder* (MRR) that the
//! QuickRec prototype (ISCA 2013) added to FPGA-emulated Pentium cores,
//! plus the buffering path that carries its output to software:
//!
//! - **Chunks.** Execution is divided into *chunks*: maximal runs of
//!   retired user instructions free of cross-core data conflicts. A chunk
//!   terminates when a remote coherence request hits the local read or
//!   write signature (a RAW/WAR/WAW dependency), when a signature
//!   saturates, when the instruction counter overflows, or on
//!   syscalls/traps/context switches. Each termination emits a
//!   [`chunk::ChunkPacket`] carrying the instruction count, a global
//!   timestamp, and the reordered-store-window (RSW) count.
//! - **Signatures.** Read/write sets are tracked in Bloom-style hashed
//!   bit-vectors ([`signature::Signature`]); false positives cause only
//!   extra (safe) terminations.
//! - **CBUF / CMEM.** Packets queue in a small hardware chunk buffer
//!   ([`cbuf::Cbuf`]) drained by DMA into a software-managed memory
//!   region ([`cmem::Cmem`]); a full CBUF stalls the core — the *only*
//!   hardware overhead source, matching the paper's "negligible hardware
//!   overhead" claim — and a filling CMEM raises the interrupt the Capo3
//!   software stack services.
//! - **Encodings.** Three on-disk packet formats ([`encoding::Encoding`])
//!   reproduce the paper's log-compression comparison.
//!
//! Replay consumes the resulting [`log::ChunkLog`]: executing chunks in
//! global timestamp order reproduces every cross-thread dependency (each
//! dependency forced its source chunk to terminate — and be stamped —
//! before the dependent access committed).

pub mod cbuf;
pub mod chunk;
pub mod cmem;
pub mod config;
pub mod encoding;
pub mod footprint;
pub mod log;
pub mod mrr;
mod obs;
pub mod po;
pub mod signature;
pub mod stats;
pub mod viz;

pub use chunk::{ChunkPacket, TerminationReason};
pub use config::MrrConfig;
pub use encoding::{Encoding, SalvagedPackets, FRAME_GROUP_PACKETS};
pub use footprint::{ChunkFootprint, FootprintLog};
pub use log::ChunkLog;
pub use mrr::{MrrUnit, RecorderBank};
pub use po::{
    DeriveStats, EdgeKind, OrderEdge, OrderLog, OrderMode, OrderSalvage, PoEvent, PoNode,
};
pub use stats::RecorderStats;
