//! The CMEM region: software-managed memory the DMA engine fills.
//!
//! Capo3 configures a physical memory region per replay sphere; the
//! recording hardware appends encoded chunk packets to it and raises an
//! interrupt when the fill level passes a threshold, at which point the
//! replay-sphere manager copies the contents out to the user-space log.
//! The copy cost is the dominant software overhead the paper measures.

use crate::chunk::ChunkPacket;
use crate::encoding::Encoding;
use qr_common::Cycle;

/// A bounded append-only packet region with a fill-level interrupt.
#[derive(Debug, Clone)]
pub struct Cmem {
    packets: Vec<ChunkPacket>,
    bytes: usize,
    capacity: usize,
    threshold: usize,
    encoding: Encoding,
    prev_ts: Cycle,
    total_bytes: u64,
    total_drains: u64,
}

impl Cmem {
    /// Creates a region of `capacity` bytes that raises its interrupt at
    /// `threshold` bytes, encoding packets with `encoding`.
    pub fn new(capacity: usize, threshold: usize, encoding: Encoding) -> Cmem {
        Cmem {
            packets: Vec::new(),
            bytes: 0,
            capacity,
            threshold,
            encoding,
            prev_ts: Cycle(0),
            total_bytes: 0,
            total_drains: 0,
        }
    }

    /// Appends one packet, accounting its encoded size.
    pub fn append(&mut self, packet: &ChunkPacket) {
        let mut scratch = Vec::with_capacity(24);
        self.encoding.encode_packet(packet, self.prev_ts, &mut scratch);
        self.prev_ts = packet.timestamp;
        self.bytes += scratch.len();
        self.total_bytes += scratch.len() as u64;
        self.packets.push(*packet);
    }

    /// Current fill level in bytes.
    pub fn fill_bytes(&self) -> usize {
        self.bytes
    }

    /// Whether the fill level has reached the interrupt threshold (or the
    /// region is outright full).
    pub fn interrupt_pending(&self) -> bool {
        self.bytes >= self.threshold.min(self.capacity)
    }

    /// Empties the region (the RSM interrupt handler), returning the
    /// packets and the bytes they occupied.
    pub fn drain(&mut self) -> (Vec<ChunkPacket>, usize) {
        let bytes = std::mem::take(&mut self.bytes);
        if !self.packets.is_empty() {
            self.total_drains += 1;
        }
        (std::mem::take(&mut self.packets), bytes)
    }

    /// Total encoded bytes ever appended (the memory-log volume).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of nonempty drains (≈ interrupts serviced).
    pub fn total_drains(&self) -> u64 {
        self.total_drains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::TerminationReason;
    use qr_common::{CoreId, ThreadId};

    fn packet(ts: u64) -> ChunkPacket {
        ChunkPacket {
            tid: ThreadId(0),
            core: CoreId(0),
            icount: 100,
            timestamp: Cycle(ts),
            rsw: 0,
            reason: TerminationReason::Syscall,
        }
    }

    #[test]
    fn interrupt_raises_at_threshold() {
        let mut m = Cmem::new(1000, 40, Encoding::Raw);
        assert!(!m.interrupt_pending());
        m.append(&packet(1)); // 24 bytes raw
        assert!(!m.interrupt_pending());
        m.append(&packet(2));
        assert!(m.interrupt_pending());
    }

    #[test]
    fn drain_resets_fill_but_keeps_totals() {
        let mut m = Cmem::new(1000, 40, Encoding::Raw);
        m.append(&packet(1));
        m.append(&packet(2));
        let (packets, bytes) = m.drain();
        assert_eq!(packets.len(), 2);
        assert_eq!(bytes, 48);
        assert_eq!(m.fill_bytes(), 0);
        assert!(!m.interrupt_pending());
        assert_eq!(m.total_bytes(), 48);
        assert_eq!(m.total_drains(), 1);
        let (empty, zero) = m.drain();
        assert!(empty.is_empty());
        assert_eq!(zero, 0);
        assert_eq!(m.total_drains(), 1, "empty drains are not counted");
    }

    #[test]
    fn delta_encoding_accounts_fewer_bytes_than_raw() {
        let mut raw = Cmem::new(1 << 20, 1 << 20, Encoding::Raw);
        let mut delta = Cmem::new(1 << 20, 1 << 20, Encoding::Delta);
        for ts in 1..100u64 {
            raw.append(&packet(ts * 7));
            delta.append(&packet(ts * 7));
        }
        assert!(delta.total_bytes() < raw.total_bytes());
    }
}
