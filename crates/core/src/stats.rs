//! Recorder statistics.

use crate::chunk::{ChunkPacket, TerminationReason};

/// Per-core recorder counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreRecorderStats {
    /// Chunks emitted from this core.
    pub chunks: u64,
    /// User instructions covered by those chunks.
    pub instructions: u64,
    /// Stall cycles caused by CBUF backpressure.
    pub cbuf_stall_cycles: u64,
}

/// Machine-wide recorder counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Per-core counters.
    pub cores: Vec<CoreRecorderStats>,
    /// Chunk count per termination reason, indexed by
    /// [`TerminationReason::code`].
    pub chunks_by_reason: [u64; TerminationReason::ALL.len()],
    /// Chunks that carried a nonzero RSW.
    pub chunks_with_rsw: u64,
    /// Sum of RSW values (for the mean).
    pub rsw_sum: u64,
    /// Conflict terminations that exact tracking identified as signature
    /// false positives.
    pub false_positive_conflicts: u64,
}

impl RecorderStats {
    /// Creates zeroed counters for `num_cores` cores.
    pub fn new(num_cores: usize) -> RecorderStats {
        RecorderStats { cores: vec![CoreRecorderStats::default(); num_cores], ..Default::default() }
    }

    /// Accounts one emitted chunk.
    pub fn count_chunk(&mut self, packet: &ChunkPacket) {
        crate::obs::chunk_emitted(packet.reason, packet.icount);
        let core = &mut self.cores[packet.core.index()];
        core.chunks += 1;
        core.instructions += packet.icount;
        self.chunks_by_reason[packet.reason.code() as usize] += 1;
        if packet.rsw > 0 {
            self.chunks_with_rsw += 1;
            self.rsw_sum += packet.rsw as u64;
        }
    }

    /// Total chunks across cores.
    pub fn total_chunks(&self) -> u64 {
        self.cores.iter().map(|c| c.chunks).sum()
    }

    /// Total recorded user instructions.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Mean chunk size in instructions (0 if no chunks).
    pub fn mean_chunk_size(&self) -> f64 {
        let chunks = self.total_chunks();
        if chunks == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / chunks as f64
        }
    }

    /// Chunks terminated by cross-core conflicts (including false
    /// positives).
    pub fn conflict_chunks(&self) -> u64 {
        TerminationReason::ALL
            .iter()
            .filter(|r| r.is_conflict())
            .map(|r| self.chunks_by_reason[r.code() as usize])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_common::{CoreId, Cycle, ThreadId};

    fn packet(core: u8, icount: u64, rsw: u8, reason: TerminationReason) -> ChunkPacket {
        ChunkPacket {
            tid: ThreadId(0),
            core: CoreId(core),
            icount,
            timestamp: Cycle(1),
            rsw,
            reason,
        }
    }

    #[test]
    fn counting_aggregates_correctly() {
        let mut s = RecorderStats::new(2);
        s.count_chunk(&packet(0, 10, 0, TerminationReason::ConflictRaw));
        s.count_chunk(&packet(1, 30, 2, TerminationReason::Syscall));
        s.count_chunk(&packet(1, 20, 3, TerminationReason::ConflictWar));
        assert_eq!(s.total_chunks(), 3);
        assert_eq!(s.total_instructions(), 60);
        assert_eq!(s.mean_chunk_size(), 20.0);
        assert_eq!(s.conflict_chunks(), 2);
        assert_eq!(s.chunks_with_rsw, 2);
        assert_eq!(s.rsw_sum, 5);
        assert_eq!(s.cores[1].chunks, 2);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = RecorderStats::new(4);
        assert_eq!(s.total_chunks(), 0);
        assert_eq!(s.mean_chunk_size(), 0.0);
        assert_eq!(s.conflict_chunks(), 0);
    }
}
