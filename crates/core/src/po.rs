//! Partial-order chunk ordering — vector clocks and happens-before edges.
//!
//! The MRR scheme serializes every chunk through one global bus
//! timestamp: cheap to record, but a total order is far stronger than
//! replay needs, and at high core counts (or across daemon shards,
//! where no shared clock exists) stamping every chunk is the
//! scalability ceiling the paper itself flags. Under
//! [`OrderMode::PartialOrder`] the recorder instead logs the *partial*
//! order that actually constrains replay:
//!
//! - **Program order** per thread — implicit, never logged: each
//!   thread's chunks and input events are numbered `0..n` in the order
//!   the thread produced them.
//! - **Conflict edges** (RAW/WAW/WAR) between cross-thread timeline
//!   nodes whose cache-line footprints intersect with at least one
//!   write — the same evidence the parallel replayer's dependency DAG
//!   is built from.
//! - **Spawn edges** from a successful `SYS_SPAWN` record to the child
//!   thread's first node.
//! - **Input edges** chaining consecutive cross-thread input events,
//!   pinning the global injection order (console bytes are assembled in
//!   input order, which no footprint captures).
//!
//! Edges already implied transitively are dropped at derive time using
//! per-node vector clocks (a candidate source is skipped when the
//! node's clock, after merging nearer predecessors, already dominates
//! it), so the logged edge set stays close to the communication that
//! actually happened instead of growing with the chunk count.
//!
//! A node is identified as `(tid, seq)` — no timestamp appears anywhere
//! in the log. At replay, [`linearize`] runs a deterministic,
//! timestamp-free topological sort (Kahn's algorithm with a
//! `(tid, seq)` min-heap tie-break) to reconstruct *a* legal total
//! order; any legal order is conflict-equivalent to the recorded one
//! and produces a byte-identical fingerprint, which the equivalence
//! test battery checks.
//!
//! The log serializes to the `order.qrp` sidecar as a framed container
//! of kind [`PayloadKind::OrderLog`]: record 0 commits the per-thread
//! node counts and the edge total, then one record per
//! [`EDGE_GROUP`]-edge group, each CRC-32 protected — a torn file
//! salvages to its longest clean edge prefix.

use crate::footprint::ChunkFootprint;
use qr_common::frame::{self, PayloadKind};
use qr_common::{varint, QrError, Result, ThreadId};
use std::collections::{BTreeMap, HashMap};

/// Edges per framed record: the salvage granularity of a torn order log.
pub const EDGE_GROUP: usize = 128;

/// How chunk ordering is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderMode {
    /// One global timestamp per chunk (the paper's MRR scheme). The
    /// default, and byte-identical to recordings made before partial
    /// order existed.
    #[default]
    TotalOrder,
    /// Per-thread sequence numbers plus explicit happens-before edges in
    /// an `order.qrp` sidecar. The recording proper is unchanged — the
    /// sidecar carries the ordering information a shard without a global
    /// clock would have to live on.
    PartialOrder,
}

impl OrderMode {
    /// The CLI / display name (`total` or `partial`).
    pub fn name(self) -> &'static str {
        match self {
            OrderMode::TotalOrder => "total",
            OrderMode::PartialOrder => "partial",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<OrderMode> {
        match s {
            "total" => Some(OrderMode::TotalOrder),
            "partial" => Some(OrderMode::PartialOrder),
            _ => None,
        }
    }
}

/// One timeline node of a partial-order recording: the `seq`-th event
/// (chunk or input) thread `tid` produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PoNode {
    /// Owning thread.
    pub tid: ThreadId,
    /// Zero-based position in that thread's event sequence.
    pub seq: u32,
}

impl std::fmt::Display for PoNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.tid, self.seq)
    }
}

/// Why a happens-before edge was logged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Footprint conflict (RAW, WAW or WAR on a shared cache line).
    Conflict,
    /// Successful `SYS_SPAWN` record → child's first node.
    Spawn,
    /// Consecutive cross-thread input events (injection order).
    Input,
}

impl EdgeKind {
    /// Every kind, in code order.
    pub const ALL: [EdgeKind; 3] = [EdgeKind::Conflict, EdgeKind::Spawn, EdgeKind::Input];

    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            EdgeKind::Conflict => 0,
            EdgeKind::Spawn => 1,
            EdgeKind::Input => 2,
        }
    }

    /// Inverse of [`EdgeKind::code`].
    pub fn from_code(code: u8) -> Option<EdgeKind> {
        match code {
            0 => Some(EdgeKind::Conflict),
            1 => Some(EdgeKind::Spawn),
            2 => Some(EdgeKind::Input),
            _ => None,
        }
    }

    /// Metric label.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Conflict => "conflict",
            EdgeKind::Spawn => "spawn",
            EdgeKind::Input => "input",
        }
    }
}

/// One logged happens-before edge: `from` must replay before `to`.
/// Always cross-thread — program order within a thread is implicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderEdge {
    /// Earlier node.
    pub from: PoNode,
    /// Later node.
    pub to: PoNode,
    /// Why the edge exists.
    pub kind: EdgeKind,
}

impl OrderEdge {
    /// Canonical sort key: edges serialize grouped by destination.
    fn key(&self) -> (ThreadId, u32, ThreadId, u32) {
        (self.to.tid, self.to.seq, self.from.tid, self.from.seq)
    }
}

/// The partial-order sidecar log (`order.qrp`): per-thread node counts
/// plus the reduced cross-thread happens-before edge set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OrderLog {
    /// Nodes per thread (a thread's events are numbered `0..count`).
    threads: BTreeMap<ThreadId, u32>,
    /// Edges in canonical `(to, from)` order, deduplicated.
    edges: Vec<OrderEdge>,
}

impl OrderLog {
    /// Builds a log, canonicalizing (sorting and deduplicating) the
    /// edge list.
    pub fn new(threads: BTreeMap<ThreadId, u32>, mut edges: Vec<OrderEdge>) -> OrderLog {
        edges.sort_by_key(OrderEdge::key);
        edges.dedup_by_key(|e| e.key());
        OrderLog { threads, edges }
    }

    /// Per-thread node counts.
    pub fn threads(&self) -> &BTreeMap<ThreadId, u32> {
        &self.threads
    }

    /// Total nodes across all threads.
    pub fn node_count(&self) -> u64 {
        self.threads.values().map(|&c| c as u64).sum()
    }

    /// The logged edges, in canonical order.
    pub fn edges(&self) -> &[OrderEdge] {
        &self.edges
    }

    /// Logged edges of one kind.
    pub fn edge_count(&self, kind: EdgeKind) -> u64 {
        self.edges.iter().filter(|e| e.kind == kind).count() as u64
    }

    /// Implicit program-order edges (consecutive same-thread nodes).
    pub fn program_edge_count(&self) -> u64 {
        self.threads.values().map(|&c| u64::from(c.saturating_sub(1))).sum()
    }

    /// Serialized size in bytes (the "ordering log size" metric).
    pub fn byte_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes the log in the crash-consistent framed container
    /// format: record 0 commits the per-thread node counts and the edge
    /// total, then one record per [`EDGE_GROUP`]-edge group. Edge `to`
    /// coordinates are delta-coded within each record (edges are sorted
    /// by destination), restarting per record so every record decodes
    /// independently.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = frame::Writer::new(PayloadKind::OrderLog);
        let mut header = Vec::new();
        varint::write_u64(&mut header, self.threads.len() as u64);
        for (tid, count) in &self.threads {
            varint::write_u64(&mut header, tid.0 as u64);
            varint::write_u64(&mut header, *count as u64);
        }
        varint::write_u64(&mut header, self.edges.len() as u64);
        w.record(&header);
        for group in self.edges.chunks(EDGE_GROUP) {
            let mut payload = Vec::new();
            let (mut prev_tid, mut prev_seq) = (0u32, 0u32);
            for edge in group {
                payload.push(edge.kind.code());
                let dt = edge.to.tid.0 - prev_tid;
                varint::write_u64(&mut payload, dt as u64);
                let ds = if dt == 0 { edge.to.seq - prev_seq } else { edge.to.seq };
                varint::write_u64(&mut payload, ds as u64);
                varint::write_u64(&mut payload, edge.from.tid.0 as u64);
                varint::write_u64(&mut payload, edge.from.seq as u64);
                (prev_tid, prev_seq) = (edge.to.tid.0, edge.to.seq);
            }
            w.record(&payload);
        }
        let bytes = w.finish();
        crate::obs::order_serialized(bytes.len());
        bytes
    }

    /// Deserializes a log written by [`OrderLog::to_bytes`], strictly:
    /// any fault anywhere is an error.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] with byte-offset context on
    /// malformed input.
    pub fn from_bytes(buf: &[u8]) -> Result<OrderLog> {
        let (log, salvage) = OrderLog::salvage_from_bytes(buf);
        match salvage.corruption {
            Some(err) => Err(err),
            None => Ok(log),
        }
    }

    /// Tolerantly deserializes a framed order log, recovering the
    /// longest clean edge prefix of a torn or corrupted file. Never
    /// fails: corruption is *described* in the returned [`OrderSalvage`].
    /// A recovered prefix is always a sound (if weaker) constraint set —
    /// dropping edges can only make reconstruction refuse (divergence at
    /// replay), never silently reorder dependent events past their
    /// sources, because the header's node counts are committed before
    /// any edge.
    pub fn salvage_from_bytes(buf: &[u8]) -> (OrderLog, OrderSalvage) {
        let (log, salvage) = OrderLog::salvage_inner(buf);
        if salvage.corruption.is_some() {
            crate::obs::order_rejected();
        }
        (log, salvage)
    }

    fn salvage_inner(buf: &[u8]) -> (OrderLog, OrderSalvage) {
        let what = "order log";
        let mut log = OrderLog::default();
        let gone = |err: QrError| OrderSalvage {
            expected_edges: None,
            bytes_dropped: buf.len(),
            corruption: Some(err),
        };
        let scanned = frame::scan(buf);
        match scanned.kind {
            Some(PayloadKind::OrderLog) => {}
            Some(other) => {
                return (
                    log,
                    gone(QrError::Corrupt {
                        what: what.into(),
                        offset: 5,
                        detail: format!(
                            "container holds a {}, expected an order log",
                            other.name()
                        ),
                    }),
                )
            }
            None => {
                let fault = scanned.fault.expect("scan without kind always faults");
                return (log, gone(fault.to_error(what)));
            }
        }
        let Some((header, rest)) = scanned.records.split_first() else {
            let err = match scanned.fault {
                Some(fault) => fault.to_error(what),
                None => QrError::Corrupt {
                    what: what.into(),
                    offset: frame::HEADER_LEN as u64,
                    detail: "missing order-log header record".into(),
                },
            };
            return (log, gone(err));
        };
        let header_base = frame::HEADER_LEN + 4;
        let expected_edges = match decode_header(&mut log, header, header_base) {
            Ok(edges) => edges,
            Err(err) => return (OrderLog::default(), gone(err)),
        };
        let mut corruption = None;
        let mut payload_base = header_base + header.len() + 4 + 4;
        let mut consumed = frame::HEADER_LEN + header.len() + frame::RECORD_OVERHEAD;
        for payload in rest {
            if let Err(err) = decode_edge_record(&mut log, payload, payload_base) {
                corruption = Some(err);
                break;
            }
            consumed += payload.len() + frame::RECORD_OVERHEAD;
            payload_base += payload.len() + frame::RECORD_OVERHEAD;
        }
        if corruption.is_none() {
            if let Some(fault) = scanned.fault {
                corruption = Some(fault.to_error(what));
            } else if log.edges.len() as u64 != expected_edges {
                corruption = Some(QrError::Corrupt {
                    what: what.into(),
                    offset: buf.len() as u64,
                    detail: format!(
                        "header commits {expected_edges} edges but records hold {}",
                        log.edges.len()
                    ),
                });
            }
        }
        let salvage = OrderSalvage {
            expected_edges: Some(expected_edges),
            bytes_dropped: buf.len().saturating_sub(consumed.min(buf.len())),
            corruption,
        };
        (log, salvage)
    }
}

/// What [`OrderLog::salvage_from_bytes`] recovered (the log itself is
/// returned alongside).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSalvage {
    /// Edge count the header committed to, if the header survived.
    pub expected_edges: Option<u64>,
    /// Container bytes not covered by salvaged records.
    pub bytes_dropped: usize,
    /// What stopped the salvage (`None` for a fully intact log).
    pub corruption: Option<QrError>,
}

/// Decodes the header record, filling `log.threads`; returns the
/// committed edge count.
fn decode_header(log: &mut OrderLog, payload: &[u8], base: usize) -> Result<u64> {
    let corrupt = |off: usize, detail: String| QrError::Corrupt {
        what: "order log".into(),
        offset: (base + off) as u64,
        detail,
    };
    let mut off = 0usize;
    let next = |off: &mut usize| -> Result<u64> {
        let (v, n) = varint::read_u64(payload.get(*off..).unwrap_or(&[]))
            .map_err(|e| corrupt(*off, e.to_string()))?;
        *off += n;
        Ok(v)
    };
    let thread_count = next(&mut off)?;
    // Each thread entry needs at least 2 bytes (tid + count varints).
    if thread_count > payload.len() as u64 {
        return Err(corrupt(off, format!("implausible thread count {thread_count}")));
    }
    let mut prev_tid: Option<u64> = None;
    for _ in 0..thread_count {
        let tid = next(&mut off)?;
        if tid > u32::MAX as u64 || prev_tid.is_some_and(|p| p >= tid) {
            return Err(corrupt(off, format!("thread ids must strictly ascend, got {tid}")));
        }
        prev_tid = Some(tid);
        let count = next(&mut off)?;
        if count == 0 || count > u32::MAX as u64 {
            return Err(corrupt(off, format!("implausible node count {count} for tid{tid}")));
        }
        log.threads.insert(ThreadId(tid as u32), count as u32);
    }
    let edges = next(&mut off)?;
    if off != payload.len() {
        return Err(corrupt(off, format!("{} trailing bytes in header record", payload.len() - off)));
    }
    Ok(edges)
}

/// Decodes one edge-group record, appending to `log.edges` with full
/// validation (known endpoints, cross-thread, canonical order).
fn decode_edge_record(log: &mut OrderLog, payload: &[u8], base: usize) -> Result<()> {
    let corrupt = |off: usize, detail: String| QrError::Corrupt {
        what: "order log record".into(),
        offset: (base + off) as u64,
        detail,
    };
    let mut off = 0usize;
    let (mut prev_tid, mut prev_seq) = (0u32, 0u32);
    while off < payload.len() {
        let kind = EdgeKind::from_code(payload[off])
            .ok_or_else(|| corrupt(off, format!("unknown edge kind {}", payload[off])))?;
        off += 1;
        let next = |off: &mut usize| -> Result<u64> {
            let (v, n) = varint::read_u64(payload.get(*off..).unwrap_or(&[]))
                .map_err(|e| corrupt(*off, e.to_string()))?;
            *off += n;
            Ok(v)
        };
        let dt = next(&mut off)?;
        let ds = next(&mut off)?;
        let from_tid = next(&mut off)?;
        let from_seq = next(&mut off)?;
        let to_tid = (prev_tid as u64)
            .checked_add(dt)
            .filter(|&t| t <= u32::MAX as u64)
            .ok_or_else(|| corrupt(off, "edge destination tid overflows".into()))? as u32;
        let to_seq = if dt == 0 {
            (prev_seq as u64)
                .checked_add(ds)
                .filter(|&s| s <= u32::MAX as u64)
                .ok_or_else(|| corrupt(off, "edge destination seq overflows".into()))?
                as u32
        } else {
            if ds > u32::MAX as u64 {
                return Err(corrupt(off, "edge destination seq overflows".into()));
            }
            ds as u32
        };
        if from_tid > u32::MAX as u64 || from_seq > u32::MAX as u64 {
            return Err(corrupt(off, "edge source out of range".into()));
        }
        let edge = OrderEdge {
            from: PoNode { tid: ThreadId(from_tid as u32), seq: from_seq as u32 },
            to: PoNode { tid: ThreadId(to_tid), seq: to_seq },
            kind,
        };
        for node in [edge.from, edge.to] {
            match log.threads.get(&node.tid) {
                Some(&count) if node.seq < count => {}
                _ => return Err(corrupt(off, format!("edge endpoint {node} is not a node"))),
            }
        }
        if edge.from.tid == edge.to.tid {
            return Err(corrupt(off, format!("same-thread edge {} -> {}", edge.from, edge.to)));
        }
        if log.edges.last().is_some_and(|last| last.key() >= edge.key()) {
            return Err(corrupt(off, format!("edge {} -> {} out of canonical order", edge.from, edge.to)));
        }
        log.edges.push(edge);
        (prev_tid, prev_seq) = (edge.to.tid.0, edge.to.seq);
    }
    Ok(())
}

// ----- derivation -----------------------------------------------------

/// One timeline event, in recorded global order, as the deriver sees it.
/// The caller (the capo session / `Recording::derive_order`) merges
/// chunks and input events into one timestamp-ordered slice and strips
/// the timestamps — only the order and the conflict evidence enter.
#[derive(Debug, Clone, Copy)]
pub struct PoEvent<'a> {
    /// Owning thread.
    pub tid: ThreadId,
    /// Read/write line sets (chunk footprint, or the kernel-side
    /// activity of an input event). `None` nodes never conflict.
    pub footprint: Option<&'a ChunkFootprint>,
    /// Whether this is an injected input event (chains into the global
    /// injection order).
    pub is_input: bool,
    /// Child thread created by this event (successful `SYS_SPAWN`).
    pub spawns: Option<ThreadId>,
}

/// Edge statistics of one derivation, for reports and metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeriveStats {
    /// Implicit program-order edges (not logged).
    pub program_edges: u64,
    /// Conflict candidates considered before reduction.
    pub candidate_edges: u64,
    /// Logged conflict edges.
    pub conflict_edges: u64,
    /// Logged spawn edges.
    pub spawn_edges: u64,
    /// Logged input edges.
    pub input_edges: u64,
}

impl DeriveStats {
    /// Total logged (cross-thread) edges.
    pub fn logged_edges(&self) -> u64 {
        self.conflict_edges + self.spawn_edges + self.input_edges
    }
}

/// Derives the partial-order log of a recorded execution from its
/// timeline in recorded global order.
///
/// Candidate edges come from the same sweep the parallel replayer's
/// dependency DAG uses (per-line last-writer / readers-since
/// bookkeeping), plus spawn and input-chain edges; candidates already
/// dominated by the destination's vector clock — after merging nearer
/// predecessors first — are dropped (transitive reduction).
///
/// # Errors
///
/// Returns [`QrError::Unsupported`] when a thread has more than
/// `u32::MAX` events (unreachable for real recordings).
pub fn derive(events: &[PoEvent]) -> Result<(OrderLog, DeriveStats)> {
    // Dense thread indexing for the vector clocks.
    let mut dense: BTreeMap<ThreadId, usize> = BTreeMap::new();
    for ev in events {
        let next = dense.len();
        dense.entry(ev.tid).or_insert(next);
    }
    let nthreads = dense.len();
    // Per-event (tid, seq) assignment.
    let mut counts: Vec<u32> = vec![0; nthreads];
    let mut seqs: Vec<u32> = Vec::with_capacity(events.len());
    for ev in events {
        let d = dense[&ev.tid];
        if counts[d] == u32::MAX {
            return Err(QrError::Unsupported(format!("{} has too many events", ev.tid)));
        }
        seqs.push(counts[d]);
        counts[d] += 1;
    }

    // Candidate sweep: same bookkeeping as the parallel replayer's DAG
    // (a node "reads" its reads ∪ writes for RAW purposes, a writer
    // re-registers as a reader of the new value for later WAR edges),
    // restricted to cross-thread pairs — same-thread ordering is
    // program order and always dominated.
    let mut last_writer: HashMap<u32, usize> = HashMap::new();
    let mut readers_since: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut pending_spawn: HashMap<u32, usize> = HashMap::new();
    let mut last_input: Option<usize> = None;
    let mut candidates: Vec<Vec<(usize, EdgeKind)>> = Vec::with_capacity(events.len());
    let mut stats = DeriveStats::default();
    for (idx, ev) in events.iter().enumerate() {
        let mut cand: BTreeMap<usize, EdgeKind> = BTreeMap::new();
        let mut add = |src: usize, kind: EdgeKind| {
            // Spawn and input edges are structural; conflicts fill in.
            let slot = cand.entry(src).or_insert(kind);
            if kind.code() > slot.code() {
                *slot = kind;
            }
        };
        if seqs[idx] == 0 {
            if let Some(&spawner) = pending_spawn.get(&ev.tid.0) {
                add(spawner, EdgeKind::Spawn);
            }
        }
        if ev.is_input {
            if let Some(prev) = last_input {
                if events[prev].tid != ev.tid {
                    add(prev, EdgeKind::Input);
                }
            }
            last_input = Some(idx);
        }
        if let Some(fp) = ev.footprint {
            for line in fp.reads.iter().chain(fp.writes.iter()) {
                if let Some(&w) = last_writer.get(&line.0) {
                    if w != idx && events[w].tid != ev.tid {
                        add(w, EdgeKind::Conflict);
                    }
                }
                readers_since.entry(line.0).or_default().push(idx);
            }
            for line in &fp.writes {
                if let Some(since) = readers_since.get(&line.0) {
                    for &r in since {
                        if r != idx && events[r].tid != ev.tid {
                            add(r, EdgeKind::Conflict);
                        }
                    }
                }
                last_writer.insert(line.0, idx);
                readers_since.remove(&line.0);
                readers_since.entry(line.0).or_default().push(idx);
            }
        }
        if let Some(child) = ev.spawns {
            pending_spawn.insert(child.0, idx);
        }
        stats.candidate_edges += cand.len() as u64;
        candidates.push(cand.into_iter().collect());
    }

    // Vector-clock transitive reduction: walk nodes in recorded order;
    // start from the program predecessor's clock, then try candidates
    // nearest-first (descending source index) — each merge can dominate
    // earlier candidates, which are then skipped instead of logged.
    let mut clocks: Vec<Vec<u32>> = Vec::with_capacity(events.len());
    let mut last_of_thread: Vec<Option<usize>> = vec![None; nthreads];
    let mut edges: Vec<OrderEdge> = Vec::new();
    for (idx, ev) in events.iter().enumerate() {
        let d = dense[&ev.tid];
        let mut vc = match last_of_thread[d] {
            Some(prev) => clocks[prev].clone(),
            None => vec![0; nthreads],
        };
        let mut cand = std::mem::take(&mut candidates[idx]);
        cand.sort_unstable_by(|a, b| b.0.cmp(&a.0));
        for (src, kind) in cand {
            let sd = dense[&events[src].tid];
            if vc[sd] >= seqs[src] + 1 {
                continue; // already happens-before via a nearer edge
            }
            edges.push(OrderEdge {
                from: PoNode { tid: events[src].tid, seq: seqs[src] },
                to: PoNode { tid: ev.tid, seq: seqs[idx] },
                kind,
            });
            match kind {
                EdgeKind::Conflict => stats.conflict_edges += 1,
                EdgeKind::Spawn => stats.spawn_edges += 1,
                EdgeKind::Input => stats.input_edges += 1,
            }
            for (slot, &s) in vc.iter_mut().zip(&clocks[src]) {
                *slot = (*slot).max(s);
            }
        }
        vc[d] = seqs[idx] + 1;
        clocks.push(vc);
        last_of_thread[d] = Some(idx);
    }
    let threads: BTreeMap<ThreadId, u32> =
        dense.iter().map(|(&tid, &d)| (tid, counts[d])).collect();
    let log = OrderLog::new(threads, edges);
    stats.program_edges = log.program_edge_count();
    crate::obs::order_derived(&stats);
    Ok((log, stats))
}

// ----- reconstruction -------------------------------------------------

/// Reconstructs a legal total order from a partial-order log: Kahn's
/// algorithm over program order plus the logged edges, breaking ties
/// with a `(tid, seq)` min-heap — fully deterministic and
/// timestamp-free. The result lists every node exactly once; feeding it
/// back through the replayer produces a fingerprint byte-identical to
/// the recorded execution (any legal order is conflict-equivalent).
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] when an edge references a node outside
/// the per-thread counts or the edges form a cycle (a tampered or
/// internally inconsistent log).
pub fn linearize(log: &OrderLog) -> Result<Vec<PoNode>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let corrupt = |detail: String| QrError::Corrupt {
        what: "order log".into(),
        offset: 0,
        detail,
    };
    // Dense node ids: per-thread base offsets in tid order.
    let mut base: BTreeMap<ThreadId, usize> = BTreeMap::new();
    let mut total = 0usize;
    for (&tid, &count) in &log.threads {
        base.insert(tid, total);
        total += count as usize;
    }
    let id_of = |node: PoNode| -> Result<usize> {
        match log.threads.get(&node.tid) {
            Some(&count) if node.seq < count => Ok(base[&node.tid] + node.seq as usize),
            _ => Err(corrupt(format!("edge endpoint {node} is not a node"))),
        }
    };
    let mut indegree = vec![0usize; total];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total];
    for (&tid, &count) in &log.threads {
        for seq in 1..count {
            let b = base[&tid];
            succs[b + seq as usize - 1].push(b + seq as usize);
            indegree[b + seq as usize] += 1;
        }
    }
    for edge in &log.edges {
        let from = id_of(edge.from)?;
        let to = id_of(edge.to)?;
        succs[from].push(to);
        indegree[to] += 1;
    }
    // Node id ordering is exactly (tid, seq) ordering, so a min-heap of
    // ids is the deterministic tie-break.
    let nodes: Vec<PoNode> = log
        .threads
        .iter()
        .flat_map(|(&tid, &count)| (0..count).map(move |seq| PoNode { tid, seq }))
        .collect();
    let mut ready: BinaryHeap<Reverse<usize>> = indegree
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| Reverse(i))
        .collect();
    let mut order = Vec::with_capacity(total);
    while let Some(Reverse(id)) = ready.pop() {
        order.push(nodes[id]);
        for &succ in &succs[id] {
            indegree[succ] -= 1;
            if indegree[succ] == 0 {
                ready.push(Reverse(succ));
            }
        }
    }
    if order.len() != total {
        return Err(corrupt(format!(
            "happens-before edges form a cycle ({} of {total} nodes orderable)",
            order.len()
        )));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_common::Cycle;

    fn node(tid: u32, seq: u32) -> PoNode {
        PoNode { tid: ThreadId(tid), seq }
    }

    fn sample() -> OrderLog {
        let threads: BTreeMap<ThreadId, u32> =
            [(ThreadId(0), 4), (ThreadId(1), 3), (ThreadId(2), 1)].into_iter().collect();
        let edges = vec![
            OrderEdge { from: node(0, 1), to: node(1, 0), kind: EdgeKind::Spawn },
            OrderEdge { from: node(1, 1), to: node(0, 2), kind: EdgeKind::Conflict },
            OrderEdge { from: node(0, 3), to: node(2, 0), kind: EdgeKind::Input },
            OrderEdge { from: node(1, 2), to: node(0, 3), kind: EdgeKind::Input },
        ];
        OrderLog::new(threads, edges)
    }

    #[test]
    fn round_trips_through_bytes() {
        let log = sample();
        let bytes = log.to_bytes();
        assert!(frame::is_framed(&bytes));
        assert_eq!(OrderLog::from_bytes(&bytes).unwrap(), log);
        assert_eq!(log.byte_size(), bytes.len());
    }

    #[test]
    fn empty_log_round_trips() {
        let log = OrderLog::default();
        assert_eq!(OrderLog::from_bytes(&log.to_bytes()).unwrap(), log);
    }

    #[test]
    fn many_edge_groups_round_trip() {
        // More edges than one group, exercising the per-record delta
        // restart.
        let threads: BTreeMap<ThreadId, u32> =
            [(ThreadId(0), 1000), (ThreadId(1), 1000)].into_iter().collect();
        let edges: Vec<OrderEdge> = (0..500)
            .map(|i| OrderEdge {
                from: node(0, i),
                to: node(1, i + 1),
                kind: EdgeKind::Conflict,
            })
            .collect();
        let log = OrderLog::new(threads, edges);
        assert_eq!(OrderLog::from_bytes(&log.to_bytes()).unwrap(), log);
    }

    #[test]
    fn truncation_is_detected_at_every_offset() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err =
                OrderLog::from_bytes(&bytes[..cut]).expect_err(&format!("cut {cut} must error"));
            assert!(matches!(err, QrError::Corrupt { .. }), "cut {cut}: {err}");
        }
    }

    #[test]
    fn single_bit_flip_at_every_byte_is_rejected() {
        let bytes = sample().to_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                assert!(
                    OrderLog::from_bytes(&bad).is_err(),
                    "flip at byte {pos} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn salvage_recovers_edge_prefix_of_torn_log() {
        let log = sample();
        let bytes = log.to_bytes();
        let (whole, report) = OrderLog::salvage_from_bytes(&bytes);
        assert_eq!(whole, log);
        assert!(report.corruption.is_none());
        assert_eq!(report.expected_edges, Some(log.edges().len() as u64));
        for cut in 0..bytes.len() {
            let (torn, report) = OrderLog::salvage_from_bytes(&bytes[..cut]);
            assert!(report.corruption.is_some(), "cut {cut}");
            assert_eq!(
                torn.edges(),
                &log.edges()[..torn.edges().len()],
                "cut {cut} salvaged a non-prefix"
            );
        }
    }

    #[test]
    fn decode_never_panics_on_garbage() {
        let mut rng = qr_common::SplitMix64::new(0xbeef_0015);
        for _ in 0..4096 {
            let len = rng.below(256) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = OrderLog::from_bytes(&bytes);
            let _ = OrderLog::salvage_from_bytes(&bytes);
            if bytes.len() >= 4 {
                bytes[..4].copy_from_slice(&frame::MAGIC);
                let _ = OrderLog::from_bytes(&bytes);
                let _ = OrderLog::salvage_from_bytes(&bytes);
            }
        }
    }

    #[test]
    fn foreign_container_is_rejected() {
        let mut w = frame::Writer::new(PayloadKind::InputLog);
        w.record(&[0]);
        let err = OrderLog::from_bytes(&w.finish()).unwrap_err();
        assert!(err.to_string().contains("expected an order log"), "{err}");
    }

    #[test]
    fn out_of_range_endpoint_is_rejected() {
        let mut log = sample();
        log.edges.push(OrderEdge { from: node(0, 0), to: node(1, 99), kind: EdgeKind::Conflict });
        log.edges.sort_by_key(OrderEdge::key);
        assert!(OrderLog::from_bytes(&log.to_bytes()).is_err());
    }

    #[test]
    fn same_thread_edge_is_rejected() {
        let mut log = sample();
        log.edges.push(OrderEdge { from: node(0, 0), to: node(0, 1), kind: EdgeKind::Conflict });
        log.edges.sort_by_key(OrderEdge::key);
        assert!(OrderLog::from_bytes(&log.to_bytes()).is_err());
    }

    #[test]
    fn order_mode_names_and_parse() {
        assert_eq!(OrderMode::default(), OrderMode::TotalOrder);
        for mode in [OrderMode::TotalOrder, OrderMode::PartialOrder] {
            assert_eq!(OrderMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(OrderMode::parse("bogus"), None);
    }

    // ----- derive ----------------------------------------------------

    fn fp(ts: u64, reads: &[u32], writes: &[u32]) -> ChunkFootprint {
        ChunkFootprint::new(
            Cycle(ts),
            reads.iter().map(|&l| qr_common::LineAddr(l)).collect(),
            writes.iter().map(|&l| qr_common::LineAddr(l)).collect(),
        )
    }

    #[test]
    fn derive_produces_conflict_and_spawn_edges() {
        // t0: write L1, spawn t1; t1: read L1.
        let f0 = fp(1, &[], &[1]);
        let f1 = fp(3, &[1], &[]);
        let events = [
            PoEvent { tid: ThreadId(0), footprint: Some(&f0), is_input: false, spawns: None },
            PoEvent { tid: ThreadId(0), footprint: None, is_input: true, spawns: Some(ThreadId(1)) },
            PoEvent { tid: ThreadId(1), footprint: Some(&f1), is_input: false, spawns: None },
        ];
        let (log, stats) = derive(&events).unwrap();
        assert_eq!(log.node_count(), 3);
        // The spawn edge t0#1 -> t1#0 is logged; the RAW edge t0#0 ->
        // t1#0 is dominated by it (t0#0 happens-before t0#1 by program
        // order) and must have been reduced away.
        assert_eq!(log.edges().len(), 1);
        assert_eq!(log.edges()[0].kind, EdgeKind::Spawn);
        assert_eq!(log.edges()[0].from, node(0, 1));
        assert_eq!(log.edges()[0].to, node(1, 0));
        assert_eq!(stats.spawn_edges, 1);
        assert_eq!(stats.conflict_edges, 0);
        assert!(stats.candidate_edges >= 2);
    }

    #[test]
    fn derive_keeps_undominated_conflicts() {
        // Interleaved writers to the same line: every cross-thread
        // hand-off must survive reduction.
        let f = [fp(1, &[], &[7]), fp(2, &[], &[7]), fp(3, &[], &[7]), fp(4, &[], &[7])];
        let events = [
            PoEvent { tid: ThreadId(0), footprint: Some(&f[0]), is_input: false, spawns: None },
            PoEvent { tid: ThreadId(1), footprint: Some(&f[1]), is_input: false, spawns: None },
            PoEvent { tid: ThreadId(0), footprint: Some(&f[2]), is_input: false, spawns: None },
            PoEvent { tid: ThreadId(1), footprint: Some(&f[3]), is_input: false, spawns: None },
        ];
        let (log, stats) = derive(&events).unwrap();
        assert_eq!(stats.conflict_edges, 3, "{:?}", log.edges());
        // Reconstruction must reproduce the recorded interleaving: the
        // WAW chain forces the exact alternation.
        let order = linearize(&log).unwrap();
        assert_eq!(order, vec![node(0, 0), node(1, 0), node(0, 1), node(1, 1)]);
    }

    #[test]
    fn derive_chains_cross_thread_inputs() {
        let events = [
            PoEvent { tid: ThreadId(0), footprint: None, is_input: true, spawns: Some(ThreadId(1)) },
            PoEvent { tid: ThreadId(1), footprint: None, is_input: true, spawns: None },
            PoEvent { tid: ThreadId(0), footprint: None, is_input: true, spawns: None },
        ];
        let (log, stats) = derive(&events).unwrap();
        // t0#0 -> t1#0 (spawn wins over input on the same pair) and
        // t1#0 -> t0#1 (input chain).
        assert_eq!(stats.input_edges + stats.spawn_edges, log.edges().len() as u64);
        let order = linearize(&log).unwrap();
        assert_eq!(order, vec![node(0, 0), node(1, 0), node(0, 1)]);
    }

    #[test]
    fn derive_then_serialize_round_trips() {
        let f0 = fp(1, &[], &[1, 2]);
        let f1 = fp(2, &[2], &[3]);
        let f2 = fp(3, &[1, 3], &[]);
        let events = [
            PoEvent { tid: ThreadId(0), footprint: Some(&f0), is_input: false, spawns: None },
            PoEvent { tid: ThreadId(1), footprint: Some(&f1), is_input: false, spawns: None },
            PoEvent { tid: ThreadId(2), footprint: Some(&f2), is_input: false, spawns: None },
        ];
        let (log, _) = derive(&events).unwrap();
        assert_eq!(OrderLog::from_bytes(&log.to_bytes()).unwrap(), log);
    }

    // ----- linearize -------------------------------------------------

    #[test]
    fn linearize_is_deterministic_and_respects_edges() {
        let log = sample();
        let a = linearize(&log).unwrap();
        let b = linearize(&log).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, log.node_count());
        let pos: BTreeMap<PoNode, usize> = a.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for edge in log.edges() {
            assert!(pos[&edge.from] < pos[&edge.to], "{} -> {}", edge.from, edge.to);
        }
        for (&tid, &count) in log.threads() {
            for seq in 1..count {
                assert!(pos[&node(tid.0, seq - 1)] < pos[&node(tid.0, seq)]);
            }
        }
    }

    #[test]
    fn linearize_prefers_lowest_tid_among_ready() {
        // No edges at all: pure (tid, seq) order.
        let threads: BTreeMap<ThreadId, u32> =
            [(ThreadId(0), 2), (ThreadId(1), 2)].into_iter().collect();
        let log = OrderLog::new(threads, Vec::new());
        let order = linearize(&log).unwrap();
        assert_eq!(order, vec![node(0, 0), node(0, 1), node(1, 0), node(1, 1)]);
    }

    #[test]
    fn linearize_detects_cycles() {
        let threads: BTreeMap<ThreadId, u32> =
            [(ThreadId(0), 1), (ThreadId(1), 1)].into_iter().collect();
        let edges = vec![
            OrderEdge { from: node(0, 0), to: node(1, 0), kind: EdgeKind::Conflict },
            OrderEdge { from: node(1, 0), to: node(0, 0), kind: EdgeKind::Conflict },
        ];
        let log = OrderLog::new(threads, edges);
        let err = linearize(&log).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn linearize_rejects_dangling_endpoints() {
        let threads: BTreeMap<ThreadId, u32> = [(ThreadId(0), 1)].into_iter().collect();
        let edges =
            vec![OrderEdge { from: node(5, 0), to: node(0, 0), kind: EdgeKind::Conflict }];
        let log = OrderLog { threads, edges };
        assert!(linearize(&log).is_err());
    }

    #[test]
    fn edge_kind_codes_round_trip() {
        for kind in EdgeKind::ALL {
            assert_eq!(EdgeKind::from_code(kind.code()), Some(kind));
            assert!(!kind.label().is_empty());
        }
        assert_eq!(EdgeKind::from_code(99), None);
    }
}
