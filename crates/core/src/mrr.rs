//! The per-core memory race recorder (MRR) and the machine-wide bank.
//!
//! Each core gets one [`MrrUnit`]. While a thread of a recorded replay
//! sphere runs in user mode, the unit accumulates the thread's current
//! chunk: the retired-instruction counter and the read/write signatures.
//! Remote coherence traffic is checked against the signatures; a hit
//! terminates the chunk (the hardware "closes" it before the conflicting
//! access is serviced, which is what makes timestamp order a legal
//! serialization).
//!
//! The [`RecorderBank`] owns all units plus the CBUF→CMEM buffering path
//! and the recorder statistics.

use crate::cbuf::Cbuf;
use crate::chunk::{ChunkPacket, TerminationReason};
use crate::cmem::Cmem;
use crate::config::MrrConfig;
use crate::signature::Signature;
use crate::stats::RecorderStats;
use qr_common::{CoreId, Cycle, LineAddr, ThreadId};
use std::collections::HashSet;

/// Per-core recording hardware state.
#[derive(Debug, Clone)]
pub struct MrrUnit {
    core: CoreId,
    read_sig: Signature,
    write_sig: Signature,
    exact_read: Option<HashSet<LineAddr>>,
    exact_write: Option<HashSet<LineAddr>>,
    icount: u64,
    owner: Option<ThreadId>,
    max_chunk_icount: u64,
    saturation_permille: u32,
}

impl MrrUnit {
    fn new(core: CoreId, cfg: &MrrConfig) -> MrrUnit {
        let exact = cfg.track_exact_sets;
        MrrUnit {
            core,
            read_sig: Signature::new(cfg.read_sig_bits, cfg.sig_hashes),
            write_sig: Signature::new(cfg.write_sig_bits, cfg.sig_hashes),
            exact_read: exact.then(HashSet::new),
            exact_write: exact.then(HashSet::new),
            icount: 0,
            owner: None,
            max_chunk_icount: cfg.max_chunk_icount,
            saturation_permille: cfg.sig_saturation_permille,
        }
    }

    /// The core this unit instruments.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The thread currently being recorded on this core, if any.
    pub fn owner(&self) -> Option<ThreadId> {
        self.owner
    }

    /// Whether a chunk is currently open (recording active).
    pub fn is_recording(&self) -> bool {
        self.owner.is_some()
    }

    /// Instructions retired in the open chunk.
    pub fn chunk_icount(&self) -> u64 {
        self.icount
    }

    /// Begins recording `tid` on this core. The previous chunk must have
    /// been taken (or the unit never started).
    ///
    /// # Panics
    ///
    /// Panics if a chunk is still open — the session must terminate it
    /// first (context-switch protocol).
    pub fn start(&mut self, tid: ThreadId) {
        assert!(self.owner.is_none(), "start() while a chunk is open on {}", self.core);
        debug_assert_eq!(self.icount, 0);
        self.owner = Some(tid);
    }

    /// Counts one retired user instruction; returns `true` when the chunk
    /// counter reached its maximum and the chunk must terminate.
    pub fn note_retired(&mut self) -> bool {
        debug_assert!(self.is_recording(), "retirement without an open chunk");
        self.icount += 1;
        self.icount >= self.max_chunk_icount
    }

    /// Adds a line to the read set; returns `true` if the signature
    /// passed its saturation limit (chunk must terminate).
    pub fn note_local_read(&mut self, line: LineAddr) -> bool {
        self.read_sig.insert(line);
        if let Some(exact) = &mut self.exact_read {
            exact.insert(line);
        }
        self.read_sig.occupancy_permille() >= self.saturation_permille
    }

    /// Adds a line to the write set; returns `true` on saturation.
    pub fn note_local_write(&mut self, line: LineAddr) -> bool {
        self.write_sig.insert(line);
        if let Some(exact) = &mut self.exact_write {
            exact.insert(line);
        }
        self.write_sig.occupancy_permille() >= self.saturation_permille
    }

    /// Checks a remote transaction against the open chunk. Returns the
    /// conflict kind if the chunk must terminate, plus whether the hit
    /// was a signature false positive (only known with exact tracking).
    ///
    /// The `icount == 0` early-out is safe because the recording session
    /// counts an instruction's retirement *before* it processes that
    /// instruction's memory events, so an open chunk with zero
    /// instructions always has empty signatures.
    pub fn check_remote(&self, line: LineAddr, remote_is_write: bool) -> Option<(TerminationReason, bool)> {
        if !self.is_recording() || self.icount == 0 {
            return None;
        }
        if remote_is_write {
            if self.write_sig.maybe_contains(line) {
                let fp = self.exact_write.as_ref().is_some_and(|s| !s.contains(&line));
                return Some((TerminationReason::ConflictWaw, fp));
            }
            if self.read_sig.maybe_contains(line) {
                let fp = self.exact_read.as_ref().is_some_and(|s| !s.contains(&line));
                return Some((TerminationReason::ConflictWar, fp));
            }
        } else if self.write_sig.maybe_contains(line) {
            let fp = self.exact_write.as_ref().is_some_and(|s| !s.contains(&line));
            return Some((TerminationReason::ConflictRaw, fp));
        }
        None
    }

    /// Closes the open chunk: clears the signatures and counter and
    /// returns the packet (or `None` for an empty chunk, which emits
    /// nothing). Recording continues with a fresh chunk for the same
    /// owner.
    pub fn take_chunk(&mut self, reason: TerminationReason, timestamp: Cycle, rsw: u8) -> Option<ChunkPacket> {
        let tid = self.owner.expect("take_chunk without an owner");
        let icount = self.icount;
        self.icount = 0;
        self.read_sig.clear();
        self.write_sig.clear();
        if let Some(s) = &mut self.exact_read {
            s.clear();
        }
        if let Some(s) = &mut self.exact_write {
            s.clear();
        }
        (icount > 0).then_some(ChunkPacket {
            tid,
            core: self.core,
            icount,
            timestamp,
            rsw,
            reason,
        })
    }

    /// Stops recording on this core (context switch out or thread exit).
    /// The open chunk must already have been taken.
    ///
    /// # Panics
    ///
    /// Panics if instructions are still unaccounted for.
    pub fn stop(&mut self) -> Option<ThreadId> {
        assert_eq!(self.icount, 0, "stop() with an open chunk on {}", self.core);
        self.owner.take()
    }
}

/// All recorder units of a machine plus the CBUF→CMEM buffering path.
#[derive(Debug)]
pub struct RecorderBank {
    units: Vec<MrrUnit>,
    cbufs: Vec<Cbuf>,
    cmem: Cmem,
    stats: RecorderStats,
    cfg: MrrConfig,
}

impl RecorderBank {
    /// Creates a bank for `num_cores` cores.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from [`MrrConfig::validate`].
    pub fn new(cfg: MrrConfig, num_cores: usize) -> qr_common::Result<RecorderBank> {
        cfg.validate()?;
        Ok(RecorderBank {
            units: (0..num_cores).map(|i| MrrUnit::new(CoreId(i as u8), &cfg)).collect(),
            cbufs: (0..num_cores).map(|_| Cbuf::new(cfg.cbuf_entries, cfg.cbuf_drain_cycles)).collect(),
            cmem: Cmem::new(cfg.cmem_capacity, cfg.cmem_interrupt_threshold, cfg.encoding),
            stats: RecorderStats::new(num_cores),
            cfg,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MrrConfig {
        &self.cfg
    }

    /// A unit, by core.
    pub fn unit(&self, core: CoreId) -> &MrrUnit {
        &self.units[core.index()]
    }

    /// Mutable unit access.
    pub fn unit_mut(&mut self, core: CoreId) -> &mut MrrUnit {
        &mut self.units[core.index()]
    }

    /// Cores (other than `from`) whose open chunk conflicts with a remote
    /// transaction on `line`. The session terminates each before the
    /// access is considered complete.
    pub fn conflicting_cores(
        &mut self,
        from: CoreId,
        line: LineAddr,
        remote_is_write: bool,
    ) -> Vec<(CoreId, TerminationReason)> {
        let mut hits = Vec::new();
        for unit in &self.units {
            if unit.core() == from {
                continue;
            }
            if let Some((reason, false_positive)) = unit.check_remote(line, remote_is_write) {
                if false_positive {
                    self.stats.false_positive_conflicts += 1;
                }
                hits.push((unit.core(), reason));
            }
        }
        hits
    }

    /// Terminates the open chunk on `core`: stamps it, pushes the packet
    /// through CBUF (possibly stalling) and accounts statistics. Returns
    /// the packet if the chunk was nonempty, plus the stall cycles the
    /// core suffered from CBUF backpressure.
    ///
    /// `timestamp` must come from the machine's global clock *at the
    /// moment of termination*; `rsw` is the pending-store count.
    pub fn terminate_chunk(
        &mut self,
        core: CoreId,
        reason: TerminationReason,
        timestamp: Cycle,
        rsw: u8,
    ) -> (Option<ChunkPacket>, u64) {
        let Some(packet) = self.units[core.index()].take_chunk(reason, timestamp, rsw) else {
            return (None, 0);
        };
        self.stats.count_chunk(&packet);
        let stall = self.cbufs[core.index()].push(packet);
        self.stats.cores[core.index()].cbuf_stall_cycles += stall;
        self.collect_drained(core);
        (Some(packet), stall)
    }

    /// Advances the CBUF DMA engine of `core` by the cycles its core just
    /// executed, moving completed packets into CMEM. Returns the stall
    /// cycles accumulated so far (for the caller's timing model).
    pub fn advance(&mut self, core: CoreId, cycles: u64) {
        self.cbufs[core.index()].advance(cycles);
        self.collect_drained(core);
    }

    fn collect_drained(&mut self, core: CoreId) {
        while let Some(p) = self.cbufs[core.index()].pop_drained() {
            self.cmem.append(&p);
        }
    }

    /// Flushes every CBUF into CMEM (sphere teardown), preserving order
    /// per core.
    pub fn flush_all(&mut self) {
        for i in 0..self.cbufs.len() {
            for p in self.cbufs[i].flush() {
                self.cmem.append(&p);
            }
        }
    }

    /// Whether the CMEM fill level has passed the interrupt threshold.
    pub fn cmem_interrupt_pending(&self) -> bool {
        self.cmem.interrupt_pending()
    }

    /// Drains the CMEM (the RSM interrupt handler), returning the packets
    /// moved to the software log and the bytes they occupied.
    pub fn drain_cmem(&mut self) -> (Vec<ChunkPacket>, usize) {
        self.cmem.drain()
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &RecorderStats {
        &self.stats
    }

    /// Total hardware stall cycles charged to `core` by CBUF pressure.
    pub fn stall_cycles(&self, core: CoreId) -> u64 {
        self.stats.cores[core.index()].cbuf_stall_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> MrrUnit {
        let mut u = MrrUnit::new(CoreId(0), &MrrConfig::default());
        u.start(ThreadId(1));
        u
    }

    #[test]
    fn raw_conflict_remote_read_hits_write_set() {
        let mut u = unit();
        u.note_retired();
        u.note_local_write(LineAddr(5));
        let (reason, _) = u.check_remote(LineAddr(5), false).unwrap();
        assert_eq!(reason, TerminationReason::ConflictRaw);
    }

    #[test]
    fn war_conflict_remote_write_hits_read_set() {
        let mut u = unit();
        u.note_retired();
        u.note_local_read(LineAddr(5));
        let (reason, _) = u.check_remote(LineAddr(5), true).unwrap();
        assert_eq!(reason, TerminationReason::ConflictWar);
    }

    #[test]
    fn waw_takes_priority_over_war() {
        let mut u = unit();
        u.note_retired();
        u.note_local_read(LineAddr(5));
        u.note_local_write(LineAddr(5));
        let (reason, _) = u.check_remote(LineAddr(5), true).unwrap();
        assert_eq!(reason, TerminationReason::ConflictWaw);
    }

    #[test]
    fn remote_read_does_not_hit_read_set() {
        let mut u = unit();
        u.note_retired();
        u.note_local_read(LineAddr(5));
        assert!(u.check_remote(LineAddr(5), false).is_none(), "read-read never conflicts");
    }

    #[test]
    fn empty_chunk_never_conflicts_and_emits_nothing() {
        let mut u = unit();
        assert!(u.check_remote(LineAddr(5), true).is_none());
        assert!(u.take_chunk(TerminationReason::Syscall, Cycle(1), 0).is_none());
    }

    #[test]
    fn take_chunk_resets_state() {
        let mut u = unit();
        u.note_retired();
        u.note_local_write(LineAddr(5));
        let p = u.take_chunk(TerminationReason::Syscall, Cycle(9), 2).unwrap();
        assert_eq!(p.icount, 1);
        assert_eq!(p.timestamp, Cycle(9));
        assert_eq!(p.rsw, 2);
        assert_eq!(p.tid, ThreadId(1));
        assert_eq!(u.chunk_icount(), 0);
        assert!(u.check_remote(LineAddr(5), false).is_none(), "signatures cleared");
        // Still recording the same owner; a fresh chunk accumulates.
        assert!(u.is_recording());
        u.note_retired();
        assert_eq!(u.chunk_icount(), 1);
    }

    #[test]
    fn ic_overflow_fires_at_limit() {
        let cfg = MrrConfig { max_chunk_icount: 3, ..MrrConfig::default() };
        let mut u = MrrUnit::new(CoreId(0), &cfg);
        u.start(ThreadId(0));
        assert!(!u.note_retired());
        assert!(!u.note_retired());
        assert!(u.note_retired(), "third instruction hits the limit");
    }

    #[test]
    fn saturation_fires_when_signature_fills() {
        let cfg = MrrConfig {
            read_sig_bits: 64,
            sig_saturation_permille: 400,
            ..MrrConfig::default()
        };
        let mut u = MrrUnit::new(CoreId(0), &cfg);
        u.start(ThreadId(0));
        u.note_retired();
        let mut fired = false;
        for n in 0..64u32 {
            if u.note_local_read(LineAddr(n * 977)) {
                fired = true;
                break;
            }
        }
        assert!(fired, "64-bit signature must saturate past 40% quickly");
    }

    #[test]
    fn false_positives_are_detected_with_exact_tracking() {
        let cfg = MrrConfig {
            read_sig_bits: 64,
            write_sig_bits: 64,
            track_exact_sets: true,
            sig_saturation_permille: 1000,
            ..MrrConfig::default()
        };
        let mut u = MrrUnit::new(CoreId(0), &cfg);
        u.start(ThreadId(0));
        u.note_retired();
        for n in 0..24u32 {
            u.note_local_read(LineAddr(n));
        }
        // Scan for an address that hits the signature but not the set.
        let fp = (1000..200_000u32).find_map(|n| {
            u.check_remote(LineAddr(n), true).and_then(|(_, fp)| fp.then_some(n))
        });
        assert!(fp.is_some(), "a 64-bit signature with 24 lines must alias somewhere");
    }

    #[test]
    #[should_panic(expected = "start() while a chunk is open")]
    fn double_start_panics() {
        let mut u = unit();
        u.start(ThreadId(2));
    }

    #[test]
    fn bank_routes_conflicts_to_other_cores_only() {
        let mut bank = RecorderBank::new(MrrConfig::default(), 2).unwrap();
        bank.unit_mut(CoreId(0)).start(ThreadId(0));
        bank.unit_mut(CoreId(1)).start(ThreadId(1));
        bank.unit_mut(CoreId(1)).note_retired();
        bank.unit_mut(CoreId(1)).note_local_read(LineAddr(7));
        let hits = bank.conflicting_cores(CoreId(0), LineAddr(7), true);
        assert_eq!(hits, vec![(CoreId(1), TerminationReason::ConflictWar)]);
        let none = bank.conflicting_cores(CoreId(1), LineAddr(7), true);
        assert!(none.is_empty(), "a core never conflicts with itself");
    }

    #[test]
    fn bank_terminate_accounts_and_buffers() {
        let mut bank = RecorderBank::new(MrrConfig::default(), 1).unwrap();
        bank.unit_mut(CoreId(0)).start(ThreadId(0));
        bank.unit_mut(CoreId(0)).note_retired();
        let (p, stall) = bank.terminate_chunk(CoreId(0), TerminationReason::Syscall, Cycle(5), 0);
        let p = p.unwrap();
        assert_eq!(stall, 0, "an empty cbuf never stalls");
        assert_eq!(p.icount, 1);
        assert_eq!(bank.stats().total_chunks(), 1);
        // The packet sits in the CBUF until the DMA engine gets time.
        let (none, _) = bank.drain_cmem();
        assert!(none.is_empty());
        bank.advance(CoreId(0), 1_000);
        let (drained, bytes) = bank.drain_cmem();
        assert_eq!(drained.len(), 1);
        assert!(bytes > 0);
    }

    #[test]
    fn flush_all_recovers_buffered_packets() {
        let mut bank = RecorderBank::new(MrrConfig::default(), 2).unwrap();
        for c in [CoreId(0), CoreId(1)] {
            bank.unit_mut(c).start(ThreadId(c.0 as u32));
            bank.unit_mut(c).note_retired();
            bank.terminate_chunk(c, TerminationReason::SphereEnd, Cycle(c.0 as u64 + 1), 0);
        }
        bank.flush_all();
        let (drained, _) = bank.drain_cmem();
        assert_eq!(drained.len(), 2);
    }
}
