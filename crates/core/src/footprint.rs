//! Per-chunk read/write footprints — the conflict evidence behind
//! parallel replay.
//!
//! A [`crate::chunk::ChunkPacket`] says *when* a chunk committed but not
//! *what* it touched; the signatures that detected its conflicts are
//! Bloom filters and cannot be inverted. To replay chunks concurrently
//! the replayer needs the exact cache-line read and write sets of every
//! chunk, so the recorder also logs a [`ChunkFootprint`] per chunk (and
//! per injected input event), keyed by the same global timestamp that
//! orders the chunk log. Two timeline nodes must then be ordered at
//! replay only if they are from the same thread or their footprints
//! actually conflict (write/write or read/write on a shared line) — the
//! conflict-equivalence relaxation of the recorded total order.
//!
//! The footprint log is an *optional* sidecar: legacy recordings and
//! salvaged prefixes may lack it (or hold only a prefix), in which case
//! parallel replay falls back to the serial path. Missing footprints
//! never affect correctness, only replay-time parallelism.

use qr_common::frame::{self, PayloadKind};
use qr_common::{varint, Cycle, LineAddr, QrError, Result};
use std::collections::BTreeMap;

/// The read/write cache-line sets of one chunk (or one input event's
/// kernel-side memory activity), keyed by its global timestamp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChunkFootprint {
    /// Global timestamp of the chunk packet / input event this footprint
    /// belongs to (unique across a recording).
    pub ts: Cycle,
    /// Lines read, sorted and deduplicated.
    pub reads: Vec<LineAddr>,
    /// Lines written, sorted and deduplicated.
    pub writes: Vec<LineAddr>,
}

impl ChunkFootprint {
    /// Builds a footprint, sorting and deduplicating the line sets.
    pub fn new(ts: Cycle, mut reads: Vec<LineAddr>, mut writes: Vec<LineAddr>) -> ChunkFootprint {
        reads.sort_unstable();
        reads.dedup();
        writes.sort_unstable();
        writes.dedup();
        ChunkFootprint { ts, reads, writes }
    }

    /// Whether executing `self` and `other` concurrently could produce a
    /// different memory image than the recorded order: some shared line
    /// is written by at least one of them.
    pub fn conflicts_with(&self, other: &ChunkFootprint) -> bool {
        sorted_intersects(&self.writes, &other.writes)
            || sorted_intersects(&self.writes, &other.reads)
            || sorted_intersects(&self.reads, &other.writes)
    }
}

/// Whether two sorted, deduplicated line slices share an element.
fn sorted_intersects(a: &[LineAddr], b: &[LineAddr]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// The footprint sidecar log of a recording: one [`ChunkFootprint`] per
/// chunk packet and per input event, indexed by global timestamp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FootprintLog {
    entries: BTreeMap<u64, ChunkFootprint>,
}

impl FootprintLog {
    /// An empty log.
    pub fn new() -> FootprintLog {
        FootprintLog::default()
    }

    /// Number of footprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no footprints.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a footprint. Timestamps are unique across a recording, so
    /// a colliding insert unions the line sets (defensive, not expected).
    pub fn push(&mut self, fp: ChunkFootprint) {
        match self.entries.entry(fp.ts.0) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(fp);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let merged = o.get_mut();
                let mut reads = std::mem::take(&mut merged.reads);
                let mut writes = std::mem::take(&mut merged.writes);
                reads.extend(fp.reads);
                writes.extend(fp.writes);
                *merged = ChunkFootprint::new(fp.ts, reads, writes);
            }
        }
    }

    /// The footprint stamped `ts`, if recorded.
    pub fn get(&self, ts: Cycle) -> Option<&ChunkFootprint> {
        self.entries.get(&ts.0)
    }

    /// All footprints in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &ChunkFootprint> {
        self.entries.values()
    }

    /// Serializes the log as a framed container (one record per
    /// footprint: varint timestamp, set sizes, then delta-coded sorted
    /// line numbers).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = frame::Writer::new(PayloadKind::FootprintLog);
        let mut payload = Vec::new();
        for fp in self.entries.values() {
            payload.clear();
            varint::write_u64(&mut payload, fp.ts.0);
            varint::write_u64(&mut payload, fp.reads.len() as u64);
            varint::write_u64(&mut payload, fp.writes.len() as u64);
            write_lines(&mut payload, &fp.reads);
            write_lines(&mut payload, &fp.writes);
            w.record(&payload);
        }
        w.finish()
    }

    /// Strictly decodes a framed footprint log.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] for framing faults or malformed
    /// footprint payloads.
    pub fn from_bytes(buf: &[u8]) -> Result<FootprintLog> {
        let mut log = FootprintLog::new();
        for record in frame::read(buf, PayloadKind::FootprintLog, "footprint log")? {
            log.push(decode_entry(record)?);
        }
        Ok(log)
    }

    /// Tolerantly decodes the longest valid prefix of a (possibly torn)
    /// footprint log. The result may cover only part of the recording;
    /// parallel replay checks coverage and falls back to serial replay
    /// when footprints are missing.
    pub fn salvage_from_bytes(buf: &[u8]) -> FootprintLog {
        let mut log = FootprintLog::new();
        for record in frame::scan(buf).records {
            match decode_entry(record) {
                Ok(fp) => log.push(fp),
                Err(_) => break,
            }
        }
        log
    }
}

/// Appends a sorted, deduplicated line set as first-absolute-then-delta
/// varints.
fn write_lines(buf: &mut Vec<u8>, lines: &[LineAddr]) {
    let mut prev = 0u32;
    for (i, line) in lines.iter().enumerate() {
        if i == 0 {
            varint::write_u64(buf, u64::from(line.0));
        } else {
            varint::write_u64(buf, u64::from(line.0 - prev));
        }
        prev = line.0;
    }
}

/// Decodes one footprint record.
fn decode_entry(buf: &[u8]) -> Result<ChunkFootprint> {
    let corrupt = |detail: &str, offset: usize| QrError::Corrupt {
        what: "footprint log".to_string(),
        offset: offset as u64,
        detail: detail.to_string(),
    };
    let mut off = 0usize;
    let next = |buf: &[u8], off: &mut usize| -> Result<u64> {
        let (v, n) = varint::read_u64(&buf[*off..])?;
        *off += n;
        Ok(v)
    };
    let ts = next(buf, &mut off)?;
    let n_reads = next(buf, &mut off)?;
    let n_writes = next(buf, &mut off)?;
    let max_lines = 1u64 << 26; // the whole 32-bit space has 2^26 lines
    if n_reads > max_lines || n_writes > max_lines {
        return Err(corrupt("absurd footprint set size", off));
    }
    let read_lines = |count: u64, off: &mut usize| -> Result<Vec<LineAddr>> {
        let mut lines = Vec::with_capacity(count as usize);
        let mut prev: Option<u32> = None;
        for _ in 0..count {
            let raw = next(buf, off)?;
            let value = match prev {
                None => raw,
                // Strictly ascending: a zero delta means a duplicate.
                Some(_) if raw == 0 => {
                    return Err(corrupt("non-ascending footprint line", *off));
                }
                Some(p) => u64::from(p) + raw,
            };
            if value > u64::from(u32::MAX >> qr_common::ids::CACHE_LINE_SHIFT) {
                return Err(corrupt("footprint line out of range", *off));
            }
            prev = Some(value as u32);
            lines.push(LineAddr(value as u32));
        }
        Ok(lines)
    };
    let reads = read_lines(n_reads, &mut off)?;
    let writes = read_lines(n_writes, &mut off)?;
    if off != buf.len() {
        return Err(corrupt("trailing bytes in footprint record", off));
    }
    Ok(ChunkFootprint { ts: Cycle(ts), reads, writes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(ts: u64, reads: &[u32], writes: &[u32]) -> ChunkFootprint {
        ChunkFootprint::new(
            Cycle(ts),
            reads.iter().map(|&l| LineAddr(l)).collect(),
            writes.iter().map(|&l| LineAddr(l)).collect(),
        )
    }

    fn sample_log() -> FootprintLog {
        let mut log = FootprintLog::new();
        log.push(fp(10, &[1, 2, 3], &[3]));
        log.push(fp(25, &[], &[0x100, 0x101]));
        log.push(fp(26, &[7], &[]));
        log.push(fp(1000, &[0x03ff_ffff], &[0, 0x03ff_ffff]));
        log
    }

    #[test]
    fn round_trips_through_bytes() {
        let log = sample_log();
        let bytes = log.to_bytes();
        assert_eq!(FootprintLog::from_bytes(&bytes).unwrap(), log);
    }

    #[test]
    fn constructor_sorts_and_dedups() {
        let f = fp(1, &[5, 1, 5, 3], &[2, 2]);
        assert_eq!(f.reads, vec![LineAddr(1), LineAddr(3), LineAddr(5)]);
        assert_eq!(f.writes, vec![LineAddr(2)]);
    }

    #[test]
    fn conflict_requires_a_write_on_a_shared_line() {
        let a = fp(1, &[1, 2], &[3]);
        let b = fp(2, &[2], &[4]);
        assert!(!a.conflicts_with(&b), "read/read sharing is not a conflict");
        let c = fp(3, &[3], &[]);
        assert!(a.conflicts_with(&c), "war/raw on line 3");
        assert!(c.conflicts_with(&a), "symmetric");
        let d = fp(4, &[], &[3]);
        assert!(a.conflicts_with(&d), "waw on line 3");
    }

    #[test]
    fn colliding_timestamps_union() {
        let mut log = FootprintLog::new();
        log.push(fp(5, &[1], &[2]));
        log.push(fp(5, &[3], &[2, 4]));
        let merged = log.get(Cycle(5)).unwrap();
        assert_eq!(merged.reads, vec![LineAddr(1), LineAddr(3)]);
        assert_eq!(merged.writes, vec![LineAddr(2), LineAddr(4)]);
    }

    #[test]
    fn truncation_salvages_an_entry_prefix() {
        let log = sample_log();
        let bytes = log.to_bytes();
        let cut = bytes.len() - 3;
        assert!(FootprintLog::from_bytes(&bytes[..cut]).is_err());
        let salvaged = FootprintLog::salvage_from_bytes(&bytes[..cut]);
        assert_eq!(salvaged.len(), log.len() - 1);
        assert_eq!(salvaged.get(Cycle(26)), log.get(Cycle(26)));
        assert_eq!(salvaged.get(Cycle(1000)), None);
    }

    #[test]
    fn bit_flips_never_panic() {
        let bytes = sample_log().to_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                let _ = FootprintLog::from_bytes(&bad);
                let _ = FootprintLog::salvage_from_bytes(&bad);
            }
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let mut w = frame::Writer::new(PayloadKind::ChunkLog);
        w.record(b"\x01\x00\x00");
        assert!(FootprintLog::from_bytes(&w.finish()).is_err());
    }
}
