//! Recording-hardware configuration.

use crate::encoding::Encoding;
use qr_common::{QrError, Result};

/// Parameters of the per-core memory race recorder and its buffering path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrrConfig {
    /// Read-signature size in bits (power of two, >= 64).
    pub read_sig_bits: u32,
    /// Write-signature size in bits (power of two, >= 64).
    pub write_sig_bits: u32,
    /// Hash functions per signature.
    pub sig_hashes: u32,
    /// Occupancy limit in permille; a chunk terminates when either
    /// signature passes it (false-positive pressure control).
    pub sig_saturation_permille: u32,
    /// Maximum user instructions per chunk (counter width).
    pub max_chunk_icount: u64,
    /// CBUF capacity in packets.
    pub cbuf_entries: usize,
    /// DMA cycles to move one packet from CBUF to CMEM (determines the
    /// stall seen when the CBUF is full).
    pub cbuf_drain_cycles: u64,
    /// CMEM capacity in bytes.
    pub cmem_capacity: usize,
    /// CMEM fill level (bytes) at which the drain interrupt raises.
    pub cmem_interrupt_threshold: usize,
    /// On-disk packet encoding.
    pub encoding: Encoding,
    /// Track exact line sets alongside signatures to measure the
    /// false-positive conflict rate (evaluation aid; real hardware has no
    /// such mode).
    pub track_exact_sets: bool,
}

impl Default for MrrConfig {
    fn default() -> Self {
        // Sized like the paper's prototype structures: kilobit-scale
        // signatures, a 1 Mi-instruction chunk counter, a small CBUF and
        // a 64 KiB CMEM drained at half occupancy.
        MrrConfig {
            read_sig_bits: 2048,
            write_sig_bits: 1024,
            sig_hashes: 2,
            sig_saturation_permille: 500,
            max_chunk_icount: 1 << 20,
            cbuf_entries: 64,
            cbuf_drain_cycles: 16,
            // The CMEM region is scaled to the reproduction's workload
            // sizes (the prototype used a multi-MiB region for
            // billion-instruction runs): small enough that the drain
            // interrupt actually fires during reference-scale recordings.
            cmem_capacity: 4 * 1024,
            cmem_interrupt_threshold: 1024,
            encoding: Encoding::Delta,
            track_exact_sets: false,
        }
    }
}

impl MrrConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        for (name, bits) in [("read_sig_bits", self.read_sig_bits), ("write_sig_bits", self.write_sig_bits)]
        {
            if bits < 64 || !bits.is_power_of_two() {
                return Err(QrError::InvalidConfig(format!(
                    "{name} must be a power of two >= 64, got {bits}"
                )));
            }
        }
        if self.sig_hashes == 0 || self.sig_hashes > 8 {
            return Err(QrError::InvalidConfig("sig_hashes must be in 1..=8".into()));
        }
        if self.sig_saturation_permille == 0 || self.sig_saturation_permille > 1000 {
            return Err(QrError::InvalidConfig(
                "sig_saturation_permille must be in 1..=1000".into(),
            ));
        }
        if self.max_chunk_icount == 0 {
            return Err(QrError::InvalidConfig("max_chunk_icount must be nonzero".into()));
        }
        if self.cbuf_entries == 0 {
            return Err(QrError::InvalidConfig("cbuf_entries must be nonzero".into()));
        }
        if self.cmem_interrupt_threshold > self.cmem_capacity {
            return Err(QrError::InvalidConfig(
                "cmem_interrupt_threshold exceeds cmem_capacity".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        MrrConfig::default().validate().unwrap();
    }

    #[test]
    fn each_constraint_is_enforced() {
        let ok = MrrConfig::default;
        assert!(MrrConfig { read_sig_bits: 48, ..ok() }.validate().is_err());
        assert!(MrrConfig { write_sig_bits: 1000, ..ok() }.validate().is_err());
        assert!(MrrConfig { sig_hashes: 0, ..ok() }.validate().is_err());
        assert!(MrrConfig { sig_hashes: 9, ..ok() }.validate().is_err());
        assert!(MrrConfig { sig_saturation_permille: 0, ..ok() }.validate().is_err());
        assert!(MrrConfig { sig_saturation_permille: 1500, ..ok() }.validate().is_err());
        assert!(MrrConfig { max_chunk_icount: 0, ..ok() }.validate().is_err());
        assert!(MrrConfig { cbuf_entries: 0, ..ok() }.validate().is_err());
        assert!(MrrConfig { cmem_interrupt_threshold: 1 << 30, ..ok() }.validate().is_err());
    }
}
