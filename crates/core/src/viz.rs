//! Chunk-log visualization: interleaving timelines and dependency graphs.
//!
//! Debugging a recorded concurrency bug usually starts with *seeing* the
//! interleaving. This module renders a [`ChunkLog`] two ways:
//!
//! - [`timeline`] — a per-thread lane diagram in plain text, one column
//!   per thread, chunks in global order, sized by magnitude and labelled
//!   with their termination reason;
//! - [`to_dot`] — a Graphviz digraph of the chunk sequence with
//!   program-order edges per thread and cross-thread edges at conflict
//!   terminations (a conflict-terminated chunk's successor in global
//!   order is, by construction, the dependent side).

use crate::chunk::ChunkPacket;
use crate::log::ChunkLog;
use std::fmt::Write as _;

/// Renders a per-thread lane timeline, at most `max_rows` chunks.
///
/// Each row is one chunk in global (timestamp) order; the chunk appears
/// in its thread's lane as `<icount>:<reason>`.
pub fn timeline(log: &ChunkLog, max_rows: usize) -> String {
    let Ok(schedule) = log.replay_schedule() else {
        return "(unorderable log: duplicate timestamps)".to_string();
    };
    let threads: Vec<_> = log.per_thread().into_keys().collect();
    if threads.is_empty() {
        return "(empty log)".to_string();
    }
    let lane_width = 16usize;
    let mut out = String::new();
    let _ = write!(out, "{:>10} ", "ts");
    for tid in &threads {
        let _ = write!(out, "{:^lane_width$}", tid.to_string());
    }
    out.push('\n');
    let _ = write!(out, "{:->10}-", "");
    for _ in &threads {
        let _ = write!(out, "{:-<lane_width$}", "");
    }
    out.push('\n');
    for packet in schedule.iter().take(max_rows) {
        let _ = write!(out, "{:>10} ", packet.timestamp.0);
        for tid in &threads {
            if *tid == packet.tid {
                let cell = format!("{}:{}", packet.icount, packet.reason.label());
                let _ = write!(out, "{:^lane_width$}", cell);
            } else {
                let _ = write!(out, "{:^lane_width$}", "·");
            }
        }
        out.push('\n');
    }
    if schedule.len() > max_rows {
        let _ = writeln!(out, "... ({} more chunks)", schedule.len() - max_rows);
    }
    out
}

fn node_name(packet: &ChunkPacket) -> String {
    format!("c{}_{}", packet.tid.0, packet.timestamp.0)
}

/// Renders the chunk schedule as a Graphviz digraph.
///
/// Solid edges are per-thread program order; dashed red edges connect
/// each conflict-terminated chunk to the globally next chunk (the access
/// that cut it). Pipe the output through `dot -Tsvg` to draw it.
pub fn to_dot(log: &ChunkLog, max_chunks: usize) -> String {
    let Ok(schedule) = log.replay_schedule() else {
        return "digraph chunks {}".to_string();
    };
    let shown: Vec<_> = schedule.iter().take(max_chunks).collect();
    let mut out = String::from("digraph chunks {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
    for packet in &shown {
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\nic={} ts={}\\n{}\"{}];",
            node_name(packet),
            packet.tid,
            packet.icount,
            packet.timestamp.0,
            packet.reason.label(),
            if packet.reason.is_conflict() { ", color=red" } else { "" },
        );
    }
    // Program-order edges within each thread.
    let mut last_of_thread: std::collections::BTreeMap<u32, &ChunkPacket> = Default::default();
    for packet in &shown {
        if let Some(prev) = last_of_thread.insert(packet.tid.0, packet) {
            let _ = writeln!(out, "  {} -> {};", node_name(prev), node_name(packet));
        }
    }
    // Conflict edges: victim chunk -> globally next chunk.
    for pair in shown.windows(2) {
        if pair[0].reason.is_conflict() && pair[0].tid != pair[1].tid {
            let _ = writeln!(
                out,
                "  {} -> {} [style=dashed, color=red, constraint=false];",
                node_name(pair[0]),
                node_name(pair[1]),
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::TerminationReason;
    use qr_common::{CoreId, Cycle, ThreadId};

    fn log() -> ChunkLog {
        [
            ChunkPacket {
                tid: ThreadId(0),
                core: CoreId(0),
                icount: 10,
                timestamp: Cycle(1),
                rsw: 0,
                reason: TerminationReason::ConflictWar,
            },
            ChunkPacket {
                tid: ThreadId(1),
                core: CoreId(1),
                icount: 20,
                timestamp: Cycle(2),
                rsw: 0,
                reason: TerminationReason::Syscall,
            },
            ChunkPacket {
                tid: ThreadId(0),
                core: CoreId(0),
                icount: 5,
                timestamp: Cycle(3),
                rsw: 0,
                reason: TerminationReason::SphereEnd,
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn timeline_shows_one_row_per_chunk_in_order() {
        let text = timeline(&log(), 100);
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len(), 5, "header + rule + 3 chunks");
        assert!(rows[2].contains("10:war"));
        assert!(rows[3].contains("20:syscall"));
        assert!(rows[4].contains("5:end"));
    }

    #[test]
    fn timeline_truncates_with_a_note() {
        let text = timeline(&log(), 1);
        assert!(text.contains("2 more chunks"));
    }

    #[test]
    fn empty_log_renders_gracefully() {
        assert_eq!(timeline(&ChunkLog::new(), 10), "(empty log)");
        assert!(to_dot(&ChunkLog::new(), 10).starts_with("digraph"));
    }

    #[test]
    fn dot_contains_nodes_program_edges_and_conflict_edges() {
        let dot = to_dot(&log(), 100);
        assert!(dot.contains("c0_1"));
        assert!(dot.contains("c1_2"));
        assert!(dot.contains("c0_1 -> c0_3"), "program order edge: {dot}");
        assert!(dot.contains("c0_1 -> c1_2 [style=dashed"), "conflict edge: {dot}");
        assert!(dot.contains("color=red"));
        assert!(dot.ends_with("}\n"));
    }
}
