//! Hashed address signatures (Bloom-style read/write sets).
//!
//! The MRR cannot afford exact per-chunk address sets, so it hashes each
//! cache-line address into `k` positions of a bit vector. Membership
//! queries may report false positives — which only cause extra, safe
//! chunk terminations — never false negatives, which would lose a
//! dependency. The signature-size/chunk-length trade-off is one of the
//! design points the ablation benches sweep (experiment A1).

use qr_common::LineAddr;

/// A Bloom-style signature over cache-line addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    bits: Vec<u64>,
    num_bits: u32,
    hashes: u32,
    inserted: u32,
    set_bits: u32,
}

impl Signature {
    /// Creates an empty signature of `num_bits` bits (power of two) probed
    /// by `hashes` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `num_bits` is not a power of two or `hashes` is zero —
    /// geometry is validated by [`crate::config::MrrConfig::validate`].
    pub fn new(num_bits: u32, hashes: u32) -> Signature {
        assert!(num_bits.is_power_of_two() && num_bits >= 64, "signature bits: power of two >= 64");
        assert!(hashes > 0, "need at least one hash function");
        Signature {
            bits: vec![0u64; (num_bits / 64) as usize],
            num_bits,
            hashes,
            inserted: 0,
            set_bits: 0,
        }
    }

    /// H3-style mixing: derive the i-th probe position for a line.
    fn position(&self, line: LineAddr, i: u32) -> u32 {
        // One round of SplitMix64 finalization per (line, i) pair: cheap
        // and well distributed, exactly reproducible in hardware terms.
        let mut z = (line.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z as u32) & (self.num_bits - 1)
    }

    /// Inserts a line address.
    pub fn insert(&mut self, line: LineAddr) {
        for i in 0..self.hashes {
            let pos = self.position(line, i);
            let (word, bit) = ((pos / 64) as usize, pos % 64);
            if self.bits[word] & (1 << bit) == 0 {
                self.bits[word] |= 1 << bit;
                self.set_bits += 1;
            }
        }
        self.inserted += 1;
    }

    /// Whether the signature may contain `line` (false positives
    /// possible, false negatives impossible).
    pub fn maybe_contains(&self, line: LineAddr) -> bool {
        (0..self.hashes).all(|i| {
            let pos = self.position(line, i);
            self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0
        })
    }

    /// Clears all bits (chunk termination).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
        self.set_bits = 0;
    }

    /// Number of insert operations since the last clear.
    pub fn inserted(&self) -> u32 {
        self.inserted
    }

    /// Occupancy in permille (0..=1000) — the saturation metric the
    /// termination logic thresholds on.
    pub fn occupancy_permille(&self) -> u32 {
        self.set_bits * 1000 / self.num_bits
    }

    /// Whether the signature is empty.
    pub fn is_empty(&self) -> bool {
        self.set_bits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut s = Signature::new(256, 2);
        for n in 0..100u32 {
            s.insert(LineAddr(n * 37));
        }
        for n in 0..100u32 {
            assert!(s.maybe_contains(LineAddr(n * 37)));
        }
    }

    #[test]
    fn empty_signature_contains_nothing() {
        let s = Signature::new(256, 2);
        assert!(s.is_empty());
        for n in 0..100u32 {
            assert!(!s.maybe_contains(LineAddr(n)));
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = Signature::new(256, 2);
        s.insert(LineAddr(1));
        assert!(!s.is_empty());
        assert_eq!(s.inserted(), 1);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.inserted(), 0);
        assert_eq!(s.occupancy_permille(), 0);
        assert!(!s.maybe_contains(LineAddr(1)));
    }

    #[test]
    fn occupancy_grows_with_inserts() {
        let mut s = Signature::new(128, 2);
        let mut last = 0;
        for n in 0..64u32 {
            s.insert(LineAddr(n.wrapping_mul(2654435761)));
            assert!(s.occupancy_permille() >= last);
            last = s.occupancy_permille();
        }
        assert!(last > 300, "64 double-hashed inserts should fill >30% of 128 bits");
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut s = Signature::new(1024, 2);
        for n in 0..64u32 {
            s.insert(LineAddr(n));
        }
        let fps = (1000..3000u32).filter(|&n| s.maybe_contains(LineAddr(n))).count();
        // 64 inserts into 1024 bits with k=2: expected fp rate ~1.3%.
        assert!(fps < 120, "false positive rate too high: {fps}/2000");
    }

    #[test]
    fn bigger_signatures_have_fewer_false_positives() {
        let count = |bits: u32| {
            let mut s = Signature::new(bits, 2);
            for n in 0..128u32 {
                s.insert(LineAddr(n));
            }
            (10_000..20_000u32).filter(|&n| s.maybe_contains(LineAddr(n))).count()
        };
        assert!(count(4096) < count(256));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        Signature::new(100, 2);
    }
}
