//! Recorder metrics (`qr-obs` hooks).
//!
//! Handles are resolved once into statics so the per-chunk hot path is
//! a single relaxed atomic add; the registry lock is only taken on
//! first use. Everything here is observational — values never feed back
//! into the recording (see the determinism rule in `qr-obs`).

use std::sync::{Arc, OnceLock};

use qr_obs::{Counter, Histogram};

use crate::chunk::TerminationReason;
use crate::encoding::Encoding;
use crate::po::{DeriveStats, EdgeKind};

fn chunk_counters() -> &'static [Arc<Counter>; TerminationReason::ALL.len()] {
    static HANDLES: OnceLock<[Arc<Counter>; TerminationReason::ALL.len()]> = OnceLock::new();
    HANDLES.get_or_init(|| {
        TerminationReason::ALL.map(|reason| {
            qr_obs::global().counter(
                "qr_recorder_chunks_total",
                "Chunks emitted, by termination reason",
                &[("reason", reason.label())],
            )
        })
    })
}

fn chunk_size_histogram() -> &'static Arc<Histogram> {
    static HANDLE: OnceLock<Arc<Histogram>> = OnceLock::new();
    HANDLE.get_or_init(|| {
        qr_obs::global().histogram(
            "qr_recorder_chunk_size_insns",
            "Chunk sizes in user instructions",
            &[],
            &[16, 64, 256, 1024, 4096, 16384, 65536, 262_144],
        )
    })
}

fn log_byte_counters() -> &'static [Arc<Counter>; Encoding::ALL.len()] {
    static HANDLES: OnceLock<[Arc<Counter>; Encoding::ALL.len()]> = OnceLock::new();
    HANDLES.get_or_init(|| {
        Encoding::ALL.map(|enc| {
            qr_obs::global().counter(
                "qr_recorder_log_bytes_total",
                "Serialized chunk-log bytes, by encoding",
                &[("encoding", enc.name())],
            )
        })
    })
}

/// Accounts one emitted chunk.
pub(crate) fn chunk_emitted(reason: TerminationReason, icount: u64) {
    if !qr_obs::enabled() {
        return;
    }
    chunk_counters()[reason.code() as usize].inc();
    chunk_size_histogram().observe(icount);
}

/// Accounts one serialized chunk log.
pub(crate) fn log_serialized(encoding: Encoding, bytes: usize) {
    if !qr_obs::enabled() {
        return;
    }
    log_byte_counters()[encoding.tag() as usize].add(bytes as u64);
}

/// `qr_core_po_edges_total{kind=...}` handles: the implicit program
/// order plus every logged [`EdgeKind`], in a fixed label order.
fn po_edge_counters() -> &'static [Arc<Counter>; EdgeKind::ALL.len() + 1] {
    static HANDLES: OnceLock<[Arc<Counter>; EdgeKind::ALL.len() + 1]> = OnceLock::new();
    HANDLES.get_or_init(|| {
        ["program", EdgeKind::ALL[0].label(), EdgeKind::ALL[1].label(), EdgeKind::ALL[2].label()]
            .map(|kind| {
                qr_obs::global().counter(
                    "qr_core_po_edges_total",
                    "Partial-order happens-before edges derived, by kind",
                    &[("kind", kind)],
                )
            })
    })
}

/// Accounts one partial-order derivation.
pub(crate) fn order_derived(stats: &DeriveStats) {
    if !qr_obs::enabled() {
        return;
    }
    let handles = po_edge_counters();
    handles[0].add(stats.program_edges);
    for (i, kind) in EdgeKind::ALL.into_iter().enumerate() {
        let count = match kind {
            EdgeKind::Conflict => stats.conflict_edges,
            EdgeKind::Spawn => stats.spawn_edges,
            EdgeKind::Input => stats.input_edges,
        };
        handles[i + 1].add(count);
    }
}

/// Accounts one order-log decode that found corruption — a strict
/// reject, or a salvage that stopped before the end of the container.
pub(crate) fn order_rejected() {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    if !qr_obs::enabled() {
        return;
    }
    HANDLE
        .get_or_init(|| {
            qr_obs::global().counter(
                "qr_core_po_rejects_total",
                "Order-log decodes that found corruption (strict reject or salvage stop)",
                &[],
            )
        })
        .inc();
}

/// Publishes the size of the last serialized ordering log.
pub(crate) fn order_serialized(bytes: usize) {
    static HANDLE: OnceLock<Arc<qr_obs::Gauge>> = OnceLock::new();
    if !qr_obs::enabled() {
        return;
    }
    HANDLE
        .get_or_init(|| {
            qr_obs::global().gauge(
                "qr_core_po_log_bytes",
                "Serialized partial-order log size in bytes (last derivation)",
                &[],
            )
        })
        .set(bytes as i64);
}
