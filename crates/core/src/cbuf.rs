//! The per-core chunk buffer (CBUF).
//!
//! Terminated chunks queue in a small hardware buffer; a DMA engine moves
//! one packet to the CMEM region every `drain_cycles` cycles of core
//! time. If the buffer is full when a chunk terminates, the core stalls
//! for one DMA period while the oldest packet is forced out — the only
//! way the recording hardware slows the processor down, and the quantity
//! experiment A2 sweeps.
//!
//! Drive the model with [`Cbuf::advance`] (elapsed core cycles), push
//! packets with [`Cbuf::push`], and collect DMA-completed packets with
//! [`Cbuf::pop_drained`].

use crate::chunk::ChunkPacket;
use std::collections::VecDeque;

/// A bounded chunk queue with a constant-rate DMA drain.
#[derive(Debug, Clone)]
pub struct Cbuf {
    /// Packets waiting for the DMA engine.
    queue: VecDeque<ChunkPacket>,
    /// Packets the DMA has moved out, awaiting collection into CMEM.
    ready: VecDeque<ChunkPacket>,
    capacity: usize,
    drain_cycles: u64,
    /// Core cycles accumulated toward the next DMA completion.
    elapsed: u64,
    total_stall_cycles: u64,
}

impl Cbuf {
    /// Creates a buffer of `capacity` packets drained at one packet per
    /// `drain_cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (validated by `MrrConfig`).
    pub fn new(capacity: usize, drain_cycles: u64) -> Cbuf {
        assert!(capacity > 0, "cbuf capacity must be nonzero");
        Cbuf {
            queue: VecDeque::with_capacity(capacity),
            ready: VecDeque::new(),
            capacity,
            drain_cycles: drain_cycles.max(1),
            elapsed: 0,
            total_stall_cycles: 0,
        }
    }

    /// Packets still waiting for DMA.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no packets wait for DMA.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Advances DMA time by `cycles` of core execution, moving packets to
    /// the ready stage as their transfers complete.
    pub fn advance(&mut self, cycles: u64) {
        self.elapsed += cycles;
        while self.elapsed >= self.drain_cycles {
            self.elapsed -= self.drain_cycles;
            match self.queue.pop_front() {
                Some(p) => self.ready.push_back(p),
                None => {
                    // Idle DMA does not bank time.
                    self.elapsed = 0;
                    break;
                }
            }
        }
    }

    /// Pushes a terminated chunk, returning the stall cycles the core
    /// suffered (nonzero only when the buffer was full, in which case the
    /// core waited one DMA period for the oldest packet to leave).
    pub fn push(&mut self, packet: ChunkPacket) -> u64 {
        let mut stall = 0;
        if self.queue.len() >= self.capacity {
            stall = self.drain_cycles;
            self.total_stall_cycles += stall;
            let oldest = self.queue.pop_front().expect("full queue is nonempty");
            self.ready.push_back(oldest);
        }
        self.queue.push_back(packet);
        stall
    }

    /// Pops the next DMA-completed packet, if any.
    pub fn pop_drained(&mut self) -> Option<ChunkPacket> {
        self.ready.pop_front()
    }

    /// Forces every packet out, queued or ready (sphere teardown).
    pub fn flush(&mut self) -> Vec<ChunkPacket> {
        self.elapsed = 0;
        self.ready.drain(..).chain(self.queue.drain(..)).collect()
    }

    /// Cumulative stall cycles caused by buffer pressure.
    pub fn total_stall_cycles(&self) -> u64 {
        self.total_stall_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::TerminationReason;
    use qr_common::{CoreId, Cycle, ThreadId};

    fn packet(n: u64) -> ChunkPacket {
        ChunkPacket {
            tid: ThreadId(0),
            core: CoreId(0),
            icount: n,
            timestamp: Cycle(n),
            rsw: 0,
            reason: TerminationReason::Syscall,
        }
    }

    #[test]
    fn dma_completes_one_packet_per_period() {
        let mut b = Cbuf::new(4, 10);
        b.push(packet(1));
        b.push(packet(2));
        assert!(b.pop_drained().is_none(), "no time has passed");
        b.advance(10);
        assert_eq!(b.pop_drained().unwrap().icount, 1);
        assert!(b.pop_drained().is_none());
        b.advance(25);
        assert_eq!(b.pop_drained().unwrap().icount, 2);
    }

    #[test]
    fn order_is_fifo_end_to_end() {
        let mut b = Cbuf::new(4, 1);
        for n in 1..=4 {
            b.push(packet(n));
        }
        b.advance(4);
        let order: Vec<u64> = std::iter::from_fn(|| b.pop_drained()).map(|p| p.icount).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn full_buffer_stalls_and_forces_oldest_out() {
        let mut b = Cbuf::new(2, 7);
        assert_eq!(b.push(packet(1)), 0);
        assert_eq!(b.push(packet(2)), 0);
        let stall = b.push(packet(3));
        assert_eq!(stall, 7);
        assert_eq!(b.total_stall_cycles(), 7);
        // The forced packet is not lost.
        assert_eq!(b.pop_drained().unwrap().icount, 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn idle_dma_does_not_bank_time() {
        let mut b = Cbuf::new(4, 10);
        b.advance(1000); // nothing queued
        b.push(packet(1));
        assert!(b.pop_drained().is_none(), "banked idle time must not drain instantly");
        b.advance(10);
        assert!(b.pop_drained().is_some());
    }

    #[test]
    fn flush_returns_ready_then_queued() {
        let mut b = Cbuf::new(4, 10);
        b.push(packet(1));
        b.advance(10);
        b.push(packet(2));
        let all: Vec<u64> = b.flush().into_iter().map(|p| p.icount).collect();
        assert_eq!(all, vec![1, 2]);
        assert!(b.is_empty());
        assert!(b.pop_drained().is_none());
    }
}
