//! Chunk packets — the unit of the memory log.

use qr_common::{CoreId, Cycle, ThreadId};
use std::fmt;

/// Why a chunk terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TerminationReason {
    /// Remote read hit the local write signature (true dependency W→R).
    ConflictRaw = 0,
    /// Remote write hit the local read signature (anti dependency R→W).
    ConflictWar = 1,
    /// Remote write hit the local write signature (output dependency W→W).
    ConflictWaw = 2,
    /// A signature exceeded its occupancy limit.
    SigSaturation = 3,
    /// The chunk instruction counter reached its maximum.
    IcOverflow = 4,
    /// The thread entered the kernel via `syscall`.
    Syscall = 5,
    /// The thread trapped (fault, nondeterministic-read logging point).
    Trap = 6,
    /// The kernel switched the thread off the core.
    ContextSwitch = 7,
    /// Recording stopped (thread exit or sphere teardown).
    SphereEnd = 8,
}

impl TerminationReason {
    /// All reasons, in encoding order.
    pub const ALL: [TerminationReason; 9] = [
        TerminationReason::ConflictRaw,
        TerminationReason::ConflictWar,
        TerminationReason::ConflictWaw,
        TerminationReason::SigSaturation,
        TerminationReason::IcOverflow,
        TerminationReason::Syscall,
        TerminationReason::Trap,
        TerminationReason::ContextSwitch,
        TerminationReason::SphereEnd,
    ];

    /// Encoding byte.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes an encoding byte.
    pub fn from_code(code: u8) -> Option<TerminationReason> {
        TerminationReason::ALL.get(code as usize).copied()
    }

    /// Whether this termination was caused by a detected (or
    /// false-positive) cross-core conflict.
    pub fn is_conflict(self) -> bool {
        matches!(
            self,
            TerminationReason::ConflictRaw
                | TerminationReason::ConflictWar
                | TerminationReason::ConflictWaw
        )
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            TerminationReason::ConflictRaw => "raw",
            TerminationReason::ConflictWar => "war",
            TerminationReason::ConflictWaw => "waw",
            TerminationReason::SigSaturation => "sig-sat",
            TerminationReason::IcOverflow => "ic-ovf",
            TerminationReason::Syscall => "syscall",
            TerminationReason::Trap => "trap",
            TerminationReason::ContextSwitch => "ctx-sw",
            TerminationReason::SphereEnd => "end",
        }
    }
}

impl fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One chunk of the memory log.
///
/// The hardware emits (core, icount, timestamp, rsw, reason); the Capo3
/// software stack tags the packet with the thread that owned the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPacket {
    /// Thread the chunk belongs to (tagged by software at drain).
    pub tid: ThreadId,
    /// Core the chunk executed on.
    pub core: CoreId,
    /// User instructions retired in the chunk.
    pub icount: u64,
    /// Global timestamp at termination; the replayer executes chunks in
    /// increasing timestamp order.
    pub timestamp: Cycle,
    /// Reordered store window: stores still pending in the store buffer
    /// at termination (always 0 in `DrainAtChunk` mode).
    pub rsw: u8,
    /// Why the chunk ended.
    pub reason: TerminationReason,
}

impl fmt::Display for ChunkPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ic={} ts={} rsw={} ({})",
            self.tid, self.core, self.icount, self.timestamp.0, self.rsw, self.reason
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_codes_round_trip() {
        for r in TerminationReason::ALL {
            assert_eq!(TerminationReason::from_code(r.code()), Some(r));
        }
        assert_eq!(TerminationReason::from_code(200), None);
    }

    #[test]
    fn conflict_classification() {
        assert!(TerminationReason::ConflictRaw.is_conflict());
        assert!(TerminationReason::ConflictWar.is_conflict());
        assert!(TerminationReason::ConflictWaw.is_conflict());
        assert!(!TerminationReason::Syscall.is_conflict());
        assert!(!TerminationReason::SigSaturation.is_conflict());
    }

    #[test]
    fn display_is_compact() {
        let p = ChunkPacket {
            tid: ThreadId(1),
            core: CoreId(2),
            icount: 100,
            timestamp: Cycle(7),
            rsw: 3,
            reason: TerminationReason::ConflictRaw,
        };
        let s = p.to_string();
        assert!(s.contains("tid1") && s.contains("core2") && s.contains("raw"));
    }
}
