//! Chunk-packet log encodings.
//!
//! The paper evaluates how chunk packets are compressed before they are
//! written to memory, since log footprint determines how long recording
//! can stay on. Three formats are modeled (experiment E4 compares them):
//!
//! | Encoding | Layout |
//! |---|---|
//! | `Raw`    | fixed 24 bytes: tid u32, core u8, reason u8, rsw u8, pad, icount u64, timestamp u64 |
//! | `Packed` | all fields as LEB128 varints |
//! | `Delta`  | like `Packed` but the timestamp is a zigzag delta against the previous packet in the stream |
//!
//! Two container layouts exist:
//!
//! - **Framed** (current, written by [`Encoding::encode_framed_stream`]):
//!   a crash-consistent [`qr_common::frame`] container. Record 0 is the
//!   stream header (encoding tag + committed total packet count); each
//!   following record is a *packet group* of up to
//!   [`FRAME_GROUP_PACKETS`] packets, CRC-32-protected and independently
//!   decodable (`Delta` restarts its timestamp baseline per group). A
//!   log torn mid-write salvages at group granularity.
//! - **Legacy** (unframed, read-only compatibility): byte 0 is the
//!   encoding tag, then a varint packet count, then the packets, with no
//!   checksums.

use crate::chunk::{ChunkPacket, TerminationReason};
use qr_common::frame::{self, PayloadKind};
use qr_common::{varint, CoreId, Cycle, QrError, Result, ThreadId};

/// Packets per framed record: the salvage granularity of a torn chunk
/// log. Larger groups amortize the 8-byte record overhead; smaller
/// groups lose fewer packets to a tear.
pub const FRAME_GROUP_PACKETS: usize = 64;

/// On-disk chunk-packet format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Encoding {
    /// Fixed-size 24-byte packets (the hardware's native format plus the
    /// software thread tag). The instruction count is a full `u64`: the
    /// configured `max chunk size` does not bound it (uncapped chunks are
    /// legal), so a narrower field would silently truncate long chunks.
    Raw,
    /// Varint-packed fields.
    Packed,
    /// Varint-packed fields with timestamp deltas. The default.
    #[default]
    Delta,
}

impl Encoding {
    /// All encodings.
    pub const ALL: [Encoding; 3] = [Encoding::Raw, Encoding::Packed, Encoding::Delta];

    /// Stable stream tag.
    pub fn tag(self) -> u8 {
        match self {
            Encoding::Raw => 0,
            Encoding::Packed => 1,
            Encoding::Delta => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Encoding> {
        Encoding::ALL.into_iter().find(|e| e.tag() == tag)
    }

    /// Short name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Raw => "raw",
            Encoding::Packed => "packed",
            Encoding::Delta => "delta",
        }
    }

    /// Encodes one packet, appending to `out`. `prev_ts` is the previous
    /// packet's timestamp in stream order (used by `Delta`).
    pub fn encode_packet(self, packet: &ChunkPacket, prev_ts: Cycle, out: &mut Vec<u8>) {
        match self {
            Encoding::Raw => {
                out.extend_from_slice(&packet.tid.0.to_le_bytes());
                out.push(packet.core.0);
                out.push(packet.reason.code());
                out.push(packet.rsw);
                out.push(0);
                out.extend_from_slice(&packet.icount.to_le_bytes());
                out.extend_from_slice(&packet.timestamp.0.to_le_bytes());
            }
            Encoding::Packed | Encoding::Delta => {
                varint::write_u64(out, packet.tid.0 as u64);
                out.push(packet.core.0);
                out.push(packet.reason.code());
                out.push(packet.rsw);
                varint::write_u64(out, packet.icount);
                if self == Encoding::Delta {
                    varint::write_i64(out, packet.timestamp.0 as i64 - prev_ts.0 as i64);
                } else {
                    varint::write_u64(out, packet.timestamp.0);
                }
            }
        }
    }

    /// Decodes one packet from the front of `buf`, returning it and the
    /// bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::LogDecode`] on truncation or malformed fields.
    pub fn decode_packet(self, buf: &[u8], prev_ts: Cycle) -> Result<(ChunkPacket, usize)> {
        let truncated = || QrError::LogDecode("truncated chunk packet".into());
        match self {
            Encoding::Raw => {
                if buf.len() < 24 {
                    return Err(truncated());
                }
                let tid = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
                let core = buf[4];
                let reason = TerminationReason::from_code(buf[5])
                    .ok_or_else(|| QrError::LogDecode(format!("bad reason code {}", buf[5])))?;
                let rsw = buf[6];
                let icount = u64::from_le_bytes([
                    buf[8], buf[9], buf[10], buf[11], buf[12], buf[13], buf[14], buf[15],
                ]);
                let ts = u64::from_le_bytes([
                    buf[16], buf[17], buf[18], buf[19], buf[20], buf[21], buf[22], buf[23],
                ]);
                Ok((
                    ChunkPacket {
                        tid: ThreadId(tid),
                        core: CoreId(core),
                        icount,
                        timestamp: Cycle(ts),
                        rsw,
                        reason,
                    },
                    24,
                ))
            }
            Encoding::Packed | Encoding::Delta => {
                let mut off = 0usize;
                let (tid, n) = varint::read_u64(&buf[off..])?;
                off += n;
                if buf.len() < off + 3 {
                    return Err(truncated());
                }
                let core = buf[off];
                let reason = TerminationReason::from_code(buf[off + 1]).ok_or_else(|| {
                    QrError::LogDecode(format!("bad reason code {}", buf[off + 1]))
                })?;
                let rsw = buf[off + 2];
                off += 3;
                let (icount, n) = varint::read_u64(&buf[off..])?;
                off += n;
                let ts = if self == Encoding::Delta {
                    let (delta, n) = varint::read_i64(&buf[off..])?;
                    off += n;
                    let ts = prev_ts.0 as i64 + delta;
                    if ts < 0 {
                        return Err(QrError::LogDecode("negative timestamp".into()));
                    }
                    ts as u64
                } else {
                    let (ts, n) = varint::read_u64(&buf[off..])?;
                    off += n;
                    ts
                };
                Ok((
                    ChunkPacket {
                        tid: ThreadId(tid as u32),
                        core: CoreId(core),
                        icount,
                        timestamp: Cycle(ts),
                        rsw,
                        reason,
                    },
                    off,
                ))
            }
        }
    }

    /// Encodes a whole **legacy** (unframed) stream: tag + count +
    /// packets, in the given order. New logs are written framed; this
    /// remains the per-group payload codec and the legacy-compatibility
    /// writer used by tests.
    pub fn encode_stream(self, packets: &[ChunkPacket]) -> Vec<u8> {
        let mut out = Vec::with_capacity(packets.len() * 8 + 8);
        out.push(self.tag());
        varint::write_u64(&mut out, packets.len() as u64);
        let mut prev = Cycle(0);
        for p in packets {
            self.encode_packet(p, prev, &mut out);
            prev = p.timestamp;
        }
        out
    }

    /// Decodes a **legacy** (unframed) stream produced by
    /// [`Encoding::encode_stream`] (of any encoding — the tag selects
    /// the codec).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] with byte-offset context on
    /// malformed input.
    pub fn decode_stream(buf: &[u8]) -> Result<Vec<ChunkPacket>> {
        let corrupt = |offset: usize, detail: String| QrError::Corrupt {
            what: "legacy chunk stream".into(),
            offset: offset as u64,
            detail,
        };
        let Some(&tag) = buf.first() else {
            return Err(corrupt(0, "empty stream".into()));
        };
        let encoding = Encoding::from_tag(tag)
            .ok_or_else(|| corrupt(0, format!("unknown encoding tag {tag}")))?;
        let mut off = 1usize;
        let (count, n) =
            varint::read_u64(&buf[off..]).map_err(|e| corrupt(off, e.to_string()))?;
        off += n;
        if count > buf.len() as u64 * 2 {
            return Err(corrupt(1, format!("implausible packet count {count}")));
        }
        let mut packets = Vec::with_capacity(count as usize);
        let mut prev = Cycle(0);
        for _ in 0..count {
            let (p, n) =
                encoding.decode_packet(&buf[off..], prev).map_err(|e| corrupt(off, e.to_string()))?;
            off += n;
            prev = p.timestamp;
            packets.push(p);
        }
        // A real legacy stream ends exactly at its last packet; trailing
        // bytes mean the buffer is not what the tag claims (e.g. a framed
        // container whose leading magic byte was destroyed).
        if off != buf.len() {
            return Err(corrupt(
                off,
                format!("{} trailing bytes after {count} packets", buf.len() - off),
            ));
        }
        Ok(packets)
    }

    /// Tolerantly decodes a **legacy** (unframed) stream, recovering the
    /// longest cleanly-decodable packet prefix of a truncated or
    /// corrupted log. The legacy format has no checksums, so "clean"
    /// here means structurally decodable — a tear mid-packet stops the
    /// salvage at the last whole packet. Never fails or panics:
    /// corruption is *described*, not fatal.
    pub fn salvage_stream(buf: &[u8]) -> SalvagedPackets {
        let corrupt = |offset: usize, detail: String| QrError::Corrupt {
            what: "legacy chunk stream".into(),
            offset: offset as u64,
            detail,
        };
        let gone = |err: QrError| SalvagedPackets {
            packets: Vec::new(),
            expected: None,
            bytes_dropped: buf.len(),
            corruption: Some(err),
        };
        let Some(&tag) = buf.first() else {
            return gone(corrupt(0, "empty stream".into()));
        };
        let Some(encoding) = Encoding::from_tag(tag) else {
            return gone(corrupt(0, format!("unknown encoding tag {tag}")));
        };
        let mut off = 1usize;
        let (count, n) = match varint::read_u64(&buf[off..]) {
            Ok(pair) => pair,
            Err(e) => return gone(corrupt(off, e.to_string())),
        };
        off += n;
        if count > buf.len() as u64 * 2 {
            return gone(corrupt(1, format!("implausible packet count {count}")));
        }
        let mut packets = Vec::new();
        let mut corruption = None;
        let mut prev = Cycle(0);
        for _ in 0..count {
            match encoding.decode_packet(&buf[off..], prev) {
                Ok((p, n)) => {
                    off += n;
                    prev = p.timestamp;
                    packets.push(p);
                }
                Err(e) => {
                    corruption = Some(corrupt(off, e.to_string()));
                    break;
                }
            }
        }
        if corruption.is_none() && off != buf.len() {
            corruption = Some(corrupt(
                off,
                format!("{} trailing bytes after {count} packets", buf.len() - off),
            ));
        }
        SalvagedPackets {
            packets,
            expected: Some(count),
            bytes_dropped: buf.len() - off.min(buf.len()),
            corruption,
        }
    }

    /// Identifies the packet encoding of a serialized chunk log without
    /// fully decoding it — works on both the framed container (reads the
    /// stream-header record's tag) and a legacy unframed stream (reads
    /// the leading tag byte). Returns `None` when the bytes are not a
    /// recognizable chunk log of either shape.
    pub fn sniff_container(buf: &[u8]) -> Option<Encoding> {
        if let Some(&tag @ 0..=2) = buf.first() {
            return Encoding::from_tag(tag);
        }
        let scanned = frame::scan(buf);
        if scanned.kind != Some(PayloadKind::ChunkLog) {
            return None;
        }
        let header = scanned.records.first()?;
        Encoding::parse_stream_header(header).ok().map(|(encoding, _)| encoding)
    }

    /// Encodes a **framed** stream: a crash-consistent container whose
    /// record 0 commits the encoding tag and total packet count, followed
    /// by one CRC-32-protected record per [`FRAME_GROUP_PACKETS`]-packet
    /// group. Groups are independently decodable (`Delta` restarts its
    /// timestamp baseline at each group), which is what makes salvage of
    /// a torn log possible.
    pub fn encode_framed_stream(self, packets: &[ChunkPacket]) -> Vec<u8> {
        let mut writer = frame::Writer::new(PayloadKind::ChunkLog);
        let mut header = vec![self.tag()];
        varint::write_u64(&mut header, packets.len() as u64);
        writer.record(&header);
        for group in packets.chunks(FRAME_GROUP_PACKETS) {
            let mut payload = Vec::with_capacity(group.len() * 8);
            let mut prev = Cycle(0);
            for p in group {
                self.encode_packet(p, prev, &mut payload);
                prev = p.timestamp;
            }
            writer.record(&payload);
        }
        writer.finish()
    }

    /// Strictly decodes a framed stream produced by
    /// [`Encoding::encode_framed_stream`].
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] (with byte offset) for any frame
    /// fault, checksum mismatch, undecodable packet, or a packet count
    /// differing from the header's commitment (which catches truncation
    /// at exact record boundaries).
    pub fn decode_framed_stream(buf: &[u8]) -> Result<Vec<ChunkPacket>> {
        let salvaged = Encoding::salvage_framed_stream(buf);
        match salvaged.corruption {
            Some(err) => Err(err),
            None => Ok(salvaged.packets),
        }
    }

    /// Tolerantly decodes a framed stream, recovering the longest
    /// complete, checksum-valid packet prefix of a torn or corrupted
    /// log. Never fails: corruption is *described*, not fatal.
    pub fn salvage_framed_stream(buf: &[u8]) -> SalvagedPackets {
        let what = "chunk log";
        let scanned = frame::scan(buf);
        let gone = |err: QrError| SalvagedPackets {
            packets: Vec::new(),
            expected: None,
            bytes_dropped: buf.len(),
            corruption: Some(err),
        };
        match scanned.kind {
            Some(PayloadKind::ChunkLog) => {}
            Some(other) => {
                return gone(QrError::Corrupt {
                    what: what.into(),
                    offset: 5,
                    detail: format!("container holds a {}, expected a chunk log", other.name()),
                })
            }
            None => {
                let fault = scanned.fault.expect("scan without kind always faults");
                return gone(fault.to_error(what));
            }
        }
        let Some((header, groups)) = scanned.records.split_first() else {
            // No complete header record: report the frame fault that ate
            // it, or the absence itself for a bare container.
            let err = match scanned.fault {
                Some(fault) => fault.to_error(what),
                None => QrError::Corrupt {
                    what: what.into(),
                    offset: frame::HEADER_LEN as u64,
                    detail: "missing stream header record".into(),
                },
            };
            return gone(err);
        };
        // Parse the header record: encoding tag + committed packet count.
        let header_base = frame::HEADER_LEN + 4;
        let (encoding, expected) = match Encoding::parse_stream_header(header) {
            Ok(pair) => pair,
            Err(detail) => {
                return gone(QrError::Corrupt {
                    what: what.into(),
                    offset: header_base as u64,
                    detail,
                })
            }
        };
        let mut packets = Vec::new();
        let mut corruption = None;
        // Byte offset of the current record's payload within `buf`.
        let mut payload_base = header_base + header.len() + 4 + 4;
        let mut consumed = frame::HEADER_LEN + header.len() + frame::RECORD_OVERHEAD;
        for group in groups {
            match encoding.decode_group(group, payload_base) {
                Ok(mut decoded) => packets.append(&mut decoded),
                Err(err) => {
                    corruption = Some(err);
                    break;
                }
            }
            consumed += group.len() + frame::RECORD_OVERHEAD;
            payload_base += group.len() + frame::RECORD_OVERHEAD;
        }
        if corruption.is_none() {
            if let Some(fault) = scanned.fault {
                corruption = Some(fault.to_error(what));
            } else if packets.len() as u64 != expected {
                corruption = Some(QrError::Corrupt {
                    what: what.into(),
                    offset: buf.len() as u64,
                    detail: format!(
                        "header commits {expected} packets but records hold {}",
                        packets.len()
                    ),
                });
            }
        }
        SalvagedPackets {
            packets,
            expected: Some(expected),
            bytes_dropped: buf.len().saturating_sub(consumed.min(buf.len())),
            corruption,
        }
    }

    /// Parses a framed stream's header record (tag + committed count).
    fn parse_stream_header(header: &[u8]) -> std::result::Result<(Encoding, u64), String> {
        let Some(&tag) = header.first() else {
            return Err("empty stream header record".into());
        };
        let encoding =
            Encoding::from_tag(tag).ok_or_else(|| format!("unknown encoding tag {tag}"))?;
        let (count, n) = varint::read_u64(&header[1..]).map_err(|e| e.to_string())?;
        if 1 + n != header.len() {
            return Err(format!("{} trailing bytes in stream header", header.len() - 1 - n));
        }
        Ok((encoding, count))
    }

    /// Decodes one packet-group record payload. `base` is the payload's
    /// byte offset within the whole container, used for error context.
    fn decode_group(self, payload: &[u8], base: usize) -> Result<Vec<ChunkPacket>> {
        let mut packets = Vec::new();
        let mut off = 0usize;
        let mut prev = Cycle(0);
        while off < payload.len() {
            let (p, n) = self.decode_packet(&payload[off..], prev).map_err(|e| {
                QrError::Corrupt {
                    what: "chunk packet".into(),
                    offset: (base + off) as u64,
                    detail: e.to_string(),
                }
            })?;
            off += n;
            prev = p.timestamp;
            packets.push(p);
        }
        Ok(packets)
    }
}

/// What [`Encoding::salvage_framed_stream`] recovered from a framed
/// chunk stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SalvagedPackets {
    /// The longest complete, checksum-valid packet prefix.
    pub packets: Vec<ChunkPacket>,
    /// Total packet count the stream header committed to, if the header
    /// record itself survived.
    pub expected: Option<u64>,
    /// Container bytes not covered by salvaged records.
    pub bytes_dropped: usize,
    /// What stopped the salvage (`None` for a fully intact stream).
    pub corruption: Option<QrError>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packets() -> Vec<ChunkPacket> {
        let mut out = Vec::new();
        let mut ts = 0u64;
        for i in 0..50u32 {
            ts += 3 + (i as u64 % 17);
            out.push(ChunkPacket {
                tid: ThreadId(i % 4),
                core: CoreId((i % 4) as u8),
                icount: (i as u64 * 131) % 5000,
                timestamp: Cycle(ts),
                rsw: (i % 5) as u8,
                reason: TerminationReason::ALL[(i as usize) % TerminationReason::ALL.len()],
            });
        }
        out
    }

    #[test]
    fn all_encodings_round_trip() {
        let ps = packets();
        for enc in Encoding::ALL {
            let buf = enc.encode_stream(&ps);
            let back = Encoding::decode_stream(&buf).unwrap();
            assert_eq!(back, ps, "{enc:?} failed");
        }
    }

    #[test]
    fn delta_beats_packed_beats_raw_on_monotonic_streams() {
        let ps = packets();
        let raw = Encoding::Raw.encode_stream(&ps).len();
        let packed = Encoding::Packed.encode_stream(&ps).len();
        let delta = Encoding::Delta.encode_stream(&ps).len();
        assert!(packed < raw, "packed {packed} < raw {raw}");
        assert!(delta < packed, "delta {delta} < packed {packed}");
    }

    #[test]
    fn raw_is_exactly_24_bytes_per_packet() {
        let ps = packets();
        let buf = Encoding::Raw.encode_stream(&ps);
        let header = 1 + qr_common::varint::encoded_len(ps.len() as u64);
        assert_eq!(buf.len(), header + 24 * ps.len());
    }

    #[test]
    fn huge_icounts_round_trip_in_every_encoding() {
        // Chunks longer than u32::MAX instructions must survive encoding;
        // the Raw format used to truncate `icount` to 32 bits silently.
        for icount in [u32::MAX as u64, u32::MAX as u64 + 1, u64::MAX / 3, u64::MAX] {
            let ps = vec![ChunkPacket {
                tid: ThreadId(1),
                core: CoreId(0),
                icount,
                timestamp: Cycle(77),
                rsw: 2,
                reason: TerminationReason::ALL[0],
            }];
            for enc in Encoding::ALL {
                let buf = enc.encode_stream(&ps);
                let back = Encoding::decode_stream(&buf).unwrap();
                assert_eq!(back, ps, "{enc:?} corrupted icount {icount:#x}");
            }
        }
    }

    #[test]
    fn truncated_streams_error() {
        let ps = packets();
        for enc in Encoding::ALL {
            let buf = enc.encode_stream(&ps);
            for cut in [1usize, 2, buf.len() / 2, buf.len() - 1] {
                assert!(Encoding::decode_stream(&buf[..cut]).is_err(), "{enc:?} cut {cut}");
            }
        }
    }

    #[test]
    fn unknown_tag_and_bad_reason_error() {
        assert!(Encoding::decode_stream(&[99, 0]).is_err());
        let mut buf = Encoding::Raw.encode_stream(&packets()[..1]);
        buf[2 + 5] = 77; // corrupt the reason byte of the first packet
        assert!(Encoding::decode_stream(&buf).is_err());
    }

    #[test]
    fn empty_stream_round_trips() {
        for enc in Encoding::ALL {
            let buf = enc.encode_stream(&[]);
            assert_eq!(Encoding::decode_stream(&buf).unwrap(), vec![]);
        }
    }

    /// Enough packets to span several framed groups.
    fn many_packets() -> Vec<ChunkPacket> {
        let mut out = Vec::new();
        let mut ts = 0u64;
        for i in 0..(FRAME_GROUP_PACKETS as u32 * 3 + 7) {
            ts += 2 + (i as u64 % 23);
            out.push(ChunkPacket {
                tid: ThreadId(i % 4),
                core: CoreId((i % 4) as u8),
                icount: (i as u64 * 977) % 40_000,
                timestamp: Cycle(ts),
                rsw: (i % 5) as u8,
                reason: TerminationReason::ALL[(i as usize) % TerminationReason::ALL.len()],
            });
        }
        out
    }

    #[test]
    fn framed_streams_round_trip_across_group_boundaries() {
        let ps = many_packets();
        for enc in Encoding::ALL {
            let buf = enc.encode_framed_stream(&ps);
            assert_eq!(Encoding::decode_framed_stream(&buf).unwrap(), ps, "{enc:?}");
            let salvaged = Encoding::salvage_framed_stream(&buf);
            assert!(salvaged.corruption.is_none());
            assert_eq!(salvaged.expected, Some(ps.len() as u64));
            assert_eq!(salvaged.bytes_dropped, 0);
        }
    }

    #[test]
    fn framed_empty_stream_round_trips() {
        for enc in Encoding::ALL {
            let buf = enc.encode_framed_stream(&[]);
            assert_eq!(Encoding::decode_framed_stream(&buf).unwrap(), vec![]);
        }
    }

    #[test]
    fn framed_truncation_at_every_offset_errors_and_salvages_a_prefix() {
        let ps = many_packets();
        for enc in Encoding::ALL {
            let buf = enc.encode_framed_stream(&ps);
            for cut in 0..buf.len() {
                // Strict decode must reject every truncation — including
                // cuts at exact record boundaries, which the header's
                // committed packet count catches.
                let err = Encoding::decode_framed_stream(&buf[..cut])
                    .expect_err(&format!("{enc:?} cut {cut} must error"));
                assert!(matches!(err, QrError::Corrupt { .. }), "{enc:?} cut {cut}: {err}");
                // Salvage must recover an exact packet prefix.
                let salvaged = Encoding::salvage_framed_stream(&buf[..cut]);
                assert!(salvaged.corruption.is_some(), "{enc:?} cut {cut}");
                assert_eq!(
                    salvaged.packets,
                    ps[..salvaged.packets.len()],
                    "{enc:?} cut {cut} salvaged a non-prefix"
                );
            }
        }
    }

    #[test]
    fn framed_single_bit_flip_at_every_byte_is_rejected() {
        // Satellite requirement: a flipped bit anywhere in a framed log
        // must produce a structured error — never silently-wrong packets.
        let ps = many_packets();
        for enc in Encoding::ALL {
            let buf = enc.encode_framed_stream(&ps);
            for pos in 0..buf.len() {
                for bit in 0..8 {
                    let mut bad = buf.clone();
                    bad[pos] ^= 1 << bit;
                    let err = Encoding::decode_framed_stream(&bad)
                        .expect_err(&format!("{enc:?} flip byte {pos} bit {bit}"));
                    assert!(matches!(err, QrError::Corrupt { .. }));
                }
            }
        }
    }

    #[test]
    fn framed_bit_flip_salvage_yields_exact_packet_prefix() {
        let ps = many_packets();
        for enc in Encoding::ALL {
            let buf = enc.encode_framed_stream(&ps);
            for pos in (0..buf.len()).step_by(7) {
                let mut bad = buf.clone();
                bad[pos] ^= 0x40;
                let salvaged = Encoding::salvage_framed_stream(&bad);
                assert!(salvaged.corruption.is_some(), "{enc:?} pos {pos}");
                assert_eq!(
                    salvaged.packets,
                    ps[..salvaged.packets.len()],
                    "{enc:?} pos {pos} salvaged a non-prefix"
                );
                // A flip past the header keeps whole leading groups.
                if pos >= buf.len() - 4 {
                    assert!(salvaged.packets.len() >= FRAME_GROUP_PACKETS);
                }
            }
        }
    }

    #[test]
    fn legacy_salvage_recovers_longest_clean_prefix_of_truncations() {
        let ps = packets();
        for enc in Encoding::ALL {
            let buf = enc.encode_stream(&ps);
            for cut in 0..buf.len() {
                let salvaged = Encoding::salvage_stream(&buf[..cut]);
                assert!(salvaged.corruption.is_some(), "{enc:?} cut {cut}");
                assert_eq!(
                    salvaged.packets,
                    ps[..salvaged.packets.len()],
                    "{enc:?} cut {cut} salvaged a non-prefix"
                );
                // When the header survives (and the committed count is
                // still plausible against the truncated length), the
                // expected total is reported faithfully.
                if let Some(expected) = salvaged.expected {
                    assert_eq!(expected, ps.len() as u64, "{enc:?} cut {cut}");
                }
            }
            // The intact stream salvages completely.
            let whole = Encoding::salvage_stream(&buf);
            assert!(whole.corruption.is_none());
            assert_eq!(whole.packets, ps);
            assert_eq!(whole.bytes_dropped, 0);
        }
    }

    #[test]
    fn legacy_salvage_reports_trailing_bytes_but_keeps_packets() {
        let ps = packets();
        let mut buf = Encoding::Delta.encode_stream(&ps);
        buf.extend_from_slice(&[0xAA; 5]);
        let salvaged = Encoding::salvage_stream(&buf);
        assert_eq!(salvaged.packets, ps);
        assert_eq!(salvaged.bytes_dropped, 5);
        let err = salvaged.corruption.expect("trailing bytes must be reported");
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn legacy_salvage_handles_garbage_without_panicking() {
        assert!(Encoding::salvage_stream(&[]).corruption.is_some());
        assert!(Encoding::salvage_stream(&[9]).corruption.is_some());
        // Valid tag, implausible count.
        let mut buf = vec![Encoding::Raw.tag()];
        varint::write_u64(&mut buf, u64::MAX / 2);
        let salvaged = Encoding::salvage_stream(&buf);
        assert!(salvaged.packets.is_empty());
        assert!(salvaged.corruption.unwrap().to_string().contains("implausible"));
    }

    #[test]
    fn sniff_container_identifies_both_shapes() {
        let ps = packets();
        for enc in Encoding::ALL {
            assert_eq!(Encoding::sniff_container(&enc.encode_stream(&ps)), Some(enc));
            assert_eq!(Encoding::sniff_container(&enc.encode_framed_stream(&ps)), Some(enc));
            assert_eq!(Encoding::sniff_container(&enc.encode_framed_stream(&[])), Some(enc));
        }
        assert_eq!(Encoding::sniff_container(&[]), None);
        assert_eq!(Encoding::sniff_container(&[9, 1, 2]), None);
        // A framed container of the wrong payload kind is not a chunk log.
        let mut w = frame::Writer::new(PayloadKind::InputLog);
        w.record(&[Encoding::Delta.tag(), 0]);
        assert_eq!(Encoding::sniff_container(&w.finish()), None);
    }

    #[test]
    fn framed_wrong_payload_kind_is_rejected() {
        let mut w = frame::Writer::new(PayloadKind::InputLog);
        w.record(&[Encoding::Delta.tag(), 0]);
        let buf = w.finish();
        let err = Encoding::decode_framed_stream(&buf).unwrap_err();
        assert!(err.to_string().contains("input log"), "{err}");
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use qr_common::SplitMix64;

    fn random_packet(rng: &mut SplitMix64) -> ChunkPacket {
        ChunkPacket {
            tid: ThreadId(rng.below(u16::MAX as u64 + 1) as u32),
            core: CoreId(rng.below(8) as u8),
            // Mix small, u32-range and >u32 instruction counts so every
            // encoding's width handling is exercised.
            icount: match rng.below(3) {
                0 => rng.below(10_000),
                1 => rng.next_u32() as u64,
                _ => rng.next_u64(),
            },
            timestamp: Cycle(rng.next_u32() as u64),
            rsw: rng.next_u64() as u8,
            reason: TerminationReason::ALL[rng.below(TerminationReason::ALL.len() as u64) as usize],
        }
    }

    #[test]
    fn streams_round_trip() {
        let mut rng = SplitMix64::new(0xc0de_0001);
        for _ in 0..256 {
            let n = rng.below(64) as usize;
            let ps: Vec<ChunkPacket> = (0..n).map(|_| random_packet(&mut rng)).collect();
            for enc in Encoding::ALL {
                let buf = enc.encode_stream(&ps);
                assert_eq!(Encoding::decode_stream(&buf).unwrap(), ps.clone());
            }
        }
    }

    #[test]
    fn decode_never_panics() {
        let mut rng = SplitMix64::new(0xc0de_0002);
        for _ in 0..4096 {
            let len = rng.below(256) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = Encoding::decode_stream(&bytes);
            let _ = Encoding::salvage_stream(&bytes);
            let _ = Encoding::sniff_container(&bytes);
            // Bias toward plausible streams: valid tag byte, random rest.
            if let Some(first) = bytes.first_mut() {
                *first = rng.below(3) as u8;
                let _ = Encoding::decode_stream(&bytes);
                let salvaged = Encoding::salvage_stream(&bytes);
                // Salvage of a mutated stream still yields decodable data.
                let _ = salvaged.packets;
            }
        }
    }

    #[test]
    fn framed_decode_never_panics_on_garbage() {
        let mut rng = SplitMix64::new(0xc0de_0003);
        for _ in 0..4096 {
            let len = rng.below(256) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = Encoding::decode_framed_stream(&bytes);
            let _ = Encoding::salvage_framed_stream(&bytes);
            // Bias toward plausible containers: valid magic, random rest.
            if bytes.len() >= 4 {
                bytes[..4].copy_from_slice(&qr_common::frame::MAGIC);
                let _ = Encoding::decode_framed_stream(&bytes);
                let _ = Encoding::salvage_framed_stream(&bytes);
            }
        }
    }
}
