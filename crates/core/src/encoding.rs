//! Chunk-packet log encodings.
//!
//! The paper evaluates how chunk packets are compressed before they are
//! written to memory, since log footprint determines how long recording
//! can stay on. Three formats are modeled (experiment E4 compares them):
//!
//! | Encoding | Layout |
//! |---|---|
//! | `Raw`    | fixed 24 bytes: tid u32, core u8, reason u8, rsw u8, pad, icount u64, timestamp u64 |
//! | `Packed` | all fields as LEB128 varints |
//! | `Delta`  | like `Packed` but the timestamp is a zigzag delta against the previous packet in the stream |
//!
//! Streams are self-describing: byte 0 is the encoding tag, then a varint
//! packet count, then the packets.

use crate::chunk::{ChunkPacket, TerminationReason};
use qr_common::{varint, CoreId, Cycle, QrError, Result, ThreadId};

/// On-disk chunk-packet format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Encoding {
    /// Fixed-size 24-byte packets (the hardware's native format plus the
    /// software thread tag). The instruction count is a full `u64`: the
    /// configured `max chunk size` does not bound it (uncapped chunks are
    /// legal), so a narrower field would silently truncate long chunks.
    Raw,
    /// Varint-packed fields.
    Packed,
    /// Varint-packed fields with timestamp deltas. The default.
    #[default]
    Delta,
}

impl Encoding {
    /// All encodings.
    pub const ALL: [Encoding; 3] = [Encoding::Raw, Encoding::Packed, Encoding::Delta];

    /// Stable stream tag.
    pub fn tag(self) -> u8 {
        match self {
            Encoding::Raw => 0,
            Encoding::Packed => 1,
            Encoding::Delta => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Encoding> {
        Encoding::ALL.into_iter().find(|e| e.tag() == tag)
    }

    /// Short name for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Raw => "raw",
            Encoding::Packed => "packed",
            Encoding::Delta => "delta",
        }
    }

    /// Encodes one packet, appending to `out`. `prev_ts` is the previous
    /// packet's timestamp in stream order (used by `Delta`).
    pub fn encode_packet(self, packet: &ChunkPacket, prev_ts: Cycle, out: &mut Vec<u8>) {
        match self {
            Encoding::Raw => {
                out.extend_from_slice(&packet.tid.0.to_le_bytes());
                out.push(packet.core.0);
                out.push(packet.reason.code());
                out.push(packet.rsw);
                out.push(0);
                out.extend_from_slice(&packet.icount.to_le_bytes());
                out.extend_from_slice(&packet.timestamp.0.to_le_bytes());
            }
            Encoding::Packed | Encoding::Delta => {
                varint::write_u64(out, packet.tid.0 as u64);
                out.push(packet.core.0);
                out.push(packet.reason.code());
                out.push(packet.rsw);
                varint::write_u64(out, packet.icount);
                if self == Encoding::Delta {
                    varint::write_i64(out, packet.timestamp.0 as i64 - prev_ts.0 as i64);
                } else {
                    varint::write_u64(out, packet.timestamp.0);
                }
            }
        }
    }

    /// Decodes one packet from the front of `buf`, returning it and the
    /// bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::LogDecode`] on truncation or malformed fields.
    pub fn decode_packet(self, buf: &[u8], prev_ts: Cycle) -> Result<(ChunkPacket, usize)> {
        let truncated = || QrError::LogDecode("truncated chunk packet".into());
        match self {
            Encoding::Raw => {
                if buf.len() < 24 {
                    return Err(truncated());
                }
                let tid = u32::from_le_bytes(buf[0..4].try_into().expect("sized"));
                let core = buf[4];
                let reason = TerminationReason::from_code(buf[5])
                    .ok_or_else(|| QrError::LogDecode(format!("bad reason code {}", buf[5])))?;
                let rsw = buf[6];
                let icount = u64::from_le_bytes(buf[8..16].try_into().expect("sized"));
                let ts = u64::from_le_bytes(buf[16..24].try_into().expect("sized"));
                Ok((
                    ChunkPacket {
                        tid: ThreadId(tid),
                        core: CoreId(core),
                        icount,
                        timestamp: Cycle(ts),
                        rsw,
                        reason,
                    },
                    24,
                ))
            }
            Encoding::Packed | Encoding::Delta => {
                let mut off = 0usize;
                let (tid, n) = varint::read_u64(&buf[off..])?;
                off += n;
                if buf.len() < off + 3 {
                    return Err(truncated());
                }
                let core = buf[off];
                let reason = TerminationReason::from_code(buf[off + 1]).ok_or_else(|| {
                    QrError::LogDecode(format!("bad reason code {}", buf[off + 1]))
                })?;
                let rsw = buf[off + 2];
                off += 3;
                let (icount, n) = varint::read_u64(&buf[off..])?;
                off += n;
                let ts = if self == Encoding::Delta {
                    let (delta, n) = varint::read_i64(&buf[off..])?;
                    off += n;
                    let ts = prev_ts.0 as i64 + delta;
                    if ts < 0 {
                        return Err(QrError::LogDecode("negative timestamp".into()));
                    }
                    ts as u64
                } else {
                    let (ts, n) = varint::read_u64(&buf[off..])?;
                    off += n;
                    ts
                };
                Ok((
                    ChunkPacket {
                        tid: ThreadId(tid as u32),
                        core: CoreId(core),
                        icount,
                        timestamp: Cycle(ts),
                        rsw,
                        reason,
                    },
                    off,
                ))
            }
        }
    }

    /// Encodes a whole stream (tag + count + packets, in the given order).
    pub fn encode_stream(self, packets: &[ChunkPacket]) -> Vec<u8> {
        let mut out = Vec::with_capacity(packets.len() * 8 + 8);
        out.push(self.tag());
        varint::write_u64(&mut out, packets.len() as u64);
        let mut prev = Cycle(0);
        for p in packets {
            self.encode_packet(p, prev, &mut out);
            prev = p.timestamp;
        }
        out
    }

    /// Decodes a stream produced by [`Encoding::encode_stream`] (of any
    /// encoding — the tag selects the codec).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::LogDecode`] on malformed input.
    pub fn decode_stream(buf: &[u8]) -> Result<Vec<ChunkPacket>> {
        let Some(&tag) = buf.first() else {
            return Err(QrError::LogDecode("empty stream".into()));
        };
        let encoding = Encoding::from_tag(tag)
            .ok_or_else(|| QrError::LogDecode(format!("unknown encoding tag {tag}")))?;
        let mut off = 1usize;
        let (count, n) = varint::read_u64(&buf[off..])?;
        off += n;
        if count > buf.len() as u64 * 2 {
            return Err(QrError::LogDecode(format!("implausible packet count {count}")));
        }
        let mut packets = Vec::with_capacity(count as usize);
        let mut prev = Cycle(0);
        for _ in 0..count {
            let (p, n) = encoding.decode_packet(&buf[off..], prev)?;
            off += n;
            prev = p.timestamp;
            packets.push(p);
        }
        Ok(packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packets() -> Vec<ChunkPacket> {
        let mut out = Vec::new();
        let mut ts = 0u64;
        for i in 0..50u32 {
            ts += 3 + (i as u64 % 17);
            out.push(ChunkPacket {
                tid: ThreadId(i % 4),
                core: CoreId((i % 4) as u8),
                icount: (i as u64 * 131) % 5000,
                timestamp: Cycle(ts),
                rsw: (i % 5) as u8,
                reason: TerminationReason::ALL[(i as usize) % TerminationReason::ALL.len()],
            });
        }
        out
    }

    #[test]
    fn all_encodings_round_trip() {
        let ps = packets();
        for enc in Encoding::ALL {
            let buf = enc.encode_stream(&ps);
            let back = Encoding::decode_stream(&buf).unwrap();
            assert_eq!(back, ps, "{enc:?} failed");
        }
    }

    #[test]
    fn delta_beats_packed_beats_raw_on_monotonic_streams() {
        let ps = packets();
        let raw = Encoding::Raw.encode_stream(&ps).len();
        let packed = Encoding::Packed.encode_stream(&ps).len();
        let delta = Encoding::Delta.encode_stream(&ps).len();
        assert!(packed < raw, "packed {packed} < raw {raw}");
        assert!(delta < packed, "delta {delta} < packed {packed}");
    }

    #[test]
    fn raw_is_exactly_24_bytes_per_packet() {
        let ps = packets();
        let buf = Encoding::Raw.encode_stream(&ps);
        let header = 1 + qr_common::varint::encoded_len(ps.len() as u64);
        assert_eq!(buf.len(), header + 24 * ps.len());
    }

    #[test]
    fn huge_icounts_round_trip_in_every_encoding() {
        // Chunks longer than u32::MAX instructions must survive encoding;
        // the Raw format used to truncate `icount` to 32 bits silently.
        for icount in [u32::MAX as u64, u32::MAX as u64 + 1, u64::MAX / 3, u64::MAX] {
            let ps = vec![ChunkPacket {
                tid: ThreadId(1),
                core: CoreId(0),
                icount,
                timestamp: Cycle(77),
                rsw: 2,
                reason: TerminationReason::ALL[0],
            }];
            for enc in Encoding::ALL {
                let buf = enc.encode_stream(&ps);
                let back = Encoding::decode_stream(&buf).unwrap();
                assert_eq!(back, ps, "{enc:?} corrupted icount {icount:#x}");
            }
        }
    }

    #[test]
    fn truncated_streams_error() {
        let ps = packets();
        for enc in Encoding::ALL {
            let buf = enc.encode_stream(&ps);
            for cut in [1usize, 2, buf.len() / 2, buf.len() - 1] {
                assert!(Encoding::decode_stream(&buf[..cut]).is_err(), "{enc:?} cut {cut}");
            }
        }
    }

    #[test]
    fn unknown_tag_and_bad_reason_error() {
        assert!(Encoding::decode_stream(&[99, 0]).is_err());
        let mut buf = Encoding::Raw.encode_stream(&packets()[..1]);
        buf[2 + 5] = 77; // corrupt the reason byte of the first packet
        assert!(Encoding::decode_stream(&buf).is_err());
    }

    #[test]
    fn empty_stream_round_trips() {
        for enc in Encoding::ALL {
            let buf = enc.encode_stream(&[]);
            assert_eq!(Encoding::decode_stream(&buf).unwrap(), vec![]);
        }
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use qr_common::SplitMix64;

    fn random_packet(rng: &mut SplitMix64) -> ChunkPacket {
        ChunkPacket {
            tid: ThreadId(rng.below(u16::MAX as u64 + 1) as u32),
            core: CoreId(rng.below(8) as u8),
            // Mix small, u32-range and >u32 instruction counts so every
            // encoding's width handling is exercised.
            icount: match rng.below(3) {
                0 => rng.below(10_000),
                1 => rng.next_u32() as u64,
                _ => rng.next_u64(),
            },
            timestamp: Cycle(rng.next_u32() as u64),
            rsw: rng.next_u64() as u8,
            reason: TerminationReason::ALL[rng.below(TerminationReason::ALL.len() as u64) as usize],
        }
    }

    #[test]
    fn streams_round_trip() {
        let mut rng = SplitMix64::new(0xc0de_0001);
        for _ in 0..256 {
            let n = rng.below(64) as usize;
            let ps: Vec<ChunkPacket> = (0..n).map(|_| random_packet(&mut rng)).collect();
            for enc in Encoding::ALL {
                let buf = enc.encode_stream(&ps);
                assert_eq!(Encoding::decode_stream(&buf).unwrap(), ps.clone());
            }
        }
    }

    #[test]
    fn decode_never_panics() {
        let mut rng = SplitMix64::new(0xc0de_0002);
        for _ in 0..4096 {
            let len = rng.below(256) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = Encoding::decode_stream(&bytes);
            // Bias toward plausible streams: valid tag byte, random rest.
            if let Some(first) = bytes.first_mut() {
                *first = rng.below(3) as u8;
                let _ = Encoding::decode_stream(&bytes);
            }
        }
    }
}
