//! The assembled chunk log (memory log) of one recording.

use crate::chunk::ChunkPacket;
use crate::encoding::{Encoding, SalvagedPackets};
use qr_common::{QrError, Result, ThreadId};
use std::collections::BTreeMap;

/// All chunk packets of one recording, in drain order.
///
/// The replayer consumes them sorted by timestamp; analysis tooling uses
/// the per-thread and distribution views.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChunkLog {
    packets: Vec<ChunkPacket>,
}

impl ChunkLog {
    /// Creates an empty log.
    pub fn new() -> ChunkLog {
        ChunkLog::default()
    }

    /// Appends drained packets.
    pub fn extend(&mut self, packets: impl IntoIterator<Item = ChunkPacket>) {
        self.packets.extend(packets);
    }

    /// All packets, in drain order.
    pub fn packets(&self) -> &[ChunkPacket] {
        &self.packets
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Packets sorted by timestamp — the replay schedule.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::LogDecode`] if two packets share a timestamp
    /// (the recorder's clock is strictly monotonic, so duplicates mean a
    /// corrupt log).
    pub fn replay_schedule(&self) -> Result<Vec<ChunkPacket>> {
        let mut sorted = self.packets.clone();
        sorted.sort_by_key(|p| p.timestamp);
        for pair in sorted.windows(2) {
            if pair[0].timestamp == pair[1].timestamp {
                return Err(QrError::LogDecode(format!(
                    "duplicate chunk timestamp {}",
                    pair[0].timestamp.0
                )));
            }
        }
        Ok(sorted)
    }

    /// Packets grouped per thread, each group in timestamp order.
    pub fn per_thread(&self) -> BTreeMap<ThreadId, Vec<ChunkPacket>> {
        let mut map: BTreeMap<ThreadId, Vec<ChunkPacket>> = BTreeMap::new();
        for p in &self.packets {
            map.entry(p.tid).or_default().push(*p);
        }
        for group in map.values_mut() {
            group.sort_by_key(|p| p.timestamp);
        }
        map
    }

    /// Total user instructions covered.
    pub fn total_instructions(&self) -> u64 {
        self.packets.iter().map(|p| p.icount).sum()
    }

    /// Chunk sizes (instruction counts) sorted ascending — input for the
    /// distribution experiment E2.
    pub fn chunk_sizes_sorted(&self) -> Vec<u64> {
        let mut sizes: Vec<u64> = self.packets.iter().map(|p| p.icount).collect();
        sizes.sort_unstable();
        sizes
    }

    /// Percentile of the chunk-size distribution (`p` in 0..=100).
    ///
    /// # Panics
    ///
    /// Panics if the log is empty or `p > 100`.
    pub fn chunk_size_percentile(&self, p: u32) -> u64 {
        assert!(p <= 100, "percentile must be 0..=100");
        let sizes = self.chunk_sizes_sorted();
        assert!(!sizes.is_empty(), "percentile of an empty log");
        let idx = ((p as usize) * (sizes.len() - 1)) / 100;
        sizes[idx]
    }

    /// Serializes the log with the given encoding, in the crash-consistent
    /// framed container format (see [`qr_common::frame`]).
    pub fn to_bytes(&self, encoding: Encoding) -> Vec<u8> {
        let bytes = encoding.encode_framed_stream(&self.packets);
        crate::obs::log_serialized(encoding, bytes.len());
        bytes
    }

    /// Deserializes a log produced by [`ChunkLog::to_bytes`] (framed) or
    /// by a pre-framing recorder (legacy unframed, detected by its
    /// leading encoding tag — the framed magic's first byte never
    /// aliases one, even under single-bit flips).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] with byte-offset context on
    /// malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<ChunkLog> {
        if matches!(bytes.first(), Some(0..=2)) {
            return ChunkLog::from_legacy_bytes(bytes);
        }
        Ok(ChunkLog { packets: Encoding::decode_framed_stream(bytes)? })
    }

    /// Deserializes a **legacy** (unframed, checksum-free) log. Explicit
    /// compatibility path for logs written before the framed container
    /// existed.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on malformed input.
    pub fn from_legacy_bytes(bytes: &[u8]) -> Result<ChunkLog> {
        Ok(ChunkLog { packets: Encoding::decode_stream(bytes)? })
    }

    /// Tolerantly deserializes a log, recovering the longest complete,
    /// cleanly-decodable packet prefix of a torn or corrupted file.
    /// Framed logs salvage at checksum-verified group granularity (see
    /// [`Encoding::salvage_framed_stream`]); legacy unframed logs (same
    /// leading-tag detection as [`ChunkLog::from_bytes`]) salvage at
    /// packet granularity via [`Encoding::salvage_stream`].
    pub fn salvage_from_bytes(bytes: &[u8]) -> (ChunkLog, SalvagedPackets) {
        let mut salvaged = if matches!(bytes.first(), Some(0..=2)) {
            Encoding::salvage_stream(bytes)
        } else {
            Encoding::salvage_framed_stream(bytes)
        };
        let log = ChunkLog { packets: std::mem::take(&mut salvaged.packets) };
        (log, salvaged)
    }
}

impl FromIterator<ChunkPacket> for ChunkLog {
    fn from_iter<I: IntoIterator<Item = ChunkPacket>>(iter: I) -> ChunkLog {
        ChunkLog { packets: iter.into_iter().collect() }
    }
}

impl Extend<ChunkPacket> for ChunkLog {
    fn extend<I: IntoIterator<Item = ChunkPacket>>(&mut self, iter: I) {
        self.packets.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::TerminationReason;
    use qr_common::{CoreId, Cycle};

    fn packet(tid: u32, ts: u64, icount: u64) -> ChunkPacket {
        ChunkPacket {
            tid: ThreadId(tid),
            core: CoreId(0),
            icount,
            timestamp: Cycle(ts),
            rsw: 0,
            reason: TerminationReason::Syscall,
        }
    }

    fn log() -> ChunkLog {
        [packet(1, 5, 10), packet(0, 2, 30), packet(1, 9, 20), packet(0, 7, 40)]
            .into_iter()
            .collect()
    }

    #[test]
    fn replay_schedule_is_timestamp_sorted() {
        let ts: Vec<u64> = log().replay_schedule().unwrap().iter().map(|p| p.timestamp.0).collect();
        assert_eq!(ts, vec![2, 5, 7, 9]);
    }

    #[test]
    fn duplicate_timestamps_are_rejected() {
        let l: ChunkLog = [packet(0, 3, 1), packet(1, 3, 1)].into_iter().collect();
        assert!(l.replay_schedule().is_err());
    }

    #[test]
    fn per_thread_groups_are_ordered() {
        let groups = log().per_thread();
        assert_eq!(groups.len(), 2);
        let t0: Vec<u64> = groups[&ThreadId(0)].iter().map(|p| p.timestamp.0).collect();
        assert_eq!(t0, vec![2, 7]);
    }

    #[test]
    fn percentiles_and_totals() {
        let l = log();
        assert_eq!(l.total_instructions(), 100);
        assert_eq!(l.chunk_size_percentile(0), 10);
        assert_eq!(l.chunk_size_percentile(100), 40);
        assert_eq!(l.chunk_size_percentile(50), 20);
    }

    #[test]
    fn serialization_round_trips_through_all_encodings() {
        let l = log();
        for enc in Encoding::ALL {
            let bytes = l.to_bytes(enc);
            assert!(qr_common::frame::is_framed(&bytes), "{enc:?} log not framed");
            assert_eq!(ChunkLog::from_bytes(&bytes).unwrap(), l);
        }
    }

    #[test]
    fn legacy_unframed_logs_still_load() {
        let l = log();
        for enc in Encoding::ALL {
            let legacy = enc.encode_stream(l.packets());
            assert_eq!(ChunkLog::from_legacy_bytes(&legacy).unwrap(), l, "{enc:?}");
            // And the auto-detecting path routes them correctly too.
            assert_eq!(ChunkLog::from_bytes(&legacy).unwrap(), l, "{enc:?}");
        }
    }

    #[test]
    fn salvage_recovers_prefix_of_torn_log() {
        let l = log();
        let bytes = l.to_bytes(Encoding::Delta);
        let (whole, report) = ChunkLog::salvage_from_bytes(&bytes);
        assert_eq!(whole, l);
        assert!(report.corruption.is_none());
        let (torn, report) = ChunkLog::salvage_from_bytes(&bytes[..bytes.len() - 1]);
        assert!(report.corruption.is_some());
        assert_eq!(torn.packets(), &l.packets()[..torn.len()]);
    }

    #[test]
    fn salvage_recovers_prefix_of_truncated_legacy_log() {
        // Satellite coverage: the legacy-unframed compatibility path under
        // salvage. A truncated legacy stream must yield the longest clean
        // packet prefix with an honest report — and never panic.
        let l = log();
        for enc in Encoding::ALL {
            let legacy = enc.encode_stream(l.packets());
            // Intact stream salvages fully.
            let (whole, report) = ChunkLog::salvage_from_bytes(&legacy);
            assert_eq!(whole, l, "{enc:?}");
            assert!(report.corruption.is_none(), "{enc:?}");
            assert_eq!(report.expected, Some(l.len() as u64));
            // Every truncation yields a clean prefix and a report.
            for cut in 0..legacy.len() {
                let (torn, report) = ChunkLog::salvage_from_bytes(&legacy[..cut]);
                assert!(report.corruption.is_some(), "{enc:?} cut {cut}");
                assert_eq!(
                    torn.packets(),
                    &l.packets()[..torn.len()],
                    "{enc:?} cut {cut} salvaged a non-prefix"
                );
            }
        }
    }

    #[test]
    fn empty_log_is_fine_everywhere() {
        let l = ChunkLog::new();
        assert!(l.is_empty());
        assert!(l.replay_schedule().unwrap().is_empty());
        assert!(l.per_thread().is_empty());
        assert_eq!(l.total_instructions(), 0);
    }
}
