//! The metrics registry: atomic counters, gauges, and fixed-bucket
//! histograms with quantile readout, rendered as a Prometheus-style
//! text exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s detached
//! from the registry: instrumentation sites resolve them once (usually
//! into a `OnceLock`) and then update lock-free. The registry itself is
//! only locked on registration and on render, never on the hot path.
//!
//! **Determinism rule** (enforced by the observability test battery):
//! metric values are *observations* — nothing in the deterministic
//! pipeline (recording fingerprints, replay outcomes, `repro` report
//! bytes) may read them back. Wall-clock-derived families (latency
//! histograms, drain times) therefore never leak into deterministic
//! output, and flipping [`set_enabled`] cannot change any fingerprint.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables metric mutation (rendering still works).
///
/// Disabling is the determinism-battery switch: recordings taken with
/// metrics on and off must be byte-identical.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether metric mutation is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default buckets for latency-in-microseconds histograms: 10 µs to 10 s.
pub const LATENCY_US: &[u64] =
    &[10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
        500_000, 1_000_000, 2_500_000, 10_000_000];

/// Default buckets for byte-size histograms: 64 B to 64 MiB.
pub const SIZE_BYTES: &[u64] = &[
    64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
];

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are cumulative at render time (Prometheus `le` semantics);
/// internally each atomic slot counts one bucket, with a final implicit
/// `+Inf` slot. Quantiles are estimated by linear interpolation inside
/// the bucket where the rank falls.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 slots; last is +Inf
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket bounds must strictly increase");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        let slot = self.bounds.partition_point(|&b| b < v);
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the microseconds elapsed since `start`.
    pub fn observe_since(&self, start: Instant) {
        if enabled() {
            self.observe(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates quantile `q` in `[0, 1]` by linear interpolation inside
    /// the covering bucket (0 when empty). The top (`+Inf`) bucket
    /// reports its lower bound — the largest finite boundary.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let next = cumulative + c;
            if (next as f64) >= rank && c > 0 {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let Some(&upper) = self.bounds.get(i) else {
                    return *self.bounds.last().expect("nonempty bounds") as f64;
                };
                let into = (rank - cumulative as f64) / c as f64;
                return lower as f64 + into * (upper - lower) as f64;
            }
            cumulative = next;
        }
        *self.bounds.last().expect("nonempty bounds") as f64
    }

    /// Cumulative `(le_bound, count)` pairs, ending with the `+Inf`
    /// bucket (`None` bound).
    fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut running = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, slot) in self.buckets.iter().enumerate() {
            running += slot.load(Ordering::Relaxed);
            out.push((self.bounds.get(i).copied(), running));
        }
        out
    }
}

/// Label pairs attached to one series, normalized and sorted by key.
type LabelSet = Vec<(String, String)>;

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Series {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    help: String,
    series: BTreeMap<LabelSet, Series>,
}

/// A named collection of metric families.
///
/// Most code uses the process-wide [`global`] registry; tests can build
/// private ones.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn normalize(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet =
        labels.iter().map(|(k, v)| (String::from(*k), String::from(*v))).collect();
    set.sort();
    set
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn series<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
        get: impl FnOnce(&Series) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = families
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), series: BTreeMap::new() });
        let series = family.series.entry(normalize(labels)).or_insert_with(make);
        get(series).unwrap_or_else(|| {
            panic!("metric `{name}` already registered as a {}", series.kind())
        })
    }

    /// Registers (or finds) a counter series.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different type — a
    /// static naming bug, caught by any test touching the family.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.series(
            name,
            help,
            labels,
            || Series::Counter(Arc::new(Counter::default())),
            |s| match s {
                Series::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or finds) a gauge series.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.series(
            name,
            help,
            labels,
            || Series::Gauge(Arc::new(Gauge::default())),
            |s| match s {
                Series::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or finds) a histogram series with the given bucket
    /// bounds (bounds are fixed by the first registration).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered with a different type, or
    /// if `bounds` is empty or not strictly increasing.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        self.series(
            name,
            help,
            labels,
            || Series::Histogram(Arc::new(Histogram::new(bounds))),
            |s| match s {
                Series::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Flat `(name, labels, value)` snapshot of every counter and gauge,
    /// plus histogram `_count`/`_sum` totals — for tests and tools.
    pub fn snapshot(&self) -> Vec<(String, LabelSet, f64)> {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => out.push((name.clone(), labels.clone(), c.get() as f64)),
                    Series::Gauge(g) => out.push((name.clone(), labels.clone(), g.get() as f64)),
                    Series::Histogram(h) => {
                        out.push((format!("{name}_count"), labels.clone(), h.count() as f64));
                        out.push((format!("{name}_sum"), labels.clone(), h.sum() as f64));
                    }
                }
            }
        }
        out
    }

    /// Renders the Prometheus-style text exposition: `# HELP`/`# TYPE`
    /// per family, one sample line per series, and for histograms the
    /// cumulative `_bucket{le=...}` series, `_sum`, `_count`, and
    /// p50/p95/p99 quantile samples.
    ///
    /// Output ordering is deterministic (families and label sets are
    /// B-tree sorted); *values* of wall-clock families are not.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for (name, family) in families.iter() {
            let kind =
                family.series.values().next().map_or("counter", Series::kind);
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&sample(name, labels, &[], &format!("{}", c.get())));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&sample(name, labels, &[], &format!("{}", g.get())));
                    }
                    Series::Histogram(h) => {
                        for (bound, cum) in h.cumulative() {
                            let le = bound.map_or_else(|| "+Inf".to_string(), |b| b.to_string());
                            out.push_str(&sample(
                                &format!("{name}_bucket"),
                                labels,
                                &[("le", &le)],
                                &format!("{cum}"),
                            ));
                        }
                        out.push_str(&sample(&format!("{name}_sum"), labels, &[], &format!("{}", h.sum())));
                        out.push_str(&sample(&format!("{name}_count"), labels, &[], &format!("{}", h.count())));
                        for (q, tag) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                            out.push_str(&sample(
                                name,
                                labels,
                                &[("quantile", tag)],
                                &format!("{:.1}", h.quantile(q)),
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

fn sample(name: &str, labels: &LabelSet, extra: &[(&str, &str)], value: &str) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    pairs.extend(extra.iter().map(|(k, v)| format!("{k}=\"{v}\"")));
    if pairs.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{}}} {value}\n", pairs.join(","))
    }
}

/// The process-wide registry every instrumented crate reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Summary of a parsed exposition (see [`parse_exposition`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Exposition {
    /// `(family name, declared type)` pairs, in order of appearance.
    pub families: Vec<(String, String)>,
    /// Total sample lines.
    pub samples: usize,
}

impl Exposition {
    /// Whether a family of the given name was declared.
    pub fn has_family(&self, name: &str) -> bool {
        self.families.iter().any(|(n, _)| n == name)
    }
}

/// Validates a text exposition: every non-comment line must parse as
/// `name{labels} value`, every sample must belong to a `# TYPE`-declared
/// family, and every value must be a finite number.
///
/// This is the checker behind `quickrec stats --metrics` and the CI
/// scrape step.
///
/// # Errors
///
/// Returns a line-numbered description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut families: Vec<(String, String)> = Vec::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return Err(format!("line {lineno}: malformed TYPE comment"));
            };
            if !["counter", "gauge", "histogram", "summary"].contains(&kind) {
                return Err(format!("line {lineno}: unknown metric type `{kind}`"));
            }
            families.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free-form comment
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample has no value"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: unparsable sample value `{value}`"))?;
        if !value.is_finite() {
            return Err(format!("line {lineno}: non-finite sample value"));
        }
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {lineno}: unterminated label set"));
                }
                name
            }
            None => series,
        };
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {lineno}: invalid metric name `{name}`"));
        }
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !families.iter().any(|(n, _)| n == base || n == name) {
            return Err(format!("line {lineno}: sample `{name}` has no TYPE declaration"));
        }
        samples += 1;
    }
    Ok(Exposition { families, samples })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `ENABLED` is process-global: tests that toggle it hold this
    /// write-side lock, tests that count under the default hold the
    /// read side, so parallel test threads never observe a flip.
    static FLAG: std::sync::RwLock<()> = std::sync::RwLock::new(());

    #[test]
    fn counters_and_gauges_accumulate() {
        let _on = FLAG.read().unwrap_or_else(PoisonError::into_inner);
        let reg = Registry::new();
        let c = reg.counter("t_jobs_total", "jobs", &[("kind", "record")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same (name, labels) resolves to the same series.
        reg.counter("t_jobs_total", "jobs", &[("kind", "record")]).inc();
        assert_eq!(c.get(), 6);
        let g = reg.gauge("t_queue_depth", "depth", &[]);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let _on = FLAG.read().unwrap_or_else(PoisonError::into_inner);
        let reg = Registry::new();
        let h = reg.histogram("t_lat_us", "latency", &[], &[10, 100, 1000, 10_000]);
        for v in [5u64, 50, 50, 50, 500, 500, 5000, 20_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 5 + 150 + 1000 + 5000 + 20_000);
        let p50 = h.quantile(0.5);
        assert!((10.0..=100.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= 1000.0, "p99 {p99}");
        // +Inf bucket clamps to the top finite bound.
        assert!(h.quantile(1.0) <= 10_000.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let reg = Registry::new();
        let h = reg.histogram("t_empty", "x", &[], LATENCY_US);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn disabled_metrics_do_not_mutate() {
        let _off = FLAG.write().unwrap_or_else(PoisonError::into_inner);
        let reg = Registry::new();
        let c = reg.counter("t_gated_total", "x", &[]);
        let h = reg.histogram("t_gated_us", "x", &[], &[10, 100]);
        set_enabled(false);
        c.inc();
        h.observe(50);
        set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_panics() {
        let reg = Registry::new();
        reg.counter("t_collide", "x", &[]);
        reg.gauge("t_collide", "x", &[]);
    }

    #[test]
    fn render_parses_and_orders_deterministically() {
        let _on = FLAG.read().unwrap_or_else(PoisonError::into_inner);
        let reg = Registry::new();
        reg.counter("t_b_total", "second", &[("enc", "delta")]).add(3);
        reg.counter("t_b_total", "second", &[("enc", "raw")]).add(1);
        reg.counter("t_a_total", "first", &[]).inc();
        reg.gauge("t_depth", "queue", &[]).set(-2);
        let h = reg.histogram("t_lat_us", "lat", &[("op", "put")], &[10, 100]);
        h.observe(5);
        h.observe(5000);
        let text = reg.render();
        let text2 = reg.render();
        assert_eq!(text, text2, "render must be stable");
        let a = text.find("t_a_total").unwrap();
        let b = text.find("t_b_total").unwrap();
        assert!(a < b, "families sorted by name");
        assert!(text.contains("t_b_total{enc=\"delta\"} 3"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("quantile=\"0.95\""));
        assert!(text.contains("t_depth -2"));
        let parsed = parse_exposition(&text).expect("own render must parse");
        assert!(parsed.has_family("t_lat_us"));
        assert_eq!(parsed.families.len(), 4);
        assert!(parsed.samples >= 10);
    }

    #[test]
    fn parser_rejects_damage() {
        assert!(parse_exposition("# TYPE x counter\nx notanumber").is_err());
        assert!(parse_exposition("x 1").is_err(), "sample without TYPE");
        assert!(parse_exposition("# TYPE x widget\nx 1").is_err(), "unknown type");
        assert!(parse_exposition("# TYPE x counter\nx{le=\"5\" 1").is_err(), "broken labels");
        assert!(parse_exposition("").unwrap().samples == 0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let _on = FLAG.read().unwrap_or_else(PoisonError::into_inner);
        let reg = Registry::new();
        let c = reg.counter("t_mt_total", "x", &[]);
        let h = reg.histogram("t_mt_us", "x", &[], &[100]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (c, h) = (Arc::clone(&c), Arc::clone(&h));
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.observe(i % 200);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }
}
