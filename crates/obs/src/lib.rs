//! `qr-obs`: the unified observability layer for QuickRec-RS.
//!
//! QuickRec's headline result is an *overhead account* — hardware chunk
//! recording is nearly free while the Capo3 software stack costs ~13% —
//! so a reproduction needs first-class instrumentation to see where
//! time and bytes go. This crate provides, with no dependencies beyond
//! `qr-common`:
//!
//! - [`metrics`]: a registry of atomic counters, gauges, and
//!   fixed-bucket histograms (p50/p95/p99 readout), rendered as a
//!   Prometheus-style text exposition and validated by
//!   [`metrics::parse_exposition`].
//! - [`trace`]: a span journal (begin/end/instant events with dense
//!   thread ids and session ids) serialized through the
//!   `qr_common::frame` container, so traces are CRC-verified and
//!   salvageable like every other QuickRec log.
//!
//! # The determinism rule
//!
//! Instrumentation is strictly *observational*. Recorder, replayer,
//! store, and server code may write metrics and spans, but nothing on a
//! deterministic path — recording fingerprints, replay outcomes, or
//! `repro` report bytes — may ever read them back. Wall-clock-derived
//! values (latencies, drain times, trace timestamps) therefore never
//! reach deterministic output, and flipping [`metrics::set_enabled`]
//! cannot change any fingerprint. The observability test battery
//! enforces this by recording with metrics on and off and comparing
//! bytes.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    enabled, global, parse_exposition, set_enabled, Counter, Exposition, Gauge, Histogram,
    Registry, LATENCY_US, SIZE_BYTES,
};
pub use trace::{EventKind, Journal, Span, TraceEvent};
