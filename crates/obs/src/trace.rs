//! The structured trace-span journal.
//!
//! A journal is an append-only sequence of [`TraceEvent`]s — span
//! begin/end pairs and instant markers, each stamped with a journal
//! sequence number, a small dense thread id, an optional session id,
//! and microseconds since the journal epoch. Events serialize through
//! the `qr_common::frame` container ([`PayloadKind::TraceJournal`], one
//! record per event) so trace files are CRC-verifiable and salvageable
//! exactly like chunk and input logs: a process that dies mid-trace
//! leaves a journal whose valid prefix is still readable.
//!
//! The journal is wall-clock-derived and therefore *observational
//! only*: nothing deterministic may read it back (see the crate docs).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use qr_common::error::{QrError, Result};
use qr_common::frame::{self, FrameFault, PayloadKind};
use qr_common::varint;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point event with no duration.
    Instant,
}

impl EventKind {
    fn code(self) -> u8 {
        match self {
            EventKind::Begin => 0,
            EventKind::End => 1,
            EventKind::Instant => 2,
        }
    }

    fn from_code(code: u8) -> Option<EventKind> {
        match code {
            0 => Some(EventKind::Begin),
            1 => Some(EventKind::End),
            2 => Some(EventKind::Instant),
            _ => None,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Journal-wide sequence number (allocation order, dense from 0).
    pub seq: u64,
    /// Begin, end, or instant.
    pub kind: EventKind,
    /// Span name, e.g. `record.run` or `store.put`.
    pub name: String,
    /// Dense per-journal thread id (assigned on a thread's first event).
    pub thread: u64,
    /// Session / recording id, 0 when not applicable.
    pub session: u64,
    /// Microseconds since the journal epoch.
    pub micros: u64,
}

impl TraceEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.seq);
        buf.push(self.kind.code());
        varint::write_u64(buf, self.thread);
        varint::write_u64(buf, self.session);
        varint::write_u64(buf, self.micros);
        varint::write_u64(buf, self.name.len() as u64);
        buf.extend_from_slice(self.name.as_bytes());
    }

    fn decode(payload: &[u8]) -> Result<TraceEvent> {
        let bad = |detail: &str| QrError::LogDecode(format!("trace event: {detail}"));
        let mut off = 0usize;
        let next_u64 = |payload: &[u8], off: &mut usize| -> Result<u64> {
            let (v, n) = varint::read_u64(&payload[*off..])?;
            *off += n;
            Ok(v)
        };
        let seq = next_u64(payload, &mut off)?;
        let kind_code = *payload.get(off).ok_or_else(|| bad("truncated before kind byte"))?;
        off += 1;
        let kind = EventKind::from_code(kind_code)
            .ok_or_else(|| bad(&format!("unknown event kind {kind_code}")))?;
        let thread = next_u64(payload, &mut off)?;
        let session = next_u64(payload, &mut off)?;
        let micros = next_u64(payload, &mut off)?;
        let name_len = next_u64(payload, &mut off)? as usize;
        let end = off.checked_add(name_len).filter(|&e| e <= payload.len());
        let name_bytes = end.map(|e| &payload[off..e]).ok_or_else(|| bad("truncated span name"))?;
        off = end.expect("checked above");
        if off != payload.len() {
            return Err(bad("trailing bytes after event"));
        }
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| bad("span name is not UTF-8"))?
            .to_string();
        Ok(TraceEvent { seq, kind, name, thread, session, micros })
    }
}

/// Serializes events into a framed [`PayloadKind::TraceJournal`]
/// container. Record 0 commits to the event count — a truncation that
/// happens to land on a record boundary is otherwise indistinguishable
/// from a shorter journal at the frame layer — then one record per
/// event.
pub fn to_bytes(events: &[TraceEvent]) -> Vec<u8> {
    let mut w = frame::Writer::new(PayloadKind::TraceJournal);
    let mut buf = Vec::with_capacity(64);
    varint::write_u64(&mut buf, events.len() as u64);
    w.record(&buf);
    for event in events {
        buf.clear();
        event.encode(&mut buf);
        w.record(&buf);
    }
    w.finish()
}

/// Reads the count record (record 0): the committed event count.
fn decode_count(payload: &[u8]) -> Result<u64> {
    let (count, used) = varint::read_u64(payload)?;
    if used != payload.len() {
        return Err(QrError::LogDecode("trace journal: malformed count record".into()));
    }
    Ok(count)
}

/// Strictly decodes a trace-journal container.
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] for container faults and
/// [`QrError::LogDecode`] for malformed event payloads or an event
/// count that disagrees with the committed count record (a journal
/// truncated exactly at a record boundary).
pub fn from_bytes(buf: &[u8]) -> Result<Vec<TraceEvent>> {
    let records = frame::read(buf, PayloadKind::TraceJournal, "trace journal")?;
    let Some((count_record, event_records)) = records.split_first() else {
        return Err(QrError::LogDecode("trace journal: missing count record".into()));
    };
    let count = decode_count(count_record)?;
    let events: Vec<TraceEvent> =
        event_records.iter().map(|r| TraceEvent::decode(r)).collect::<Result<_>>()?;
    if events.len() as u64 != count {
        return Err(QrError::LogDecode(format!(
            "trace journal: count record commits to {count} event(s), found {} — \
             truncated at a record boundary",
            events.len()
        )));
    }
    Ok(events)
}

/// Tolerantly decodes a (possibly torn) trace-journal container:
/// returns every event of the valid prefix plus the frame fault, if
/// any, that stopped the scan. Records that frame-verify but fail event
/// decoding end the salvage at that point (never a panic).
pub fn salvage(buf: &[u8]) -> (Vec<TraceEvent>, Option<FrameFault>) {
    let scanned = frame::scan(buf);
    if scanned.kind != Some(PayloadKind::TraceJournal) && scanned.fault.is_none() {
        // Valid container of the wrong kind: nothing salvageable as a trace.
        return (Vec::new(), None);
    }
    // Record 0 is the count commitment, not an event; a journal torn
    // before it salvages nothing.
    let mut events = Vec::with_capacity(scanned.records.len().saturating_sub(1));
    for record in scanned.records.iter().skip(1) {
        match TraceEvent::decode(record) {
            Ok(event) => events.push(event),
            Err(_) => break,
        }
    }
    (events, scanned.fault)
}

/// An in-memory trace journal.
///
/// Most code records into the process-wide [`global`] journal, which is
/// disabled (zero-cost fast path) unless `--trace-out` or a test turns
/// it on.
pub struct Journal {
    enabled: AtomicBool,
    epoch: Instant,
    seq: AtomicU64,
    next_thread: AtomicU64,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new()
    }
}

impl Journal {
    /// Creates a disabled journal; call [`Journal::set_enabled`] to
    /// start recording.
    pub fn new() -> Journal {
        Journal {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            next_thread: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Turns event recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn thread_id(&self) -> u64 {
        thread_local! {
            static ID: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
        }
        ID.with(|cell| match cell.get() {
            Some(id) => id,
            None => {
                let id = self.next_thread.fetch_add(1, Ordering::Relaxed);
                cell.set(Some(id));
                id
            }
        })
    }

    fn push(&self, kind: EventKind, name: &str, session: u64) {
        let event = TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            kind,
            name: name.to_string(),
            thread: self.thread_id(),
            session,
            micros: self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        };
        self.events.lock().unwrap_or_else(PoisonError::into_inner).push(event);
    }

    /// Records an instant event.
    pub fn instant(&self, name: &str, session: u64) {
        if self.enabled() {
            self.push(EventKind::Instant, name, session);
        }
    }

    /// Opens a span; the returned guard records the matching end event
    /// on drop. Free when the journal is disabled.
    pub fn span<'j>(&'j self, name: &'static str, session: u64) -> Span<'j> {
        if self.enabled() {
            self.push(EventKind::Begin, name, session);
            Span { journal: Some(self), name, session }
        } else {
            Span { journal: None, name, session }
        }
    }

    /// Takes every recorded event, leaving the journal empty (sequence
    /// numbers and thread ids keep advancing).
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// RAII guard that closes a span (see [`Journal::span`]).
pub struct Span<'j> {
    journal: Option<&'j Journal>,
    name: &'static str,
    session: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(journal) = self.journal {
            if journal.enabled() {
                journal.push(EventKind::End, self.name, self.session);
            }
        }
    }
}

/// The process-wide journal, disabled until `--trace-out` (or a test)
/// enables it.
pub fn global() -> &'static Journal {
    static GLOBAL: OnceLock<Journal> = OnceLock::new();
    GLOBAL.get_or_init(Journal::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                seq: 0,
                kind: EventKind::Begin,
                name: "record.run".into(),
                thread: 0,
                session: 7,
                micros: 10,
            },
            TraceEvent {
                seq: 1,
                kind: EventKind::Instant,
                name: "chunk.flush".into(),
                thread: 1,
                session: 7,
                micros: 25,
            },
            TraceEvent {
                seq: 2,
                kind: EventKind::End,
                name: "record.run".into(),
                thread: 0,
                session: 7,
                micros: 90,
            },
        ]
    }

    #[test]
    fn events_round_trip_through_frames() {
        let events = sample_events();
        let bytes = to_bytes(&events);
        assert_eq!(from_bytes(&bytes).unwrap(), events);
        let (salvaged, fault) = salvage(&bytes);
        assert_eq!(salvaged, events);
        assert_eq!(fault, None);
    }

    #[test]
    fn empty_journal_round_trips() {
        let bytes = to_bytes(&[]);
        assert!(from_bytes(&bytes).unwrap().is_empty());
    }

    #[test]
    fn truncation_salvages_event_prefix() {
        let events = sample_events();
        let bytes = to_bytes(&events);
        let cut = bytes.len() - 3;
        assert!(from_bytes(&bytes[..cut]).is_err());
        let (salvaged, fault) = salvage(&bytes[..cut]);
        assert_eq!(salvaged, events[..2]);
        assert!(fault.is_some());
    }

    #[test]
    fn journal_records_spans_and_instants() {
        let journal = Journal::new();
        journal.instant("ignored.while.disabled", 0);
        assert!(journal.is_empty());
        journal.set_enabled(true);
        {
            let _span = journal.span("outer", 3);
            journal.instant("mark", 3);
        }
        let events = journal.drain();
        assert!(journal.is_empty());
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[2].kind, EventKind::End);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].micros <= w[1].micros));
        assert_eq!(events[0].session, 3);
        // Round-trip what the journal produced.
        assert_eq!(from_bytes(&to_bytes(&events)).unwrap(), events);
    }

    #[test]
    fn threads_get_distinct_dense_ids() {
        let journal = Journal::new();
        journal.set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| journal.instant("tick", 0));
            }
        });
        let events = journal.drain();
        let mut threads: Vec<u64> = events.iter().map(|e| e.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4, "each thread gets its own id");
        assert!(threads.iter().all(|&t| t < 4), "ids are dense");
    }

    #[test]
    fn wrong_kind_container_is_rejected_strictly_and_empty_on_salvage() {
        let mut w = frame::Writer::new(PayloadKind::ChunkLog);
        w.record(b"not a trace");
        let bytes = w.finish();
        assert!(from_bytes(&bytes).is_err());
        let (salvaged, fault) = salvage(&bytes);
        assert!(salvaged.is_empty());
        assert!(fault.is_none());
    }

    #[test]
    fn malformed_event_payloads_are_errors_not_panics() {
        // Frame-valid records with garbage payloads.
        for payload in [&b""[..], &b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"[..], &b"\x00\x09"[..]] {
            let mut w = frame::Writer::new(PayloadKind::TraceJournal);
            w.record(payload);
            let bytes = w.finish();
            assert!(from_bytes(&bytes).is_err(), "payload {payload:?} must fail decode");
            let (salvaged, _) = salvage(&bytes);
            assert!(salvaged.is_empty());
        }
        // Oversized name length.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 0); // seq
        buf.push(0); // Begin
        varint::write_u64(&mut buf, 0); // thread
        varint::write_u64(&mut buf, 0); // session
        varint::write_u64(&mut buf, 0); // micros
        varint::write_u64(&mut buf, u64::MAX); // absurd name length
        let mut w = frame::Writer::new(PayloadKind::TraceJournal);
        w.record(&buf);
        assert!(from_bytes(&w.finish()).is_err());
    }
}
