//! The per-recording store manifest.
//!
//! Every store entry is a directory holding one compressed container
//! per recording file plus `manifest.qrs`, a framed
//! ([`PayloadKind::StoreManifest`]) single-record document binding them
//! together: entry identity, the chunk-log encoding, the recording's
//! outcome fingerprint, and per-file geometry (uncompressed/compressed
//! sizes, block count, CRC-32 of the uncompressed image). The manifest
//! is written *last* and the entry directory is renamed into place
//! atomically, so a manifest that parses implies the entry was complete
//! when committed — [`crate::RecordingStore`] relies on this for its
//! no-torn-entries guarantee.

use qr_common::frame::{self, PayloadKind};
use qr_common::{varint, QrError, Result};
use quickrec_core::Encoding;

/// Manifest format version.
pub const MANIFEST_VERSION: u64 = 1;

/// Geometry and integrity data for one compressed file in an entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestFile {
    /// Logical recording file name (`meta.qrm`, `chunks.qrl`, ...).
    pub name: String,
    /// Uncompressed image size in bytes.
    pub uncompressed: u64,
    /// Compressed container size in bytes.
    pub compressed: u64,
    /// Compression blocks in the container.
    pub blocks: u64,
    /// CRC-32 of the uncompressed image.
    pub crc: u32,
}

/// One store entry's manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Store-assigned entry id (sequential, unique within a store root).
    pub id: u64,
    /// Client-supplied entry name (workload or submission label).
    pub name: String,
    /// Chunk-log encoding the entry was stored with.
    pub encoding: Encoding,
    /// The recording's architectural-outcome fingerprint.
    pub fingerprint: u64,
    /// Per-file geometry, in save-layout order.
    pub files: Vec<ManifestFile>,
}

fn corrupt(offset: u64, detail: String) -> QrError {
    QrError::Corrupt { what: "store manifest".into(), offset, detail }
}

impl Manifest {
    /// Serializes the manifest as a framed single-record container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::new();
        varint::write_u64(&mut p, MANIFEST_VERSION);
        varint::write_u64(&mut p, self.id);
        varint::write_u64(&mut p, self.name.len() as u64);
        p.extend_from_slice(self.name.as_bytes());
        p.push(self.encoding.tag());
        varint::write_u64(&mut p, self.fingerprint);
        varint::write_u64(&mut p, self.files.len() as u64);
        for f in &self.files {
            varint::write_u64(&mut p, f.name.len() as u64);
            p.extend_from_slice(f.name.as_bytes());
            varint::write_u64(&mut p, f.uncompressed);
            varint::write_u64(&mut p, f.compressed);
            varint::write_u64(&mut p, f.blocks);
            p.extend_from_slice(&f.crc.to_le_bytes());
        }
        let mut w = frame::Writer::new(PayloadKind::StoreManifest);
        w.record(&p);
        w.finish()
    }

    /// Parses a manifest container.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] for any structural damage; never
    /// panics on arbitrary bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<Manifest> {
        let records = frame::read(buf, PayloadKind::StoreManifest, "store manifest")?;
        let [payload] = records[..] else {
            return Err(corrupt(
                frame::HEADER_LEN as u64,
                format!("expected exactly 1 record, found {}", records.len()),
            ));
        };
        let base = (frame::HEADER_LEN + 4) as u64;
        let mut off = 0usize;
        let next = |payload: &[u8], off: &mut usize, what: &str| -> Result<u64> {
            let (v, n) = varint::read_u64(payload.get(*off..).unwrap_or(&[]))
                .map_err(|e| corrupt(base + *off as u64, format!("{what}: {e}")))?;
            *off += n;
            Ok(v)
        };
        let string = |payload: &[u8], off: &mut usize, what: &str| -> Result<String> {
            let len = next(payload, off, what)? as usize;
            let bytes = payload
                .get(*off..*off + len)
                .ok_or_else(|| corrupt(base + *off as u64, format!("truncated {what}")))?;
            *off += len;
            String::from_utf8(bytes.to_vec())
                .map_err(|_| corrupt(base + *off as u64, format!("{what} is not utf-8")))
        };
        let version = next(payload, &mut off, "version")?;
        if version != MANIFEST_VERSION {
            return Err(corrupt(base, format!("unsupported manifest version {version}")));
        }
        let id = next(payload, &mut off, "id")?;
        let name = string(payload, &mut off, "entry name")?;
        let encoding = match payload.get(off) {
            Some(&tag) => Encoding::ALL
                .into_iter()
                .find(|e| e.tag() == tag)
                .ok_or_else(|| corrupt(base + off as u64, format!("unknown encoding tag {tag}")))?,
            None => return Err(corrupt(base + off as u64, "truncated encoding tag".into())),
        };
        off += 1;
        let fingerprint = next(payload, &mut off, "fingerprint")?;
        let count = next(payload, &mut off, "file count")?;
        if count > 16 {
            return Err(corrupt(base + off as u64, format!("implausible file count {count}")));
        }
        let mut files = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name = string(payload, &mut off, "file name")?;
            let uncompressed = next(payload, &mut off, "uncompressed size")?;
            let compressed = next(payload, &mut off, "compressed size")?;
            let blocks = next(payload, &mut off, "block count")?;
            let crc_bytes = payload
                .get(off..off + 4)
                .ok_or_else(|| corrupt(base + off as u64, "truncated file crc".into()))?;
            off += 4;
            files.push(ManifestFile {
                name,
                uncompressed,
                compressed,
                blocks,
                crc: u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")),
            });
        }
        if off != payload.len() {
            return Err(corrupt(
                base + off as u64,
                format!("{} trailing bytes", payload.len() - off),
            ));
        }
        Ok(Manifest { id, name, encoding, fingerprint, files })
    }

    /// Total uncompressed bytes across files.
    pub fn uncompressed_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.uncompressed).sum()
    }

    /// Total compressed bytes across files.
    pub fn compressed_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.compressed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_common::SplitMix64;

    fn sample() -> Manifest {
        Manifest {
            id: 42,
            name: "fft-4t".into(),
            encoding: Encoding::Delta,
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            files: vec![
                ManifestFile {
                    name: "meta.qrm".into(),
                    uncompressed: 120,
                    compressed: 100,
                    blocks: 1,
                    crc: 7,
                },
                ManifestFile {
                    name: "chunks.qrl".into(),
                    uncompressed: 90_000,
                    compressed: 21_000,
                    blocks: 3,
                    crc: 0xFFFF_0001,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(Manifest::from_bytes(&m.to_bytes()).unwrap(), m);
        assert_eq!(m.uncompressed_bytes(), 90_120);
        assert_eq!(m.compressed_bytes(), 21_100);
    }

    #[test]
    fn mutations_never_panic() {
        let buf = sample().to_bytes();
        let mut rng = SplitMix64::new(11);
        for _ in 0..2000 {
            let mut bad = buf.clone();
            match rng.below(2) {
                0 => {
                    let cut = rng.below(bad.len() as u64 + 1) as usize;
                    bad.truncate(cut);
                }
                _ => {
                    let at = rng.below(bad.len() as u64) as usize;
                    bad[at] ^= 1 << rng.below(8);
                }
            }
            match Manifest::from_bytes(&bad) {
                Ok(m) => assert_eq!(m, sample(), "only a no-op mutation may parse"),
                Err(QrError::Corrupt { .. }) => {}
                Err(other) => panic!("non-structured error: {other}"),
            }
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let mut w = frame::Writer::new(PayloadKind::Meta);
        w.record(b"not a manifest");
        assert!(Manifest::from_bytes(&w.finish()).is_err());
    }
}
