#![warn(missing_docs)]

//! `qr-store` — a compressed, indexed repository for QuickRec
//! recordings.
//!
//! The paper's software stack (Capo3) turns raw chunk logs into a
//! record/replay *system*; systems keep recordings around. This crate
//! is the storage layer the `quickrecd` daemon (and the CLI) put
//! recordings into:
//!
//! - [`lz`] — a dependency-free LZ77-style codec (greedy hash-chain
//!   matcher, varint sequence stream), panic-free on arbitrary input,
//! - [`block`] — a framed block container over [`lz`]: independent
//!   32 KiB blocks, a per-block CRC-32 of the uncompressed bytes, and a
//!   block index giving [`block::read_range`] random access without
//!   decompressing the whole log (checkpointed replay's access
//!   pattern), plus [`block::salvage`] for longest-valid-prefix
//!   recovery of torn containers,
//! - [`manifest`] — the versioned per-entry manifest binding an entry's
//!   compressed files to its identity, encoding and outcome
//!   fingerprint,
//! - [`store`] — [`RecordingStore`]: atomic `put` (stage + rename, the
//!   manifest written last, so no torn entry is ever visible), strict
//!   `fetch` with every CRC layer verified, and `fetch_salvaged`
//!   feeding damaged entries into the recording layer's existing
//!   salvage path.

pub mod block;
pub mod lz;
pub mod manifest;
mod obs;
pub mod store;

pub use block::{BlockIndex, BlockSalvage, BLOCK_SIZE};
pub use manifest::{Manifest, ManifestFile, MANIFEST_VERSION};
pub use store::{RecordingStore, COMPRESSED_SUFFIX, MANIFEST_FILE};
