//! Block-compressed log container with a random-access index.
//!
//! A compressed log is a framed container ([`PayloadKind::CompressedLog`])
//! whose record 0 is the **block index** and whose remaining records are
//! the compressed blocks, in order:
//!
//! ```text
//! record 0:  format version · block size · total length · block count ·
//!            per block { uncompressed len · compressed len · CRC-32 of
//!            the uncompressed bytes }
//! record 1..=count:  method byte (0 = stored, 1 = LZ) + block payload
//! ```
//!
//! Three integrity layers compose: the frame's per-record CRC catches
//! torn or flipped *compressed* bytes, the index's per-block CRC catches
//! decoder divergence on the *uncompressed* bytes, and the layer above
//! (the recording log decoders) re-checks everything semantically. A
//! block whose frame record is intact decompresses independently of its
//! neighbours, which is what gives [`read_range`] random access and
//! [`salvage`] its longest-valid-prefix guarantee.

use crate::lz;
use qr_common::frame::{self, PayloadKind};
use qr_common::{crc32, varint, QrError, Result};

/// Default uncompressed block size. Small enough that checkpointed
/// replay touching one region decompresses little, large enough that the
/// LZ window finds the logs' periodic structure.
pub const BLOCK_SIZE: usize = 32 * 1024;

// The LZ match finder stores positions as `u32`; a block-size bump past
// that bound would silently truncate match offsets. Fail the build
// instead (`compress_with_block_size` re-checks its runtime argument).
const _: () = assert!(BLOCK_SIZE <= lz::MAX_INPUT, "BLOCK_SIZE exceeds the LZ u32 offset bound");

/// Index format version.
pub const INDEX_VERSION: u64 = 1;

const METHOD_STORED: u8 = 0;
const METHOD_LZ: u8 = 1;

/// What the store knows about one compressed block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Uncompressed payload length.
    pub uncompressed_len: u32,
    /// Stored record-payload length (method byte + compressed bytes).
    pub stored_len: u32,
    /// CRC-32 of the uncompressed bytes.
    pub crc: u32,
}

/// Parsed block index (record 0 of the container).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockIndex {
    /// Uncompressed block size used by the writer.
    pub block_size: u64,
    /// Total uncompressed length.
    pub total_len: u64,
    /// Per-block metadata, in order.
    pub blocks: Vec<BlockEntry>,
}

impl BlockIndex {
    /// Which blocks cover the byte range `[start, start + len)`, along
    /// with the range's offset inside the first covering block.
    fn covering(&self, start: u64, len: u64) -> Result<(usize, usize, usize)> {
        let end = start.checked_add(len).filter(|&e| e <= self.total_len).ok_or_else(|| {
            QrError::Corrupt {
                what: "compressed log".into(),
                offset: 0,
                detail: format!(
                    "range {start}+{len} outside the {}-byte log",
                    self.total_len
                ),
            }
        })?;
        if self.block_size == 0 {
            return Ok((0, 0, 0));
        }
        let first = (start / self.block_size) as usize;
        let last = if end == start { first } else { ((end - 1) / self.block_size) as usize };
        Ok((first, last, (start % self.block_size) as usize))
    }
}

fn corrupt(offset: u64, detail: String) -> QrError {
    QrError::Corrupt { what: "compressed log".into(), offset, detail }
}

/// Compresses `data` into a framed block container with [`BLOCK_SIZE`]
/// blocks.
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with_block_size(data, BLOCK_SIZE)
}

/// [`compress`] with an explicit block size (tests and tuning).
///
/// Blocks where LZ does not win are stored raw, so the container never
/// expands its input by more than the index overhead.
pub fn compress_with_block_size(data: &[u8], block_size: usize) -> Vec<u8> {
    assert!(block_size > 0, "block size must be positive");
    assert!(block_size <= lz::MAX_INPUT, "block size exceeds the LZ u32 offset bound");
    let start = crate::obs::clock();
    let blocks: Vec<&[u8]> = data.chunks(block_size).collect();
    let mut payloads = Vec::with_capacity(blocks.len());
    let mut index = Vec::new();
    varint::write_u64(&mut index, INDEX_VERSION);
    varint::write_u64(&mut index, block_size as u64);
    varint::write_u64(&mut index, data.len() as u64);
    varint::write_u64(&mut index, blocks.len() as u64);
    for block in &blocks {
        let packed = lz::compress(block);
        let mut payload = Vec::with_capacity(packed.len().min(block.len()) + 1);
        if packed.len() < block.len() {
            payload.push(METHOD_LZ);
            payload.extend_from_slice(&packed);
        } else {
            payload.push(METHOD_STORED);
            payload.extend_from_slice(block);
        }
        varint::write_u64(&mut index, block.len() as u64);
        varint::write_u64(&mut index, payload.len() as u64);
        index.extend_from_slice(&crc32::checksum(block).to_le_bytes());
        payloads.push(payload);
    }
    let mut w = frame::Writer::new(PayloadKind::CompressedLog);
    w.record(&index);
    for payload in &payloads {
        w.record(payload);
    }
    let out = w.finish();
    crate::obs::encoded(start, data.len(), out.len());
    out
}

/// Parses record 0 of `payload` (the index record's bytes).
fn parse_index(payload: &[u8]) -> Result<BlockIndex> {
    let base = (frame::HEADER_LEN + 4) as u64; // index payload's file offset
    let mut off = 0usize;
    let mut next = |what: &str| -> Result<u64> {
        let (v, n) = varint::read_u64_canonical(payload.get(off..).unwrap_or(&[]))
            .map_err(|e| corrupt(base + off as u64, format!("index {what}: {e}")))?;
        off += n;
        Ok(v)
    };
    let version = next("version")?;
    if version != INDEX_VERSION {
        return Err(corrupt(base, format!("unsupported index version {version}")));
    }
    let block_size = next("block size")?;
    let total_len = next("total length")?;
    let count = next("block count")?;
    if count > total_len.max(1) {
        // Each block holds at least one byte (except a single empty log).
        return Err(corrupt(base, format!("{count} blocks cannot cover {total_len} bytes")));
    }
    drop(next);
    let mut blocks = Vec::with_capacity(count.min(1 << 20) as usize);
    let mut covered = 0u64;
    for _ in 0..count {
        let mut next = |what: &str| -> Result<u64> {
            let (v, n) = varint::read_u64_canonical(payload.get(off..).unwrap_or(&[]))
                .map_err(|e| corrupt(base + off as u64, format!("index {what}: {e}")))?;
            off += n;
            Ok(v)
        };
        let uncompressed_len = next("block length")?;
        let stored_len = next("stored length")?;
        let crc_bytes = payload
            .get(off..off + 4)
            .ok_or_else(|| corrupt(base + off as u64, "truncated block crc".into()))?;
        off += 4;
        if uncompressed_len > block_size || uncompressed_len == 0 && total_len != 0 {
            return Err(corrupt(base, format!("block length {uncompressed_len} out of range")));
        }
        covered = covered
            .checked_add(uncompressed_len)
            .ok_or_else(|| corrupt(base, "block lengths overflow".into()))?;
        blocks.push(BlockEntry {
            uncompressed_len: uncompressed_len as u32,
            stored_len: u32::try_from(stored_len)
                .map_err(|_| corrupt(base, "stored length out of range".into()))?,
            crc: u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")),
        });
    }
    if off != payload.len() {
        return Err(corrupt(base + off as u64, "trailing index bytes".into()));
    }
    if covered != total_len {
        return Err(corrupt(
            base,
            format!("blocks cover {covered} bytes, index claims {total_len}"),
        ));
    }
    Ok(BlockIndex { block_size, total_len, blocks })
}

/// Reads the block index without touching any block.
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] for any container or index damage.
pub fn read_index(buf: &[u8]) -> Result<BlockIndex> {
    let records = frame::read(buf, PayloadKind::CompressedLog, "compressed log")?;
    let Some((index_payload, blocks)) = records.split_first() else {
        return Err(corrupt(frame::HEADER_LEN as u64, "missing index record".into()));
    };
    let index = parse_index(index_payload)?;
    if blocks.len() != index.blocks.len() {
        return Err(corrupt(
            frame::HEADER_LEN as u64,
            format!("index lists {} blocks, container holds {}", index.blocks.len(), blocks.len()),
        ));
    }
    for (i, (entry, rec)) in index.blocks.iter().zip(blocks).enumerate() {
        if rec.len() != entry.stored_len as usize {
            return Err(corrupt(
                frame::HEADER_LEN as u64,
                format!("block {i} stored length {} != index {}", rec.len(), entry.stored_len),
            ));
        }
    }
    Ok(index)
}

/// Decompresses one block record payload (method byte + data).
fn decompress_block(payload: &[u8], entry: &BlockEntry, i: usize) -> Result<Vec<u8>> {
    let (&method, data) = payload
        .split_first()
        .ok_or_else(|| corrupt(0, format!("block {i}: empty record")))?;
    let bytes = match method {
        METHOD_STORED => {
            if data.len() != entry.uncompressed_len as usize {
                return Err(corrupt(
                    0,
                    format!("block {i}: stored length {} != {}", data.len(), entry.uncompressed_len),
                ));
            }
            data.to_vec()
        }
        METHOD_LZ => lz::decompress(data, entry.uncompressed_len as usize)
            .map_err(|e| corrupt(0, format!("block {i}: {e}")))?,
        other => return Err(corrupt(0, format!("block {i}: unknown method {other}"))),
    };
    if crc32::checksum(&bytes) != entry.crc {
        return Err(corrupt(0, format!("block {i}: uncompressed crc mismatch")));
    }
    Ok(bytes)
}

/// Strictly decompresses a whole container.
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] for any frame, index or block damage.
pub fn decompress(buf: &[u8]) -> Result<Vec<u8>> {
    let start = crate::obs::clock();
    let index = read_index(buf)?;
    let records = frame::read(buf, PayloadKind::CompressedLog, "compressed log")?;
    let mut out = Vec::with_capacity(index.total_len as usize);
    for (i, (entry, rec)) in index.blocks.iter().zip(&records[1..]).enumerate() {
        out.extend_from_slice(&decompress_block(rec, entry, i)?);
    }
    crate::obs::decoded(start);
    Ok(out)
}

/// Random access: decompresses only the blocks covering
/// `[start, start + len)` and returns those bytes plus the number of
/// blocks actually decompressed (the cost metric checkpointed replay
/// cares about).
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] for container damage or an
/// out-of-bounds range.
pub fn read_range(buf: &[u8], start: u64, len: u64) -> Result<(Vec<u8>, usize)> {
    let index = read_index(buf)?;
    let records = frame::read(buf, PayloadKind::CompressedLog, "compressed log")?;
    let (first, last, skip) = index.covering(start, len)?;
    let mut out = Vec::with_capacity(len as usize);
    let mut touched = 0usize;
    if len > 0 {
        for i in first..=last {
            let entry = &index.blocks[i];
            out.extend_from_slice(&decompress_block(records[i + 1], entry, i)?);
            touched += 1;
        }
        out.drain(..skip);
        out.truncate(len as usize);
    }
    Ok((out, touched))
}

/// What [`salvage`] recovered from a damaged container.
#[derive(Debug, Clone)]
pub struct BlockSalvage {
    /// The longest CRC-valid uncompressed prefix.
    pub bytes: Vec<u8>,
    /// Blocks recovered intact.
    pub blocks_recovered: usize,
    /// Blocks the index promised (0 when the index itself was lost).
    pub blocks_total: usize,
    /// The first fault encountered, if any.
    pub fault: Option<QrError>,
}

/// Tolerant read: recovers the longest valid prefix of a torn or
/// corrupted container, so a damaged store entry drops into the
/// recording layer's existing salvage path instead of failing hard.
///
/// The prefix guarantee: every returned byte passed both the frame CRC
/// (compressed) and the index CRC (uncompressed) for its position, so
/// `bytes` is a prefix of the original log unless CRC-32 itself was
/// defeated.
pub fn salvage(buf: &[u8]) -> BlockSalvage {
    let s = salvage_inner(buf);
    crate::obs::salvaged(s.fault.is_some(), s.blocks_recovered, s.blocks_total);
    s
}

fn salvage_inner(buf: &[u8]) -> BlockSalvage {
    let scanned = frame::scan(buf);
    let mut fault: Option<QrError> =
        scanned.fault.map(|f| f.to_error("compressed log"));
    if fault.is_none() && scanned.kind != Some(PayloadKind::CompressedLog) {
        let name = scanned.kind.map_or("unknown payload", PayloadKind::name);
        fault = Some(corrupt(5, format!("container holds a {name}, expected a compressed log")));
    }
    let Some((index_payload, blocks)) = scanned.records.split_first() else {
        return BlockSalvage {
            bytes: Vec::new(),
            blocks_recovered: 0,
            blocks_total: 0,
            fault: fault.or_else(|| Some(corrupt(frame::HEADER_LEN as u64, "missing index record".into()))),
        };
    };
    let index = match parse_index(index_payload) {
        Ok(index) => index,
        Err(e) => {
            return BlockSalvage {
                bytes: Vec::new(),
                blocks_recovered: 0,
                blocks_total: 0,
                fault: Some(e),
            }
        }
    };
    let mut out = Vec::new();
    let mut recovered = 0usize;
    for (i, entry) in index.blocks.iter().enumerate() {
        let Some(rec) = blocks.get(i) else {
            fault.get_or_insert_with(|| {
                corrupt(scanned.valid_len as u64, format!("container torn at block {i}"))
            });
            break;
        };
        match decompress_block(rec, entry, i) {
            Ok(bytes) => {
                out.extend_from_slice(&bytes);
                recovered += 1;
            }
            Err(e) => {
                fault.get_or_insert(e);
                break;
            }
        }
    }
    if fault.is_none() && blocks.len() > index.blocks.len() {
        fault = Some(corrupt(
            scanned.valid_len as u64,
            format!("{} records beyond the indexed blocks", blocks.len() - index.blocks.len()),
        ));
    }
    BlockSalvage { bytes: out, blocks_recovered: recovered, blocks_total: index.blocks.len(), fault }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_common::SplitMix64;

    fn sample(len: usize) -> Vec<u8> {
        // Periodic structure with noise, like a framed log.
        let mut rng = SplitMix64::new(len as u64 + 1);
        (0..len)
            .map(|i| if i % 7 == 0 { rng.next_u64() as u8 } else { (i / 11) as u8 })
            .collect()
    }

    #[test]
    fn roundtrip_across_sizes() {
        for len in [0usize, 1, 100, BLOCK_SIZE - 1, BLOCK_SIZE, BLOCK_SIZE + 1, 3 * BLOCK_SIZE + 17]
        {
            let data = sample(len);
            let packed = compress(&data);
            assert_eq!(decompress(&packed).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn index_reports_geometry() {
        let data = sample(3 * BLOCK_SIZE + 17);
        let packed = compress(&data);
        let index = read_index(&packed).unwrap();
        assert_eq!(index.total_len, data.len() as u64);
        assert_eq!(index.blocks.len(), 4);
        assert_eq!(index.blocks[3].uncompressed_len, 17);
    }

    #[test]
    fn read_range_touches_only_covering_blocks() {
        let data = sample(4 * BLOCK_SIZE);
        let packed = compress_with_block_size(&data, BLOCK_SIZE);
        // A range strictly inside block 2.
        let start = 2 * BLOCK_SIZE as u64 + 100;
        let (got, touched) = read_range(&packed, start, 500).unwrap();
        assert_eq!(got, &data[start as usize..start as usize + 500]);
        assert_eq!(touched, 1);
        // A range spanning the block 0/1 boundary.
        let (got, touched) = read_range(&packed, BLOCK_SIZE as u64 - 10, 20).unwrap();
        assert_eq!(got, &data[BLOCK_SIZE - 10..BLOCK_SIZE + 10]);
        assert_eq!(touched, 2);
        // Whole log.
        let (got, touched) = read_range(&packed, 0, data.len() as u64).unwrap();
        assert_eq!(got, data);
        assert_eq!(touched, 4);
        // Empty range.
        let (got, touched) = read_range(&packed, 5, 0).unwrap();
        assert!(got.is_empty());
        assert_eq!(touched, 0);
        // Out of bounds.
        assert!(read_range(&packed, data.len() as u64, 1).is_err());
    }

    #[test]
    fn torn_container_salvages_a_prefix() {
        let data = sample(4 * BLOCK_SIZE);
        let packed = compress(&data);
        // Cut in the middle of the last block's record.
        let cut = packed.len() - BLOCK_SIZE / 4;
        let s = salvage(&packed[..cut]);
        assert!(s.fault.is_some());
        assert_eq!(s.blocks_total, 4);
        assert!(s.blocks_recovered < 4);
        assert_eq!(s.bytes, data[..s.bytes.len()]);
        assert_eq!(s.bytes.len(), s.blocks_recovered * BLOCK_SIZE);
    }

    #[test]
    fn clean_container_salvages_whole() {
        let data = sample(2 * BLOCK_SIZE + 5);
        let s = salvage(&compress(&data));
        assert!(s.fault.is_none(), "{:?}", s.fault);
        assert_eq!(s.bytes, data);
        assert_eq!(s.blocks_recovered, 3);
    }

    #[test]
    fn flipped_block_byte_stops_the_prefix_there() {
        let data = sample(3 * BLOCK_SIZE);
        let mut packed = compress(&data);
        // Flip a byte in the second block's record payload. Find it via
        // the frame scan record spans: record 1 is block 0.
        let scanned = frame::scan(&packed);
        let block1 = scanned.records[2].as_ptr() as usize - packed.as_ptr() as usize;
        packed[block1 + 2] ^= 0x40;
        let s = salvage(&packed);
        assert_eq!(s.blocks_recovered, 1);
        assert_eq!(s.bytes, data[..BLOCK_SIZE]);
        assert!(s.fault.is_some());
        assert!(decompress(&packed).is_err());
    }

    #[test]
    fn wrong_kind_is_rejected_and_salvages_empty() {
        let mut w = frame::Writer::new(PayloadKind::ChunkLog);
        w.record(b"zz");
        let buf = w.finish();
        assert!(decompress(&buf).is_err());
        let s = salvage(&buf);
        assert!(s.bytes.is_empty());
        assert!(s.fault.is_some());
    }

    #[test]
    fn incompressible_blocks_fall_back_to_stored() {
        let mut rng = SplitMix64::new(3);
        let data: Vec<u8> = (0..2 * BLOCK_SIZE).map(|_| rng.next_u64() as u8).collect();
        let packed = compress(&data);
        // Container must not blow up: index + method bytes + frame overhead only.
        assert!(packed.len() < data.len() + 256, "{} vs {}", packed.len(), data.len());
        assert_eq!(decompress(&packed).unwrap(), data);
    }
}
