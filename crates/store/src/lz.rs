//! A dependency-free LZ77-style byte compressor.
//!
//! The store compresses recording logs in independent blocks (see
//! [`crate::block`]); this module is the per-block codec. The format is
//! a plain sequence token stream in the LZ4 spirit, tuned for the framed
//! varint-heavy logs the recorder emits:
//!
//! ```text
//! sequence := lit_len:varint  literal bytes...  [offset:varint  extra:varint]
//! ```
//!
//! Each sequence copies `lit_len` literal bytes, then (unless the output
//! is complete) a back-reference of `MIN_MATCH + extra` bytes starting
//! `offset` bytes behind the write cursor. Offsets are 1-based and may
//! be smaller than the match length (overlapping copies encode runs).
//!
//! **Canonical streams.** Every varint must be minimal
//! ([`qr_common::varint::read_u64_canonical`]); overlong forms are
//! corruption. With that rule, parsing a stream into its token sequence
//! and re-serializing the tokens reproduces the stream byte-for-byte, so
//! no two distinct streams carry the same token sequence — a payload has
//! exactly one encoding per choice of tokens, and [`compress`] picks its
//! tokens deterministically.
//!
//! The decompressor is given the exact uncompressed length and treats
//! every violation — overlong or truncated varint, offset of zero,
//! offset beyond the written prefix, output overrun — as
//! [`QrError::Corrupt`] reported at the *start* of the faulting field.
//! It never panics on arbitrary bytes.
//!
//! **Match finding.** [`compress`] uses a bounded hash-chain matcher
//! ([`MAX_CHAIN`] candidates per position instead of one) with a lazy
//! one-byte lookahead, and extends matches eight bytes per compare.
//! Deeper search costs compress throughput and buys ratio — the
//! [`PATIENCE`], [`NICE_LEN`] and sparse-insert bounds keep that trade
//! at roughly 10–30% smaller output for well under half the greedy
//! matcher's speed deficit a naive chain walk would pay. The original
//! single-candidate greedy matcher survives as [`compress_greedy`], and
//! the byte-copy decompressor as [`decompress_scalar`]: they are the
//! reference paths the differential battery and `repro e13` check the
//! fast paths against (identical decoded payloads, byte-for-byte).

use qr_common::varint;
use qr_common::{QrError, Result};

/// Shortest back-reference worth encoding (shorter ones cost more than
/// the literals they replace).
pub const MIN_MATCH: usize = 4;

/// Log2 of the match-finder hash-table size.
const HASH_BITS: u32 = 15;

/// Candidates the hash-chain matcher examines per position. The logs
/// are periodic, so chains are long and depth costs linearly in time:
/// 16 (the bottom of the useful 16–64 band) wins within a percent of
/// the depth-64 ratio at a fraction of the walk.
pub const MAX_CHAIN: usize = 16;

/// A match at least this long ends the chain walk early — on the
/// periodic logs nearly every deeper candidate reconfirms the same
/// period, so walking on buys fractions of a percent of ratio for a
/// full re-compare per candidate (deflate's `nice_length` idea).
const NICE_LEN: usize = 48;

/// Matches at least this long skip the lazy one-byte lookahead — a
/// longer match starting one byte later cannot pay for breaking one
/// this long (deflate's level-6 `max_lazy` bound).
const LAZY_CUTOFF: usize = 16;

/// Consecutive quick-reject failures that abandon a chain walk. At a
/// position with no long match the chain holds only hash collisions, so
/// every hop is a dependent cache miss for nothing; giving up after two
/// straight rejects roughly halves compress time on the mixed log
/// corpus for under one percent of ratio.
const PATIENCE: usize = 2;

/// Matches shorter than this get every interior position inserted into
/// the chains; longer matches insert only [`INSERT_TAIL`] positions at
/// each edge. Long matches repeat earlier data, so their interiors are
/// mostly represented by the previous occurrence's entries already.
const DENSE_INSERT_BELOW: usize = 32;

/// Positions inserted at each edge of a long match span. Must comfortably
/// exceed the typical log record period (~8–24 bytes): the next search
/// starts at the span end and finds its best candidates among the most
/// recent period starts, which live in the tail window.
const INSERT_TAIL: usize = 12;

/// Sentinel for "no candidate yet" in the match-finder chains.
const NO_POS: u32 = u32::MAX;

/// Largest input [`compress`] accepts. The match-finder stores byte
/// positions as `u32` (with [`NO_POS`] reserved as the sentinel), so a
/// larger input would silently truncate offsets into wrong — but
/// well-formed — back-references. Block-layer callers compress in
/// [`crate::block::BLOCK_SIZE`] chunks, which a compile-time assertion
/// there ties to this bound.
pub const MAX_INPUT: usize = u32::MAX as usize - 1;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    // Fibonacci hashing over the next four bytes.
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Longest common prefix of `a` and `b`, capped at `max`, compared
/// eight bytes per step.
#[inline]
fn common_prefix(a: &[u8], b: &[u8], max: usize) -> usize {
    let mut n = 0;
    while n + 8 <= max {
        let xa = u64::from_le_bytes(a[n..n + 8].try_into().expect("8 bytes"));
        let xb = u64::from_le_bytes(b[n..n + 8].try_into().expect("8 bytes"));
        let diff = xa ^ xb;
        if diff != 0 {
            return n + (diff.trailing_zeros() / 8) as usize;
        }
        n += 8;
    }
    while n < max && a[n] == b[n] {
        n += 1;
    }
    n
}

/// Hash-chain match finder: `head[hash]` is the most recent position
/// with that hash, `prev[pos]` chains back to the previous one.
struct Chains {
    head: Vec<u32>,
    prev: Vec<u32>,
}

impl Chains {
    fn new(input_len: usize) -> Chains {
        Chains { head: vec![NO_POS; 1 << HASH_BITS], prev: vec![NO_POS; input_len] }
    }

    #[inline]
    fn insert(&mut self, input: &[u8], i: usize) {
        let slot = hash4(&input[i..]);
        self.prev[i] = self.head[slot];
        self.head[slot] = i as u32;
    }

    /// Longest match for position `i` among the first [`MAX_CHAIN`]
    /// chain candidates; ties keep the nearest (first-seen) candidate.
    /// The walk stops early at a [`NICE_LEN`] match, the window end, or
    /// after [`PATIENCE`] consecutive quick-reject failures (a chain of
    /// pure hash collisions is not worth walking).
    fn best_match(&self, input: &[u8], i: usize, max_len: usize) -> Option<(usize, usize)> {
        let mut best_len = MIN_MATCH - 1;
        let mut best_pos = usize::MAX;
        let nice = NICE_LEN.min(max_len);
        let mut misses = 0usize;
        let mut cand = self.head[hash4(&input[i..])];
        for _ in 0..MAX_CHAIN {
            if cand == NO_POS {
                break;
            }
            let c = cand as usize;
            // Quick reject: a longer match must extend past the current
            // best, so the byte at `best_len` has to agree first.
            if input[c + best_len] == input[i + best_len] {
                let len = common_prefix(&input[c..], &input[i..], max_len);
                if len > best_len {
                    best_len = len;
                    best_pos = c;
                    misses = 0;
                    if len >= nice {
                        break;
                    }
                }
            } else {
                misses += 1;
                if misses >= PATIENCE {
                    break;
                }
            }
            cand = self.prev[c];
        }
        (best_len >= MIN_MATCH).then(|| (i - best_pos, best_len))
    }
}

/// Compresses `input` into a fresh buffer.
///
/// Deterministic (same input, same output) and bounded: output never
/// exceeds `input.len() + varint overhead of one all-literal sequence`.
/// The matcher walks bounded hash chains and defers to a strictly
/// longer match one byte ahead (lazy matching), so on the periodic logs
/// the store sees it finds clearly better references than
/// [`compress_greedy`]; the [`PATIENCE`]/[`DENSE_INSERT_BELOW`] speed
/// bounds mean the win is not a per-input guarantee (the ratio tests
/// allow a small adversarial-corpus slack).
///
/// # Panics
///
/// Panics if `input` exceeds [`MAX_INPUT`] — beyond it the `u32`
/// match-finder positions would truncate and emit corrupt streams.
pub fn compress(input: &[u8]) -> Vec<u8> {
    assert!(input.len() <= MAX_INPUT, "input {} exceeds lz::MAX_INPUT {MAX_INPUT}", input.len());
    let len = input.len();
    let mut out = Vec::with_capacity(len / 2 + 16);
    if len < MIN_MATCH {
        emit_sequence(&mut out, input, None);
        return out;
    }
    let mut chains = Chains::new(len);
    // Positions beyond this lack the four bytes a hash needs.
    let hash_end = len - MIN_MATCH + 1;
    let mut anchor = 0usize; // first literal not yet emitted
    let mut i = 0usize;
    while i < hash_end {
        let found = chains.best_match(input, i, len - i);
        chains.insert(input, i);
        let Some((mut offset, mut match_len)) = found else {
            i += 1;
            continue;
        };
        let mut start = i;
        // Lazy lookahead: if a strictly longer match starts at the next
        // byte, emit input[i] as a literal and take that one instead.
        if match_len < LAZY_CUTOFF && i + 1 < hash_end {
            if let Some((next_offset, next_len)) = chains.best_match(input, i + 1, len - i - 1) {
                if next_len > match_len {
                    start = i + 1;
                    offset = next_offset;
                    match_len = next_len;
                }
            }
        }
        emit_sequence(&mut out, &input[anchor..start], Some((offset, match_len)));
        // Seed the chains with positions the match skipped so later data
        // can reference into it. Long matches repeat data whose interior
        // positions the previous occurrence already chained, so only the
        // span edges are inserted for them.
        let end = start + match_len;
        let stop = end.min(hash_end);
        if match_len < DENSE_INSERT_BELOW {
            for j in i + 1..stop {
                chains.insert(input, j);
            }
        } else {
            for j in i + 1..(i + 1 + INSERT_TAIL).min(stop) {
                chains.insert(input, j);
            }
            for j in stop.saturating_sub(INSERT_TAIL).max(i + 1 + INSERT_TAIL)..stop {
                chains.insert(input, j);
            }
        }
        i = end;
        anchor = end;
    }
    if anchor < len || len == 0 {
        emit_sequence(&mut out, &input[anchor..], None);
    }
    out
}

/// The original single-candidate greedy matcher, kept as the reference
/// path for the fast-vs-slow differential battery (`repro e13` and the
/// codec tests): both matchers must produce streams that decompress to
/// the identical payload.
pub fn compress_greedy(input: &[u8]) -> Vec<u8> {
    assert!(input.len() <= MAX_INPUT, "input {} exceeds lz::MAX_INPUT {MAX_INPUT}", input.len());
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![NO_POS; 1 << HASH_BITS];
    let len = input.len();
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= len {
        let slot = hash4(&input[i..]);
        let candidate = table[slot];
        table[slot] = i as u32;
        let c = candidate as usize;
        if candidate == NO_POS || input[c..c + MIN_MATCH] != input[i..i + MIN_MATCH] {
            i += 1;
            continue;
        }
        let mut m = MIN_MATCH;
        while i + m < len && input[c + m] == input[i + m] {
            m += 1;
        }
        emit_sequence(&mut out, &input[anchor..i], Some((i - c, m)));
        let end = i + m;
        i += 1;
        while i < end && i + MIN_MATCH <= len {
            table[hash4(&input[i..])] = i as u32;
            i += 1;
        }
        i = end;
        anchor = end;
    }
    if anchor < len || len == 0 {
        emit_sequence(&mut out, &input[anchor..], None);
    }
    out
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    varint::write_u64(out, literals.len() as u64);
    out.extend_from_slice(literals);
    if let Some((offset, len)) = m {
        varint::write_u64(out, offset as u64);
        varint::write_u64(out, (len - MIN_MATCH) as u64);
    }
}

/// Decompresses a [`compress`] stream into exactly `expected_len` bytes.
///
/// Match copies run eight-plus bytes at a time via
/// `Vec::extend_from_within`; only overlapping copies (`offset <
/// match_len`, i.e. runs) fall back to window-doubling chunked copies.
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] for any malformed input: overlong or
/// truncated varints, truncated literals, zero/out-of-range offsets,
/// output over- or underrun, trailing bytes. The reported offset is the
/// position in the *compressed* stream where the faulting field starts.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    decompress_impl(input, expected_len, true)
}

/// [`decompress`] with the original byte-at-a-time match copies — the
/// reference path the differential battery and `repro e13` check the
/// wide-copy decompressor against. Accepts and rejects exactly the same
/// streams, byte-identical output.
pub fn decompress_scalar(input: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    decompress_impl(input, expected_len, false)
}

fn decompress_impl(input: &[u8], expected_len: usize, wide: bool) -> Result<Vec<u8>> {
    let corrupt = |off: usize, detail: String| QrError::Corrupt {
        what: "compressed block".into(),
        offset: off as u64,
        detail,
    };
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    loop {
        let lit_field = pos;
        let (lit_len, n) = varint::read_u64_canonical(input.get(pos..).unwrap_or(&[]))
            .map_err(|e| corrupt(lit_field, format!("literal length: {e}")))?;
        pos += n;
        let lit_len = usize::try_from(lit_len)
            .ok()
            .filter(|l| out.len() + l <= expected_len)
            .ok_or_else(|| corrupt(lit_field, "literal run overruns the block".into()))?;
        let lits = input
            .get(pos..pos + lit_len)
            .ok_or_else(|| corrupt(pos, "truncated literal run".into()))?;
        out.extend_from_slice(lits);
        pos += lit_len;
        if out.len() == expected_len {
            break;
        }
        let offset_field = pos;
        let (offset, n) = varint::read_u64_canonical(input.get(pos..).unwrap_or(&[]))
            .map_err(|e| corrupt(offset_field, format!("match offset: {e}")))?;
        pos += n;
        let len_field = pos;
        let (extra, n) = varint::read_u64_canonical(input.get(pos..).unwrap_or(&[]))
            .map_err(|e| corrupt(len_field, format!("match length: {e}")))?;
        pos += n;
        let offset = usize::try_from(offset)
            .ok()
            .filter(|&o| o >= 1 && o <= out.len())
            .ok_or_else(|| {
                corrupt(offset_field, format!("match offset {offset} outside written prefix"))
            })?;
        let match_len = usize::try_from(extra)
            .ok()
            .and_then(|e| e.checked_add(MIN_MATCH))
            .filter(|&m| out.len() + m <= expected_len)
            .ok_or_else(|| corrupt(len_field, "match overruns the block".into()))?;
        let start = out.len() - offset;
        if !wide {
            // Reference path: the naive byte loop the wide copies must
            // reproduce exactly (including overlapping runs).
            for k in 0..match_len {
                let byte = out[start + k];
                out.push(byte);
            }
        } else if offset >= match_len {
            // Source and destination cannot overlap: one wide copy.
            out.extend_from_within(start..start + match_len);
        } else {
            // Overlapping run: replicate the window, doubling the copy
            // span each pass (byte-equivalent to the naive loop).
            let mut remaining = match_len;
            while remaining > 0 {
                let span = remaining.min(out.len() - start);
                out.extend_from_within(start..start + span);
                remaining -= span;
            }
        }
        if out.len() == expected_len {
            break;
        }
    }
    if pos != input.len() {
        return Err(corrupt(pos, format!("{} trailing bytes", input.len() - pos)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_common::SplitMix64;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let packed = compress(data);
        let back = decompress(&packed, data.len()).expect("roundtrip");
        assert_eq!(back, data);
        // The scalar decompressor is the reference path for the wide
        // copies: byte-identical output on every accepted stream.
        assert_eq!(decompress_scalar(&packed, data.len()).expect("scalar roundtrip"), data);
        // The greedy reference must agree byte-for-byte after decode.
        let greedy = compress_greedy(data);
        assert_eq!(decompress(&greedy, data.len()).expect("greedy roundtrip"), data);
        // The chain matcher's patience/sparse-insert speed bounds allow
        // it to trail greedy slightly on adversarial corpora; cap the
        // loss at ~3% + slack while the periodic-log test pins the win.
        assert!(
            packed.len() <= greedy.len() + greedy.len() / 32 + 16,
            "hash-chain {} should not lose to greedy {} badly",
            packed.len(),
            greedy.len()
        );
        packed
    }

    #[test]
    fn empty_and_tiny_inputs_roundtrip() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn runs_compress_via_overlapping_matches() {
        let data = vec![0u8; 10_000];
        let packed = roundtrip(&data);
        assert!(packed.len() < 32, "run of zeros should collapse, got {}", packed.len());
    }

    #[test]
    fn repetitive_structure_compresses() {
        let mut data = Vec::new();
        for i in 0u32..2000 {
            data.extend_from_slice(b"packet:");
            data.extend_from_slice(&(i / 7).to_le_bytes());
        }
        let packed = roundtrip(&data);
        assert!(packed.len() * 2 < data.len(), "{} vs {}", packed.len(), data.len());
    }

    #[test]
    fn hash_chain_beats_greedy_on_periodic_logs() {
        // Periodic structure with interleaved noise: the single-candidate
        // matcher loses its best references to hash collisions, the
        // chained matcher recovers them.
        let mut rng = SplitMix64::new(0xBEA7);
        let mut data = Vec::new();
        for i in 0u32..4000 {
            data.extend_from_slice(b"hdr:");
            data.extend_from_slice(&(i % 13).to_le_bytes());
            data.push(rng.next_u64() as u8);
        }
        let chained = compress(&data);
        let greedy = compress_greedy(&data);
        assert!(
            chained.len() <= greedy.len(),
            "hash-chain {} should not exceed greedy {}",
            chained.len(),
            greedy.len()
        );
        assert_eq!(decompress(&chained, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_data_expands_only_slightly() {
        let mut rng = SplitMix64::new(7);
        let data: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        let packed = roundtrip(&data);
        assert!(packed.len() <= data.len() + 16);
    }

    #[test]
    fn random_structured_buffers_roundtrip() {
        let mut rng = SplitMix64::new(0xC0FFEE);
        for case in 0..200 {
            let len = (rng.below(4096) + 1) as usize;
            let mut data = Vec::with_capacity(len);
            // Mix of runs, copies and noise, like a framed log.
            while data.len() < len {
                match rng.below(3) {
                    0 => {
                        let run = rng.below(64) as usize + 1;
                        let byte = rng.next_u64() as u8;
                        data.extend(std::iter::repeat(byte).take(run));
                    }
                    1 if !data.is_empty() => {
                        let n = (rng.below(64) as usize + 4).min(data.len());
                        let at = rng.below((data.len() - n + 1) as u64) as usize;
                        let copy: Vec<u8> = data[at..at + n].to_vec();
                        data.extend_from_slice(&copy);
                    }
                    _ => data.push(rng.next_u64() as u8),
                }
            }
            data.truncate(len);
            roundtrip(&data);
            let _ = case;
        }
    }

    #[test]
    fn mutated_streams_never_panic() {
        let data: Vec<u8> = (0u16..2048).flat_map(|i| (i / 3).to_le_bytes()).collect();
        let packed = compress(&data);
        let mut rng = SplitMix64::new(42);
        for _ in 0..2000 {
            let mut bad = packed.clone();
            match rng.below(3) {
                0 => {
                    let cut = rng.below(bad.len() as u64 + 1) as usize;
                    bad.truncate(cut);
                }
                1 => {
                    let at = rng.below(bad.len() as u64) as usize;
                    bad[at] ^= 1 << rng.below(8);
                }
                _ => {
                    let at = rng.below(bad.len() as u64) as usize;
                    bad[at] = rng.next_u64() as u8;
                }
            }
            match decompress(&bad, data.len()) {
                Ok(_) => {}
                Err(QrError::Corrupt { .. }) => {}
                Err(other) => panic!("non-structured error: {other}"),
            }
        }
    }

    #[test]
    fn zero_offset_is_rejected() {
        // lit_len=0, offset=0: structurally invalid.
        let err = decompress(&[0, 0, 0], 8).unwrap_err();
        assert!(matches!(err, QrError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn corruption_offsets_point_at_the_faulting_field_start() {
        let field_offset = |err: QrError| match err {
            QrError::Corrupt { offset, .. } => offset,
            other => panic!("non-structured error: {other}"),
        };
        // Stream: [lit_len=2 'a' 'b'] [offset extra]. The literal-length
        // varint is byte 0, literals bytes 1..3, offset byte 3, extra
        // byte 4.
        // Literal overrun: lit_len=9 > expected 4; field starts at 0.
        assert_eq!(field_offset(decompress(&[9, 0, 0], 4).unwrap_err()), 0);
        // Out-of-range match offset: field starts at byte 3.
        assert_eq!(field_offset(decompress(&[2, b'a', b'b', 9, 0], 8).unwrap_err()), 3);
        // Match overrun: extra field starts at byte 4 (offset 1 valid,
        // extra 200 overruns an 8-byte block).
        assert_eq!(field_offset(decompress(&[2, b'a', b'b', 1, 200, 1], 8).unwrap_err()), 4);
        // Truncated offset varint: field starts at byte 3.
        assert_eq!(field_offset(decompress(&[2, b'a', b'b', 0x80], 8).unwrap_err()), 3);
        // Truncated literal-length varint at stream start.
        assert_eq!(field_offset(decompress(&[0x80], 8).unwrap_err()), 0);
    }

    #[test]
    fn overlong_varints_are_rejected_everywhere() {
        // Canonical stream for "abab|abab...": take a known-good stream
        // and rewrite one varint as its two-byte overlong form.
        let data = b"abcdabcdabcd";
        let packed = compress(data);
        assert!(decompress(&packed, data.len()).is_ok());
        // lit_len 0 encoded as [0x80, 0x00] at the stream head decodes
        // identically under a sloppy reader; the canonical reader must
        // reject it.
        let mut overlong = vec![0x80, 0x00];
        overlong.extend_from_slice(&packed[1..]);
        if packed[0] == 0 {
            assert!(matches!(
                decompress(&overlong, data.len()),
                Err(QrError::Corrupt { offset: 0, .. })
            ));
        }
        // Empty payload: exactly one stream decodes.
        assert!(decompress(&[0x00], 0).is_ok());
        assert!(decompress(&[0x80, 0x00], 0).is_err());
        assert!(decompress(&[0x80, 0x80, 0x00], 0).is_err());
    }

    /// Parses `stream` with the grammar [`decompress`] enforces and
    /// re-serializes its token sequence with minimal varints. A stream is
    /// canonical iff this reproduces it byte-for-byte — which makes
    /// token-sequence → bytes injective, so two distinct accepted streams
    /// always carry genuinely different tokenizations.
    fn reserialize(stream: &[u8], expected_len: usize) -> Option<Vec<u8>> {
        let mut out_len = 0usize;
        let mut pos = 0usize;
        let mut rebuilt = Vec::new();
        loop {
            let (lit_len, n) = varint::read_u64_canonical(stream.get(pos..)?).ok()?;
            let lits = stream.get(pos + n..pos + n + lit_len as usize)?;
            pos += n + lit_len as usize;
            varint::write_u64(&mut rebuilt, lit_len);
            rebuilt.extend_from_slice(lits);
            out_len += lit_len as usize;
            if out_len == expected_len {
                break;
            }
            let (offset, n) = varint::read_u64_canonical(stream.get(pos..)?).ok()?;
            pos += n;
            let (extra, n) = varint::read_u64_canonical(stream.get(pos..)?).ok()?;
            pos += n;
            varint::write_u64(&mut rebuilt, offset);
            varint::write_u64(&mut rebuilt, extra);
            out_len += extra as usize + MIN_MATCH;
            if out_len >= expected_len {
                break;
            }
        }
        Some(rebuilt)
    }

    /// The canonical-stream rule: parsing a valid stream into tokens and
    /// re-serializing the tokens must reproduce the stream byte-for-byte
    /// — distinct accepted streams therefore carry distinct token
    /// sequences, and a payload has exactly one encoding per tokenizer.
    #[test]
    fn accepted_streams_reserialize_identically() {
        let mut rng = SplitMix64::new(0xCA50);
        for _ in 0..100 {
            let len = (rng.below(2048) + 1) as usize;
            let data: Vec<u8> = (0..len).map(|i| (i as u64 * 7 / 9) as u8).collect();
            for packed in [compress(&data), compress_greedy(&data)] {
                assert!(decompress(&packed, data.len()).is_ok());
                assert_eq!(reserialize(&packed, data.len()).as_deref(), Some(&packed[..]));
            }
        }
    }

    /// Brute-force over a small stream space: before the canonical-varint
    /// rule this enumeration found 79 payloads with redundant encodings
    /// (overlong varints — e.g. the empty payload decoded from `[00]`,
    /// `[80 00]`, `[80 80 00]`, …). After it, every accepted stream is
    /// its own re-serialization, so the only multiplicity left is genuine
    /// literal-vs-match tokenization choice (e.g. six zeros as one
    /// literal + a 5-byte run match, or two literals + a 4-byte match).
    #[test]
    fn small_stream_space_has_no_redundant_encodings() {
        const ALPHA: [u8; 6] = [0, 1, 2, 3, 0x80, 0x81];
        let mut decoded: std::collections::HashMap<Vec<u8>, Vec<Vec<u8>>> =
            std::collections::HashMap::new();
        for len in 0..=5usize {
            let mut idx = vec![0usize; len];
            loop {
                let stream: Vec<u8> = idx.iter().map(|&j| ALPHA[j]).collect();
                for out_len in 0..=6usize {
                    if let Ok(out) = decompress(&stream, out_len) {
                        // Canonical: the stream re-serializes to itself.
                        assert_eq!(
                            reserialize(&stream, out_len).as_deref(),
                            Some(&stream[..]),
                            "accepted stream {stream:02x?} is not canonical"
                        );
                        decoded.entry(out).or_default().push(stream.clone());
                    }
                }
                let mut i = 0;
                while i < len {
                    idx[i] += 1;
                    if idx[i] < ALPHA.len() {
                        break;
                    }
                    idx[i] = 0;
                    i += 1;
                }
                if i == len {
                    break;
                }
            }
        }
        assert!(!decoded.is_empty(), "the probe space must contain valid streams");
        // Redundant (non-canonical) encodings are gone; only genuine
        // tokenization variants remain, and each such pair differs in
        // token structure. Pin the counts so a grammar regression shows
        // up as a diff here.
        let ambiguous: Vec<_> = decoded.values().filter(|streams| streams.len() > 1).collect();
        for streams in &ambiguous {
            // All variants must have pairwise-distinct token sequences:
            // canonical streams are injective in tokens, so distinct
            // bytes == distinct tokens.
            let mut uniq = streams.to_vec();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), streams.len(), "duplicate accepted stream");
        }
        assert!(
            ambiguous.len() <= 8,
            "token-choice ambiguity classes exploded: {} (was 0 redundant + a handful of \
             run-tokenization variants)",
            ambiguous.len()
        );
    }
}
