//! A dependency-free LZ77-style byte compressor.
//!
//! The store compresses recording logs in independent blocks (see
//! [`crate::block`]); this module is the per-block codec. The format is
//! a plain sequence token stream in the LZ4 spirit, tuned for the framed
//! varint-heavy logs the recorder emits:
//!
//! ```text
//! sequence := lit_len:varint  literal bytes...  [offset:varint  extra:varint]
//! ```
//!
//! Each sequence copies `lit_len` literal bytes, then (unless the output
//! is complete) a back-reference of `MIN_MATCH + extra` bytes starting
//! `offset` bytes behind the write cursor. Offsets are 1-based and may
//! be smaller than the match length (overlapping copies encode runs).
//! The decompressor is given the exact uncompressed length and treats
//! every violation — offset of zero, offset beyond the written prefix,
//! output overrun, truncated varint — as [`QrError::Corrupt`]. It never
//! panics on arbitrary bytes.

use qr_common::varint;
use qr_common::{QrError, Result};

/// Shortest back-reference worth encoding (shorter ones cost more than
/// the literals they replace).
pub const MIN_MATCH: usize = 4;

/// Log2 of the match-finder hash-table size.
const HASH_BITS: u32 = 15;

/// Sentinel for "no candidate yet" in the match-finder table.
const NO_POS: u32 = u32::MAX;

/// Largest input [`compress`] accepts. The match-finder stores byte
/// positions as `u32` (with [`NO_POS`] reserved as the sentinel), so a
/// larger input would silently truncate offsets into wrong — but
/// well-formed — back-references. Block-layer callers compress in
/// [`crate::block::BLOCK_SIZE`] chunks, which a compile-time assertion
/// there ties to this bound.
pub const MAX_INPUT: usize = u32::MAX as usize - 1;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    // Fibonacci hashing over the next four bytes.
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` into a fresh buffer.
///
/// Deterministic (same input, same output) and bounded: output never
/// exceeds `input.len() + varint overhead of one all-literal sequence`.
///
/// # Panics
///
/// Panics if `input` exceeds [`MAX_INPUT`] — beyond it the `u32`
/// match-finder positions would truncate and emit corrupt streams.
pub fn compress(input: &[u8]) -> Vec<u8> {
    assert!(input.len() <= MAX_INPUT, "input {} exceeds lz::MAX_INPUT {MAX_INPUT}", input.len());
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![NO_POS; 1 << HASH_BITS];
    let len = input.len();
    let mut anchor = 0usize; // first literal not yet emitted
    let mut i = 0usize;
    while i + MIN_MATCH <= len {
        let slot = hash4(&input[i..]);
        let candidate = table[slot];
        table[slot] = i as u32;
        let c = candidate as usize;
        if candidate == NO_POS || input[c..c + MIN_MATCH] != input[i..i + MIN_MATCH] {
            i += 1;
            continue;
        }
        // Extend the match as far as it goes.
        let mut m = MIN_MATCH;
        while i + m < len && input[c + m] == input[i + m] {
            m += 1;
        }
        emit_sequence(&mut out, &input[anchor..i], Some((i - c, m)));
        // Seed the table with the positions the match skipped so later
        // data can reference into it.
        let end = i + m;
        i += 1;
        while i < end && i + MIN_MATCH <= len {
            table[hash4(&input[i..])] = i as u32;
            i += 1;
        }
        i = end;
        anchor = end;
    }
    if anchor < len || len == 0 {
        emit_sequence(&mut out, &input[anchor..], None);
    }
    out
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    varint::write_u64(out, literals.len() as u64);
    out.extend_from_slice(literals);
    if let Some((offset, len)) = m {
        varint::write_u64(out, offset as u64);
        varint::write_u64(out, (len - MIN_MATCH) as u64);
    }
}

/// Decompresses a [`compress`] stream into exactly `expected_len` bytes.
///
/// # Errors
///
/// Returns [`QrError::Corrupt`] (offset = position in the *compressed*
/// stream) for any malformed input: truncated varints or literals,
/// zero/out-of-range offsets, output over- or underrun, trailing bytes.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let corrupt = |off: usize, detail: String| QrError::Corrupt {
        what: "compressed block".into(),
        offset: off as u64,
        detail,
    };
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    loop {
        let (lit_len, n) = varint::read_u64(input.get(pos..).unwrap_or(&[]))
            .map_err(|e| corrupt(pos, format!("literal length: {e}")))?;
        pos += n;
        let lit_len = usize::try_from(lit_len)
            .ok()
            .filter(|l| out.len() + l <= expected_len)
            .ok_or_else(|| corrupt(pos, "literal run overruns the block".into()))?;
        let lits = input
            .get(pos..pos + lit_len)
            .ok_or_else(|| corrupt(pos, "truncated literal run".into()))?;
        out.extend_from_slice(lits);
        pos += lit_len;
        if out.len() == expected_len {
            break;
        }
        let (offset, n) = varint::read_u64(input.get(pos..).unwrap_or(&[]))
            .map_err(|e| corrupt(pos, format!("match offset: {e}")))?;
        pos += n;
        let (extra, n) = varint::read_u64(input.get(pos..).unwrap_or(&[]))
            .map_err(|e| corrupt(pos, format!("match length: {e}")))?;
        pos += n;
        let offset = usize::try_from(offset)
            .ok()
            .filter(|&o| o >= 1 && o <= out.len())
            .ok_or_else(|| corrupt(pos, format!("match offset {offset} outside written prefix")))?;
        let match_len = usize::try_from(extra)
            .ok()
            .and_then(|e| e.checked_add(MIN_MATCH))
            .filter(|&m| out.len() + m <= expected_len)
            .ok_or_else(|| corrupt(pos, "match overruns the block".into()))?;
        // Byte-by-byte so overlapping copies (runs) replicate correctly.
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
        if out.len() == expected_len {
            break;
        }
    }
    if pos != input.len() {
        return Err(corrupt(pos, format!("{} trailing bytes", input.len() - pos)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_common::SplitMix64;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let packed = compress(data);
        let back = decompress(&packed, data.len()).expect("roundtrip");
        assert_eq!(back, data);
        packed
    }

    #[test]
    fn empty_and_tiny_inputs_roundtrip() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn runs_compress_via_overlapping_matches() {
        let data = vec![0u8; 10_000];
        let packed = roundtrip(&data);
        assert!(packed.len() < 32, "run of zeros should collapse, got {}", packed.len());
    }

    #[test]
    fn repetitive_structure_compresses() {
        let mut data = Vec::new();
        for i in 0u32..2000 {
            data.extend_from_slice(b"packet:");
            data.extend_from_slice(&(i / 7).to_le_bytes());
        }
        let packed = roundtrip(&data);
        assert!(packed.len() * 2 < data.len(), "{} vs {}", packed.len(), data.len());
    }

    #[test]
    fn incompressible_data_expands_only_slightly() {
        let mut rng = SplitMix64::new(7);
        let data: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        let packed = roundtrip(&data);
        assert!(packed.len() <= data.len() + 16);
    }

    #[test]
    fn random_structured_buffers_roundtrip() {
        let mut rng = SplitMix64::new(0xC0FFEE);
        for case in 0..200 {
            let len = (rng.below(4096) + 1) as usize;
            let mut data = Vec::with_capacity(len);
            // Mix of runs, copies and noise, like a framed log.
            while data.len() < len {
                match rng.below(3) {
                    0 => {
                        let run = rng.below(64) as usize + 1;
                        let byte = rng.next_u64() as u8;
                        data.extend(std::iter::repeat(byte).take(run));
                    }
                    1 if !data.is_empty() => {
                        let n = (rng.below(64) as usize + 4).min(data.len());
                        let at = rng.below((data.len() - n + 1) as u64) as usize;
                        let copy: Vec<u8> = data[at..at + n].to_vec();
                        data.extend_from_slice(&copy);
                    }
                    _ => data.push(rng.next_u64() as u8),
                }
            }
            data.truncate(len);
            roundtrip(&data);
            let _ = case;
        }
    }

    #[test]
    fn mutated_streams_never_panic() {
        let data: Vec<u8> = (0u16..2048).flat_map(|i| (i / 3).to_le_bytes()).collect();
        let packed = compress(&data);
        let mut rng = SplitMix64::new(42);
        for _ in 0..2000 {
            let mut bad = packed.clone();
            match rng.below(3) {
                0 => {
                    let cut = rng.below(bad.len() as u64 + 1) as usize;
                    bad.truncate(cut);
                }
                1 => {
                    let at = rng.below(bad.len() as u64) as usize;
                    bad[at] ^= 1 << rng.below(8);
                }
                _ => {
                    let at = rng.below(bad.len() as u64) as usize;
                    bad[at] = rng.next_u64() as u8;
                }
            }
            match decompress(&bad, data.len()) {
                Ok(_) => {}
                Err(QrError::Corrupt { .. }) => {}
                Err(other) => panic!("non-structured error: {other}"),
            }
        }
    }

    #[test]
    fn zero_offset_is_rejected() {
        // lit_len=0, offset=0: structurally invalid.
        let err = decompress(&[0, 0, 0], 8).unwrap_err();
        assert!(matches!(err, QrError::Corrupt { .. }), "{err}");
    }
}
