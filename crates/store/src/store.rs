//! The on-disk recording repository.
//!
//! A store root holds one directory per entry:
//!
//! ```text
//! root/
//!   rec-00000001/
//!     manifest.qrs      framed StoreManifest (written last)
//!     meta.qrm.z        block-compressed meta image
//!     chunks.qrl.z      block-compressed chunk log
//!     inputs.qrl.z      block-compressed input log
//!     footprints.qrl.z  (when the recording has the sidecar)
//! ```
//!
//! Entries are committed atomically: files are written into a
//! `.tmp-<id>` staging directory, the manifest last, and the directory
//! is renamed into place. A crash or shutdown mid-`put` leaves only a
//! staging directory, which [`RecordingStore::open`] sweeps — a visible
//! `rec-*` entry therefore always carries a complete manifest. Damage
//! *after* commit (torn blocks, flipped bytes) is caught by the frame
//! and block CRCs and drops into the salvage path
//! ([`RecordingStore::fetch_salvaged`]) instead of panicking.

use crate::block;
use crate::manifest::{Manifest, ManifestFile};
use qr_capo::{Recording, RecordingParts, RecoveryInfo, VerifyReport};
use qr_common::{crc32, QrError, Result};
use quickrec_core::Encoding;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Manifest file name inside an entry directory.
pub const MANIFEST_FILE: &str = "manifest.qrs";

/// Suffix appended to a logical file name for its compressed container.
pub const COMPRESSED_SUFFIX: &str = ".z";

fn io_err(what: &str, e: std::io::Error) -> QrError {
    QrError::Execution { detail: format!("{what}: {e}") }
}

/// A concurrent-safe compressed recording repository rooted at one
/// directory. All methods take `&self`; the store hands out sequential
/// entry ids and is shared across server workers behind an `Arc`.
#[derive(Debug)]
pub struct RecordingStore {
    root: PathBuf,
    next_id: AtomicU64,
}

impl RecordingStore {
    /// Opens (creating if needed) a store rooted at `root`, sweeping any
    /// staging directories a crashed writer left behind.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] wrapping I/O failures.
    pub fn open(root: &Path) -> Result<RecordingStore> {
        std::fs::create_dir_all(root).map_err(|e| io_err("creating store root", e))?;
        let mut max_id = 0u64;
        let entries =
            std::fs::read_dir(root).map_err(|e| io_err("reading store root", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("reading store root", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(".tmp-") {
                // A writer died mid-put; the entry was never visible.
                std::fs::remove_dir_all(entry.path())
                    .map_err(|e| io_err("sweeping staging directory", e))?;
            } else if let Some(id) = name.strip_prefix("rec-").and_then(|s| s.parse().ok()) {
                max_id = max_id.max(id);
            }
        }
        Ok(RecordingStore { root: root.to_path_buf(), next_id: AtomicU64::new(max_id + 1) })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory of entry `id` (whether or not it exists).
    pub fn entry_dir(&self, id: u64) -> PathBuf {
        self.root.join(format!("rec-{id:08}"))
    }

    /// Stores a recording under `name`, compressing every file, and
    /// returns the assigned entry id.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] wrapping I/O failures; on error
    /// the staging directory is removed and no entry becomes visible.
    pub fn put(&self, name: &str, recording: &Recording, encoding: Encoding) -> Result<u64> {
        self.put_parts(name, &recording.to_parts(encoding), encoding, recording.fingerprint)
    }

    /// [`RecordingStore::put`] over pre-serialized file images.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] wrapping I/O failures.
    pub fn put_parts(
        &self,
        name: &str,
        parts: &RecordingParts,
        encoding: Encoding,
        fingerprint: u64,
    ) -> Result<u64> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let staging = self.root.join(format!(".tmp-{id}"));
        let result = self.write_entry(&staging, id, name, parts, encoding, fingerprint);
        if result.is_err() {
            let _ = std::fs::remove_dir_all(&staging);
            return result.map(|_| id);
        }
        std::fs::rename(&staging, self.entry_dir(id)).map_err(|e| {
            let _ = std::fs::remove_dir_all(&staging);
            io_err("committing store entry", e)
        })?;
        Ok(id)
    }

    fn write_entry(
        &self,
        staging: &Path,
        id: u64,
        name: &str,
        parts: &RecordingParts,
        encoding: Encoding,
        fingerprint: u64,
    ) -> Result<()> {
        std::fs::create_dir_all(staging).map_err(|e| io_err("creating staging directory", e))?;
        let mut files = Vec::new();
        for (file_name, bytes) in parts.files() {
            let compressed = block::compress(bytes);
            let blocks = block::read_index(&compressed).map(|i| i.blocks.len() as u64)?;
            std::fs::write(
                staging.join(format!("{file_name}{COMPRESSED_SUFFIX}")),
                &compressed,
            )
            .map_err(|e| io_err("writing compressed log", e))?;
            files.push(ManifestFile {
                name: file_name.to_string(),
                uncompressed: bytes.len() as u64,
                compressed: compressed.len() as u64,
                blocks,
                crc: crc32::checksum(bytes),
            });
        }
        let manifest =
            Manifest { id, name: name.to_string(), encoding, fingerprint, files };
        // The manifest commits the entry: written last, so a readable
        // manifest implies every file above it landed.
        std::fs::write(staging.join(MANIFEST_FILE), manifest.to_bytes())
            .map_err(|e| io_err("writing manifest", e))?;
        Ok(())
    }

    /// Reads entry `id`'s manifest.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] for a missing entry,
    /// [`QrError::Corrupt`] for a damaged manifest.
    pub fn manifest(&self, id: u64) -> Result<Manifest> {
        let path = self.entry_dir(id).join(MANIFEST_FILE);
        let buf = std::fs::read(&path)
            .map_err(|e| io_err(&format!("reading store entry {id} manifest"), e))?;
        let manifest = Manifest::from_bytes(&buf)?;
        if manifest.id != id {
            return Err(QrError::Corrupt {
                what: "store manifest".into(),
                offset: 0,
                detail: format!("entry {id} carries manifest id {}", manifest.id),
            });
        }
        Ok(manifest)
    }

    /// All entry manifests, ordered by id.
    ///
    /// # Errors
    ///
    /// Returns the first I/O or manifest-decode failure (a visible
    /// entry with an unreadable manifest violates the commit protocol
    /// and is worth surfacing, not hiding).
    pub fn list(&self) -> Result<Vec<Manifest>> {
        let mut ids = Vec::new();
        let entries =
            std::fs::read_dir(&self.root).map_err(|e| io_err("reading store root", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("reading store root", e))?;
            if let Some(id) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_prefix("rec-"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        ids.into_iter().map(|id| self.manifest(id)).collect()
    }

    /// Strictly fetches entry `id`'s decompressed file images (and its
    /// manifest), verifying every CRC layer.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] naming the first damaged file.
    pub fn fetch_parts(&self, id: u64) -> Result<(Manifest, RecordingParts)> {
        let manifest = self.manifest(id)?;
        let dir = self.entry_dir(id);
        let mut files: Vec<(String, Vec<u8>)> = Vec::new();
        for f in &manifest.files {
            let compressed = std::fs::read(dir.join(format!("{}{COMPRESSED_SUFFIX}", f.name)))
                .map_err(|e| io_err(&format!("reading {} of entry {id}", f.name), e))?;
            let bytes = block::decompress(&compressed).map_err(|e| QrError::Corrupt {
                what: format!("store entry {id} {}", f.name),
                offset: match &e {
                    QrError::Corrupt { offset, .. } => *offset,
                    _ => 0,
                },
                detail: e.to_string(),
            })?;
            if bytes.len() as u64 != f.uncompressed || crc32::checksum(&bytes) != f.crc {
                return Err(QrError::Corrupt {
                    what: format!("store entry {id} {}", f.name),
                    offset: 0,
                    detail: "decompressed image does not match the manifest".into(),
                });
            }
            files.push((f.name.clone(), bytes));
        }
        Ok((manifest, RecordingParts::from_files(&files)?))
    }

    /// Strictly fetches and decodes entry `id` as a [`Recording`].
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] for any damage along the way.
    pub fn fetch(&self, id: u64) -> Result<Recording> {
        let (_, parts) = self.fetch_parts(id)?;
        Recording::from_parts(&parts)
    }

    /// Tolerantly fetches entry `id`: torn or flipped blocks reduce
    /// each log to its longest valid prefix (via [`block::salvage`]),
    /// which then flows through the recording layer's own salvage
    /// decoding — exactly the path a torn on-disk recording takes.
    ///
    /// # Errors
    ///
    /// Returns an error only when the manifest or the metadata image is
    /// unrecoverable (a recording without platform metadata cannot
    /// anchor a replay).
    pub fn fetch_salvaged(&self, id: u64) -> Result<(Recording, RecoveryInfo)> {
        let manifest = self.manifest(id)?;
        let dir = self.entry_dir(id);
        let mut files: Vec<(String, Vec<u8>)> = Vec::new();
        for f in &manifest.files {
            let compressed = std::fs::read(dir.join(format!("{}{COMPRESSED_SUFFIX}", f.name)))
                .map_err(|e| io_err(&format!("reading {} of entry {id}", f.name), e))?;
            files.push((f.name.clone(), block::salvage(&compressed).bytes));
        }
        Recording::salvage_from_parts(&RecordingParts::from_files(&files)?)
    }

    /// Decompresses entry `id` back into a plain recording directory
    /// (the layout `Recording::load` and `quickrec replay` consume).
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] for damage, [`QrError::Execution`]
    /// for I/O failures.
    pub fn fetch_to_dir(&self, id: u64, dir: &Path) -> Result<Manifest> {
        let (manifest, parts) = self.fetch_parts(id)?;
        parts.save(dir)?;
        Ok(manifest)
    }

    /// Integrity-checks entry `id` end to end — manifest, every block
    /// CRC, and a strict decode of every recovered image — without
    /// keeping the recording.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Execution`] when the entry is missing
    /// entirely; damage inside it is reported in the returned
    /// [`VerifyReport`], not as an error.
    pub fn verify(&self, id: u64) -> Result<VerifyReport> {
        let manifest = self.manifest(id)?;
        let (_, parts) = match self.fetch_parts(id) {
            Ok(ok) => ok,
            Err(e) => {
                // Damage before decompression: report it against the
                // entry as a whole.
                return Ok(VerifyReport {
                    files: vec![qr_capo::FileCheck {
                        name: format!("rec-{id:08}"),
                        bytes: Some(manifest.compressed_bytes()),
                        version: None,
                        records: manifest.files.len(),
                        legacy: false,
                        error: Some(e),
                    }],
                });
            }
        };
        // Images recovered; run the same per-file strict decode the
        // directory verifier uses, against a scratch-free in-memory path.
        let scratch = self.entry_dir(id).join(".verify");
        parts.save(&scratch)?;
        let report = Recording::verify_dir(&scratch);
        let _ = std::fs::remove_dir_all(&scratch);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("qr-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fake_parts() -> RecordingParts {
        // Not a decodable recording — enough for store-layer round trips.
        RecordingParts {
            meta: b"meta-bytes".to_vec(),
            chunks: vec![7u8; 100_000],
            inputs: (0u32..5000).flat_map(|i| i.to_le_bytes()).collect(),
            footprints: None,
            format: None,
            checkpoints: None,
            order: None,
        }
    }

    #[test]
    fn put_fetch_roundtrip_and_ids_are_sequential() {
        let root = scratch("roundtrip");
        let store = RecordingStore::open(&root).unwrap();
        let parts = fake_parts();
        let a = store.put_parts("first", &parts, Encoding::Delta, 0xABC).unwrap();
        let b = store.put_parts("second", &parts, Encoding::Raw, 0xDEF).unwrap();
        assert_eq!((a, b), (1, 2));
        let (manifest, got) = store.fetch_parts(a).unwrap();
        assert_eq!(got, parts);
        assert_eq!(manifest.name, "first");
        assert_eq!(manifest.fingerprint, 0xABC);
        assert!(manifest.compressed_bytes() < manifest.uncompressed_bytes());
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[1].encoding, Encoding::Raw);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_resumes_id_sequence_and_sweeps_staging() {
        let root = scratch("reopen");
        {
            let store = RecordingStore::open(&root).unwrap();
            store.put_parts("one", &fake_parts(), Encoding::Delta, 1).unwrap();
        }
        // A fake crashed writer.
        std::fs::create_dir_all(root.join(".tmp-99")).unwrap();
        std::fs::write(root.join(".tmp-99/partial"), b"x").unwrap();
        let store = RecordingStore::open(&root).unwrap();
        assert!(!root.join(".tmp-99").exists(), "staging dirs must be swept");
        let id = store.put_parts("two", &fake_parts(), Encoding::Delta, 2).unwrap();
        assert_eq!(id, 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_block_is_detected_strictly() {
        let root = scratch("torn");
        let store = RecordingStore::open(&root).unwrap();
        let id = store.put_parts("victim", &fake_parts(), Encoding::Delta, 3).unwrap();
        let chunks = store.entry_dir(id).join(format!("chunks.qrl{COMPRESSED_SUFFIX}"));
        let mut bytes = std::fs::read(&chunks).unwrap();
        let cut = bytes.len() - 5;
        bytes.truncate(cut);
        std::fs::write(&chunks, &bytes).unwrap();
        let err = store.fetch_parts(id).unwrap_err();
        assert!(matches!(err, QrError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_entry_is_a_clean_error() {
        let root = scratch("missing");
        let store = RecordingStore::open(&root).unwrap();
        assert!(store.fetch_parts(7).is_err());
        assert!(store.manifest(7).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
