//! Store metrics (`qr-obs` hooks): block codec latency, compression
//! byte traffic (the ratio falls out of the two counters), and salvage
//! outcomes. Observational only — see the determinism rule in `qr-obs`.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use qr_obs::{Counter, Histogram, LATENCY_US};

fn encode_latency() -> &'static Arc<Histogram> {
    static HANDLE: OnceLock<Arc<Histogram>> = OnceLock::new();
    HANDLE.get_or_init(|| {
        qr_obs::global().histogram(
            "qr_store_encode_latency_us",
            "Block-container compression latency per call",
            &[],
            LATENCY_US,
        )
    })
}

fn decode_latency() -> &'static Arc<Histogram> {
    static HANDLE: OnceLock<Arc<Histogram>> = OnceLock::new();
    HANDLE.get_or_init(|| {
        qr_obs::global().histogram(
            "qr_store_decode_latency_us",
            "Block-container decompression latency per call",
            &[],
            LATENCY_US,
        )
    })
}

fn bytes_counter(direction: &'static str) -> Arc<Counter> {
    qr_obs::global().counter(
        "qr_store_bytes_total",
        "Bytes through the block codec (compression ratio = compressed / raw)",
        &[("direction", direction)],
    )
}

fn raw_bytes() -> &'static Arc<Counter> {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| bytes_counter("raw"))
}

fn compressed_bytes() -> &'static Arc<Counter> {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| bytes_counter("compressed"))
}

fn salvage_counter(outcome: &'static str) -> Arc<Counter> {
    qr_obs::global().counter(
        "qr_store_salvage_total",
        "Tolerant block-container reads, by outcome",
        &[("outcome", outcome)],
    )
}

fn salvage_clean() -> &'static Arc<Counter> {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| salvage_counter("clean"))
}

fn salvage_faulted() -> &'static Arc<Counter> {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| salvage_counter("faulted"))
}

fn salvage_blocks_lost() -> &'static Arc<Counter> {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    HANDLE.get_or_init(|| {
        qr_obs::global().counter(
            "qr_store_salvage_blocks_lost_total",
            "Blocks the index promised that salvage could not recover",
            &[],
        )
    })
}

/// Stopwatch for one codec call; `None` when metrics are off so the
/// disabled path never reads the clock.
pub(crate) fn clock() -> Option<Instant> {
    qr_obs::enabled().then(Instant::now)
}

/// Accounts one whole-container compression.
pub(crate) fn encoded(start: Option<Instant>, raw_len: usize, compressed_len: usize) {
    if let Some(start) = start {
        encode_latency().observe_since(start);
        raw_bytes().add(raw_len as u64);
        compressed_bytes().add(compressed_len as u64);
    }
}

/// Accounts one whole-container decompression.
pub(crate) fn decoded(start: Option<Instant>) {
    if let Some(start) = start {
        decode_latency().observe_since(start);
    }
}

/// Accounts one salvage pass.
pub(crate) fn salvaged(faulted: bool, blocks_recovered: usize, blocks_total: usize) {
    if !qr_obs::enabled() {
        return;
    }
    if faulted { salvage_faulted() } else { salvage_clean() }.inc();
    salvage_blocks_lost().add(blocks_total.saturating_sub(blocks_recovered) as u64);
}
