//! Store round-trip contract: record → store (compressed) → fetch →
//! replay must be byte- and fingerprint-identical to recording straight
//! into a directory, across all three chunk-log encodings — and a torn
//! store entry drops to the salvage path instead of panicking.

use qr_capo::{record, Recording, RecordingConfig};
use qr_store::{RecordingStore, COMPRESSED_SUFFIX, MANIFEST_FILE};
use quickrec_core::Encoding;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qr-store-rt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn recorded_workload(threads: usize) -> (qr_isa::Program, Recording) {
    let spec = qr_workloads::find("fft").expect("fft workload");
    let scale = qr_workloads::Scale::Test;
    let program = (spec.build)(threads, scale).expect("build workload");
    let recording =
        record(program.clone(), RecordingConfig::with_cores(threads)).expect("record workload");
    assert_eq!(
        recording.exit_code,
        (spec.expected)(threads, scale),
        "workload must self-validate before the store is involved"
    );
    (program, recording)
}

#[test]
fn store_round_trip_matches_direct_directory_for_every_encoding() {
    let dir = scratch("encodings");
    let (program, recording) = recorded_workload(2);

    for encoding in Encoding::ALL {
        let direct = dir.join(format!("direct-{}", encoding.name()));
        recording.save(&direct, encoding).expect("direct save");

        let store = RecordingStore::open(&dir.join(format!("store-{}", encoding.name())))
            .expect("open store");
        let id = store.put("fft", &recording, encoding).expect("store put");

        // Compression must actually compress: the manifest's stored
        // byte count is below the uncompressed total.
        let manifest = store.manifest(id).expect("manifest");
        assert!(
            manifest.compressed_bytes() < manifest.uncompressed_bytes(),
            "{}: {} stored vs {} raw",
            encoding.name(),
            manifest.compressed_bytes(),
            manifest.uncompressed_bytes()
        );

        // Fetched recording replays to the same fingerprint as the
        // original and as a load from the direct directory.
        let fetched = store.fetch(id).expect("fetch");
        let outcome =
            qr_replay::replay_and_verify(&program, &fetched).expect("replay fetched recording");
        assert_eq!(outcome.fingerprint, recording.fingerprint, "{}", encoding.name());
        let direct_loaded = Recording::load(&direct).expect("load direct");
        assert_eq!(direct_loaded.fingerprint, fetched.fingerprint, "{}", encoding.name());

        // And the materialized files are byte-identical to the direct
        // save: compression is invisible to everything downstream.
        let unpacked = dir.join(format!("unpacked-{}", encoding.name()));
        store.fetch_to_dir(id, &unpacked).expect("fetch_to_dir");
        for entry in std::fs::read_dir(&direct).expect("direct dir") {
            let entry = entry.expect("dir entry");
            let name = entry.file_name();
            let a = std::fs::read(entry.path()).expect("direct bytes");
            let b = std::fs::read(unpacked.join(&name)).expect("unpacked bytes");
            assert_eq!(a, b, "{}: {} differs after store round trip", encoding.name(), name.to_string_lossy());
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_store_entry_fails_strict_fetch_but_salvages_a_replayable_prefix() {
    let dir = scratch("torn");
    let (program, recording) = recorded_workload(2);

    let store = RecordingStore::open(&dir.join("store")).expect("open store");
    let id = store.put("fft", &recording, Encoding::Delta).expect("store put");

    // Tear the tail off the compressed chunk log, as a crash mid-write
    // would have (the manifest survives: it was committed atomically).
    let chunks_z = store.entry_dir(id).join(format!("chunks.qrl{COMPRESSED_SUFFIX}"));
    let bytes = std::fs::read(&chunks_z).expect("read compressed chunk log");
    std::fs::write(&chunks_z, &bytes[..bytes.len() - 9]).expect("tear compressed chunk log");

    // Strict fetch refuses with a structured error, never a panic.
    let err = store.fetch(id).expect_err("strict fetch must refuse a torn entry");
    assert!(
        matches!(err, qr_common::QrError::Corrupt { .. }),
        "structured Corrupt error, got: {err}"
    );

    // Salvage recovers a decodable prefix that replays consistently —
    // the same contract `quickrec replay --salvage` applies to torn
    // on-disk recordings.
    let (salvaged, info) = store.fetch_salvaged(id).expect("salvage fetch");
    assert!(!info.is_clean(), "salvage must report the loss");
    let report = qr_replay::salvage_replay(&program, &salvaged, &info);
    assert!(
        report.fingerprint.is_none() || report.fingerprint_consistent,
        "salvaged prefix must be internally consistent:\n{}",
        report.summary()
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_puts_leave_staging_dirs_that_reopening_sweeps_away() {
    let dir = scratch("staging");
    let (_, recording) = recorded_workload(2);

    let root = dir.join("store");
    let store = RecordingStore::open(&root).expect("open store");
    let keep = store.put("keep", &recording, Encoding::Delta).expect("put keep");

    // Simulate a put interrupted mid-stage: a `.tmp-*` directory with
    // partial files and no committed `rec-*` entry. It is invisible to
    // list() and swept on the next open.
    let staging = root.join(".tmp-00000099");
    std::fs::create_dir_all(&staging).expect("staging dir");
    std::fs::write(staging.join("chunks.qrl.z"), b"partial").expect("partial file");
    let listed = store.list().expect("list with staging present");
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].id, keep);

    let reopened = RecordingStore::open(&root).expect("reopen store");
    assert!(!staging.exists(), "reopen must sweep interrupted staging dirs");
    reopened.fetch(keep).expect("committed entry survives the sweep");

    // A committed entry whose manifest is later destroyed violates the
    // commit protocol; list() surfaces that loudly instead of hiding it.
    let drop_id = reopened.put("drop", &recording, Encoding::Delta).expect("put drop");
    std::fs::remove_file(reopened.entry_dir(drop_id).join(MANIFEST_FILE)).expect("drop manifest");
    assert!(reopened.list().is_err(), "manifest loss must surface in list()");
    assert!(reopened.fetch(drop_id).is_err(), "and the damaged entry must not fetch");
    reopened.fetch(keep).expect("undamaged entries still fetch");

    std::fs::remove_dir_all(&dir).ok();
}
