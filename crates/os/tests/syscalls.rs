//! Direct kernel-surface tests: each syscall's edge cases, exercised by
//! driving `Kernel::handle_syscall` through small guest stubs.

use qr_common::{CoreId, ThreadId, VirtAddr};
use qr_cpu::{CpuConfig, Machine, StepOutcome};
use qr_isa::{abi, Asm, Reg};
use qr_os::kernel::EFAULT;
use qr_os::{Kernel, OsConfig, SchedEvent};

const C0: CoreId = CoreId(0);

/// Builds a machine whose main thread performs one syscall with the
/// given number and arguments, then halts; steps it to the trap.
fn at_syscall(number: u32, a1: u32, a2: u32) -> (Machine, Kernel) {
    let mut a = Asm::new();
    a.movi_u(Reg::R0, number);
    a.movi_u(Reg::R1, a1);
    a.movi_u(Reg::R2, a2);
    a.syscall();
    a.halt();
    // A few worker-shaped labels for spawn tests.
    a.label("worker");
    a.movi_u(Reg::R0, abi::SYS_EXIT);
    a.movi(Reg::R1, 9);
    a.syscall();
    let mut machine =
        Machine::new(a.finish().unwrap(), CpuConfig { num_cores: 2, ..CpuConfig::default() })
            .unwrap();
    let mut kernel = Kernel::new(OsConfig::default(), &mut machine).unwrap();
    kernel.place_runnable(&mut machine);
    loop {
        match machine.step(C0).outcome {
            StepOutcome::Syscall => break,
            StepOutcome::Retired => {}
            other => panic!("unexpected outcome before syscall: {other:?}"),
        }
    }
    (machine, kernel)
}

fn result_of(machine: &Machine) -> u32 {
    machine.read_reg(C0, Reg::R0)
}

#[test]
fn write_with_bad_pointer_is_efault() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_WRITE, 0x9000_0000, 8);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), EFAULT);
    assert!(kernel.console().is_empty());
}

#[test]
fn spawn_with_misaligned_entry_is_efault() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_SPAWN, 0x1003, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), EFAULT);
    assert_eq!(kernel.live_threads(), 1, "no thread created");
}

#[test]
fn spawn_outside_code_is_efault() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_SPAWN, 0x9_0000, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), EFAULT);
}

#[test]
fn join_on_self_and_missing_are_efault() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_JOIN, 0, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), EFAULT, "join(self)");

    let (mut machine, mut kernel) = at_syscall(abi::SYS_JOIN, 99, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), EFAULT, "join(nonexistent)");
}

#[test]
fn futex_wait_with_changed_value_returns_one() {
    // The futex word lives on the main stack; value there is 0, and we
    // wait expecting 7 -> immediate return 1.
    let stack_word = qr_isa::program::STACK_TOP - 64;
    let (mut machine, mut kernel) = at_syscall(abi::SYS_FUTEX_WAIT, stack_word, 7);
    let out = kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), 1);
    assert!(out.sched.is_empty(), "no deschedule on value mismatch");
}

#[test]
fn futex_wait_on_bad_pointer_is_efault() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_FUTEX_WAIT, 0x9000_0000, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), EFAULT);
}

#[test]
fn futex_wake_with_no_waiters_returns_zero() {
    let stack_word = qr_isa::program::STACK_TOP - 64;
    let (mut machine, mut kernel) = at_syscall(abi::SYS_FUTEX_WAKE, stack_word, 5);
    let out = kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), 0);
    assert_eq!(out.records.len(), 1, "only the waker's record");
}

#[test]
fn sbrk_zero_returns_current_break_without_mapping() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_SBRK, 0, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    let brk = result_of(&machine);
    assert!(brk >= qr_isa::program::DATA_BASE);
    assert!(!machine.mem().memory().is_mapped(VirtAddr(brk), 4), "nothing mapped");
}

#[test]
fn sbrk_twice_is_contiguous() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_SBRK, 128, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    let first = result_of(&machine);
    // Re-issue manually: set registers and call again.
    machine.write_reg(C0, Reg::R0, abi::SYS_SBRK);
    machine.write_reg(C0, Reg::R1, 64);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    let second = result_of(&machine);
    assert_eq!(second, first + 128);
    assert!(machine.mem().memory().is_mapped(VirtAddr(first), 128 + 64));
}

#[test]
fn gettid_and_ncores_report_identity() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_GETTID, 0, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), 0, "main thread is tid 0");

    let (mut machine, mut kernel) = at_syscall(abi::SYS_NCORES, 0, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), 2);
}

#[test]
fn unknown_syscall_number_is_efault() {
    let (mut machine, mut kernel) = at_syscall(999, 0, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), EFAULT);
}

#[test]
fn sigreturn_without_frame_is_efault() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_SIGRETURN, 0, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), EFAULT);
}

#[test]
fn kill_missing_thread_is_efault() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_KILL, 42, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), EFAULT);
}

#[test]
fn sigaction_returns_previous_handler() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_SIGACTION, 0x1008, 0);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), 0, "no previous handler");
    machine.write_reg(C0, Reg::R0, abi::SYS_SIGACTION);
    machine.write_reg(C0, Reg::R1, 0x1010);
    kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), 0x1008, "previous handler returned");
}

#[test]
fn read_caps_length_and_logs_payload() {
    let stack_buf = qr_isa::program::STACK_TOP - 8192;
    let (mut machine, mut kernel) = at_syscall(abi::SYS_READ, stack_buf, 1_000_000);
    let out = kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), 4096, "reads are capped at 4096 bytes");
    let record = &out.records[0];
    assert_eq!(record.writes.len(), 1);
    assert_eq!(record.writes[0].1.len(), 4096);
}

#[test]
fn spawn_schedules_onto_the_idle_core() {
    let (mut machine, mut kernel) = at_syscall(abi::SYS_SPAWN, 0, 0);
    // Point R1 at the worker label (5th instruction: offset 5 * 8).
    machine.write_reg(C0, Reg::R1, qr_isa::program::CODE_BASE + 5 * 8);
    let out = kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(result_of(&machine), 1, "new tid");
    assert!(out.sched.contains(&SchedEvent::ScheduledOn { core: CoreId(1), tid: ThreadId(1) }));
    assert_eq!(kernel.live_threads(), 2);
}

#[test]
fn exit_record_carries_the_code_for_every_death_path() {
    // Explicit exit.
    let (mut machine, mut kernel) = at_syscall(abi::SYS_EXIT, 77, 0);
    let out = kernel.handle_syscall(&mut machine, C0).unwrap();
    assert_eq!(out.records[0].number, abi::SYS_EXIT);
    assert_eq!(out.records[0].result, 77);
    assert!(kernel.all_done());

    // Halt path.
    let (mut machine2, mut kernel2) = at_syscall(abi::SYS_YIELD, 0, 0);
    kernel2.handle_syscall(&mut machine2, C0).unwrap();
    machine2.step(C0); // the halt
    let out = kernel2.handle_halt(&mut machine2, C0);
    assert_eq!(out.records[0].number, abi::SYS_EXIT);
    assert_eq!(out.records[0].result, 0);
}
