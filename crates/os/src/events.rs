//! Data the kernel reports to its orchestrator.
//!
//! The record/replay stack needs to see every scheduling action (to
//! virtualize the recording hardware) and every syscall's user-visible
//! effect (to build the input log). The kernel returns these as plain
//! data instead of calling back, which keeps `qr-os` independent of the
//! recording machinery.

use qr_common::{CoreId, ThreadId, VirtAddr};
use qr_mem::MemEvent;

/// A scheduling action the kernel performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// `tid` started running on `core`.
    ScheduledOn {
        /// The core.
        core: CoreId,
        /// The thread.
        tid: ThreadId,
    },
    /// `tid` stopped running on `core` (preempted, blocked or exited).
    DescheduledFrom {
        /// The core.
        core: CoreId,
        /// The thread.
        tid: ThreadId,
    },
}

/// The recorded, replayable essence of one completed syscall.
///
/// During replay the kernel logic is *not* re-executed; the result is
/// injected and `writes` are applied to user memory at the equivalent
/// point. Syscalls with structural effects (`spawn`, `exit`, `sbrk`,
/// signal management) are re-applied structurally by the replayer, which
/// re-reads the arguments from the replayed thread's registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallRecord {
    /// The calling thread.
    pub tid: ThreadId,
    /// Syscall number (see [`qr_isa::abi`]).
    pub number: u32,
    /// Value returned in `R0`.
    pub result: u32,
    /// Kernel writes into user memory (the copy_to_user payloads the
    /// input log must carry).
    pub writes: Vec<(VirtAddr, Vec<u8>)>,
}

/// Everything one kernel interaction produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SyscallOutcome {
    /// Syscalls that *completed* during this interaction: the caller's
    /// own (if it did not block) plus any blocked syscalls that finished
    /// as a side effect (futex wakes, join releases). In completion
    /// order.
    pub records: Vec<SyscallRecord>,
    /// Scheduling actions, in order.
    pub sched: Vec<SchedEvent>,
    /// Coherence events from kernel copies in and out of user memory
    /// (the recorder checks them against open chunks).
    pub mem_events: Vec<MemEvent>,
    /// Kernel time charged to the interacting core.
    pub kernel_cycles: u64,
}

impl SyscallOutcome {
    /// Merges another outcome produced within the same interaction.
    pub fn merge(&mut self, other: SyscallOutcome) {
        self.records.extend(other.records);
        self.sched.extend(other.sched);
        self.mem_events.extend(other.mem_events);
        self.kernel_cycles += other.kernel_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_concatenates_in_order() {
        let mut a = SyscallOutcome {
            records: vec![SyscallRecord { tid: ThreadId(0), number: 1, result: 0, writes: vec![] }],
            sched: vec![SchedEvent::ScheduledOn { core: CoreId(0), tid: ThreadId(0) }],
            mem_events: vec![],
            kernel_cycles: 10,
        };
        let b = SyscallOutcome {
            records: vec![SyscallRecord { tid: ThreadId(1), number: 2, result: 7, writes: vec![] }],
            sched: vec![],
            mem_events: vec![],
            kernel_cycles: 5,
        };
        a.merge(b);
        assert_eq!(a.records.len(), 2);
        assert_eq!(a.records[1].tid, ThreadId(1));
        assert_eq!(a.kernel_cycles, 15);
    }
}
