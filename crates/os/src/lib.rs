#![warn(missing_docs)]

//! The simulated operating system (the Linux analog under Capo3).
//!
//! QuickRec's software stack, Capo3, lives inside a modified Linux
//! kernel: it intercepts syscalls and signals, virtualizes the recording
//! hardware across context switches, and drains logs. To reproduce its
//! behaviour we need an actual kernel to modify, so this crate implements
//! one for the simulated machine:
//!
//! - threads with kernel-managed stacks, round-robin scheduling with a
//!   cycle quantum, and cross-core migration ([`kernel::Kernel`]),
//! - the syscall surface of [`qr_isa::abi`]: spawn/join/exit, futex
//!   wait/wake (the building block the workload runtime's locks and
//!   barriers use), console write, a synthetic input device, `sbrk`,
//!   time/random reads, and user signals with handler/sigreturn
//!   semantics,
//! - a deterministic native run loop ([`native::run_native`]) used as the
//!   no-recording baseline in the overhead experiments.
//!
//! The kernel reports every scheduling action and every syscall's
//! user-visible effects as data ([`events`]), which is what lets the
//! Capo3 analog in `qr-capo` wrap it: terminate chunks at the right
//! boundaries, log inputs, and charge recording overhead — without the
//! kernel knowing whether recording is on.

pub mod config;
pub mod events;
pub mod kernel;
pub mod native;
pub mod thread;

pub use config::OsConfig;
pub use events::{SchedEvent, SyscallOutcome, SyscallRecord};
pub use kernel::Kernel;
pub use native::{run_native, RunOutcome};
pub use thread::{Thread, ThreadState};
