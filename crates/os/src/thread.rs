//! Kernel thread objects.

use qr_common::{CoreId, ThreadId, VirtAddr};
use qr_cpu::CpuContext;

/// Why a thread is not runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting on a futex word at this address.
    Futex(VirtAddr),
    /// Waiting for another thread to exit.
    Join(ThreadId),
}

/// Lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// On the run queue, context saved in the thread object.
    Runnable,
    /// Executing on a core (context lives in the core).
    Running(CoreId),
    /// Blocked in a syscall.
    Blocked(BlockReason),
    /// Finished, with an exit code.
    Exited(u32),
}

/// One kernel thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Thread id (stable, never reused).
    pub tid: ThreadId,
    /// Lifecycle state.
    pub state: ThreadState,
    /// Saved context while not running.
    pub saved: Option<CpuContext>,
    /// Stack range `[base, top)` for diagnostics.
    pub stack_base: VirtAddr,
    /// Stack top (initial SP).
    pub stack_top: VirtAddr,
    /// Threads blocked in `join` on this one.
    pub joiners: Vec<ThreadId>,
    /// Installed SIGUSR handler, if any.
    pub signal_handler: Option<VirtAddr>,
    /// Pending (undelivered) SIGUSR count.
    pub pending_signals: u32,
    /// Context saved at signal delivery, restored by `sigreturn`.
    pub signal_saved: Option<CpuContext>,
    /// Syscall number this thread is blocked in, for deferred results.
    pub blocked_in: Option<u32>,
}

impl Thread {
    /// Creates a runnable thread with a saved context.
    pub fn new(tid: ThreadId, ctx: CpuContext, stack_base: VirtAddr, stack_top: VirtAddr) -> Thread {
        Thread {
            tid,
            state: ThreadState::Runnable,
            saved: Some(ctx),
            stack_base,
            stack_top,
            joiners: Vec::new(),
            signal_handler: None,
            pending_signals: 0,
            signal_saved: None,
            blocked_in: None,
        }
    }

    /// Whether the thread has exited.
    pub fn is_exited(&self) -> bool {
        matches!(self.state, ThreadState::Exited(_))
    }

    /// Exit code if exited.
    pub fn exit_code(&self) -> Option<u32> {
        match self.state {
            ThreadState::Exited(code) => Some(code),
            _ => None,
        }
    }

    /// Whether the thread is currently inside a signal handler.
    pub fn in_signal_handler(&self) -> bool {
        self.signal_saved.is_some()
    }

    /// Whether a signal can be delivered right now (handler installed,
    /// pending count nonzero, not already handling one).
    pub fn signal_deliverable(&self) -> bool {
        self.signal_handler.is_some() && self.pending_signals > 0 && !self.in_signal_handler()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread() -> Thread {
        Thread::new(
            ThreadId(1),
            CpuContext::new(VirtAddr(0x1000)),
            VirtAddr(0x1000_0000),
            VirtAddr(0x1001_0000),
        )
    }

    #[test]
    fn new_thread_is_runnable_with_saved_context() {
        let t = thread();
        assert_eq!(t.state, ThreadState::Runnable);
        assert!(t.saved.is_some());
        assert!(!t.is_exited());
        assert_eq!(t.exit_code(), None);
    }

    #[test]
    fn exit_code_reads_back() {
        let mut t = thread();
        t.state = ThreadState::Exited(42);
        assert!(t.is_exited());
        assert_eq!(t.exit_code(), Some(42));
    }

    #[test]
    fn signal_deliverability_rules() {
        let mut t = thread();
        assert!(!t.signal_deliverable(), "no handler");
        t.signal_handler = Some(VirtAddr(0x2000));
        assert!(!t.signal_deliverable(), "nothing pending");
        t.pending_signals = 1;
        assert!(t.signal_deliverable());
        t.signal_saved = Some(CpuContext::new(VirtAddr(0)));
        assert!(!t.signal_deliverable(), "already in a handler");
    }
}
