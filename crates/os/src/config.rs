//! Kernel configuration and base cost model.

use qr_common::{QrError, Result};

/// Kernel parameters, including the *baseline* costs that exist with or
/// without recording (the Capo3 layer adds its own on top).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsConfig {
    /// Scheduling quantum in cycles.
    pub quantum_cycles: u64,
    /// Stack bytes per thread.
    pub stack_bytes: u32,
    /// Guard gap between stacks (left unmapped).
    pub stack_guard_bytes: u32,
    /// Base cycles for entering and servicing any syscall.
    pub syscall_base_cycles: u64,
    /// Cycles per byte copied between kernel and user space.
    pub copy_cycles_per_byte: u64,
    /// Cycles for a context switch (save/restore, scheduler).
    pub context_switch_cycles: u64,
    /// Seed for the synthetic input device and `rand` syscall.
    pub input_seed: u64,
    /// Upper bound on total retired instructions (livelock guard).
    pub max_instructions: u64,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            quantum_cycles: 50_000,
            stack_bytes: 64 * 1024,
            stack_guard_bytes: 64 * 1024,
            syscall_base_cycles: 150,
            copy_cycles_per_byte: 1,
            context_switch_cycles: 400,
            input_seed: 0x5eed,
            max_instructions: 500_000_000,
        }
    }
}

impl OsConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.quantum_cycles == 0 {
            return Err(QrError::InvalidConfig("quantum_cycles must be nonzero".into()));
        }
        if self.stack_bytes < 4096 {
            return Err(QrError::InvalidConfig("stack_bytes must be at least 4096".into()));
        }
        if !self.stack_bytes.is_multiple_of(64) || !self.stack_guard_bytes.is_multiple_of(64) {
            return Err(QrError::InvalidConfig("stack sizes must be line-aligned".into()));
        }
        if self.max_instructions == 0 {
            return Err(QrError::InvalidConfig("max_instructions must be nonzero".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        OsConfig::default().validate().unwrap();
    }

    #[test]
    fn constraints_enforced() {
        let ok = OsConfig::default;
        assert!(OsConfig { quantum_cycles: 0, ..ok() }.validate().is_err());
        assert!(OsConfig { stack_bytes: 100, ..ok() }.validate().is_err());
        assert!(OsConfig { stack_bytes: 4097, ..ok() }.validate().is_err());
        assert!(OsConfig { max_instructions: 0, ..ok() }.validate().is_err());
    }
}
