//! The kernel: threads, scheduler, syscalls, futexes, signals.

use crate::config::OsConfig;
use crate::events::{SchedEvent, SyscallOutcome, SyscallRecord};
use crate::thread::{BlockReason, Thread, ThreadState};
use qr_common::{CoreId, QrError, Result, SplitMix64, ThreadId, VirtAddr};
use qr_cpu::{CpuContext, Machine, NondetKind};
use qr_isa::abi;
use qr_isa::program::{CODE_BASE, INSTR_BYTES, STACK_TOP};
use qr_isa::Reg;
use std::collections::{BTreeMap, VecDeque};

/// Maximum bytes one `read`/`write` syscall moves (keeps copy costs
/// bounded like a real kernel's single-call limits).
const MAX_COPY_BYTES: u32 = 64 * 1024;

/// Result value returned for invalid arguments (the `-1` of this ABI).
pub const EFAULT: u32 = u32::MAX;

/// The simulated kernel for one machine.
#[derive(Debug)]
pub struct Kernel {
    cfg: OsConfig,
    threads: Vec<Thread>,
    runq: VecDeque<ThreadId>,
    core_thread: Vec<Option<ThreadId>>,
    /// Core-local cycle count when the current thread was scheduled.
    core_sched_cycle: Vec<u64>,
    futex_waiters: BTreeMap<u32, VecDeque<ThreadId>>,
    console: Vec<u8>,
    brk: VirtAddr,
    next_stack_top: u32,
    device_rng: SplitMix64,
    live: usize,
}

impl Kernel {
    /// Creates the kernel and the main thread (tid 0) for the loaded
    /// program; call [`Kernel::place_runnable`] (or [`crate::native::run_native`])
    /// to start executing.
    ///
    /// # Errors
    ///
    /// Returns configuration errors, or mapping errors for the main stack.
    pub fn new(cfg: OsConfig, machine: &mut Machine) -> Result<Kernel> {
        cfg.validate()?;
        let num_cores = machine.num_cores();
        let mut kernel = Kernel {
            threads: Vec::new(),
            runq: VecDeque::new(),
            core_thread: vec![None; num_cores],
            core_sched_cycle: vec![0; num_cores],
            futex_waiters: BTreeMap::new(),
            console: Vec::new(),
            brk: VirtAddr(align_up(machine.program().initial_brk().0, 64)),
            next_stack_top: STACK_TOP,
            device_rng: SplitMix64::new(cfg.input_seed),
            live: 0,
            cfg,
        };
        let entry = machine.program().entry();
        kernel.create_thread(machine, entry, 0)?;
        Ok(kernel)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &OsConfig {
        &self.cfg
    }

    /// Console output so far.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Whether every thread has exited.
    pub fn all_done(&self) -> bool {
        self.live == 0
    }

    /// Number of live (non-exited) threads.
    pub fn live_threads(&self) -> usize {
        self.live
    }

    /// The main thread's exit code (0 if still running).
    pub fn exit_code(&self) -> u32 {
        self.threads.first().and_then(Thread::exit_code).unwrap_or(0)
    }

    /// Thread lookup.
    pub fn thread(&self, tid: ThreadId) -> Option<&Thread> {
        self.threads.get(tid.index())
    }

    /// All threads ever created (exited included).
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// The thread currently running on `core`.
    pub fn thread_on(&self, core: CoreId) -> Option<ThreadId> {
        self.core_thread[core.index()]
    }

    /// Exit codes of all threads in tid order (`None` while running) —
    /// part of the replay-validation fingerprint.
    pub fn exit_codes(&self) -> Vec<Option<u32>> {
        self.threads.iter().map(Thread::exit_code).collect()
    }

    // ----- thread creation / placement -----------------------------------

    fn create_thread(&mut self, machine: &mut Machine, entry: VirtAddr, arg: u32) -> Result<ThreadId> {
        let tid = ThreadId(self.threads.len() as u32);
        let top = self.next_stack_top;
        let base = top - self.cfg.stack_bytes;
        self.next_stack_top = base - self.cfg.stack_guard_bytes;
        machine.mem_mut().map_region(VirtAddr(base), self.cfg.stack_bytes)?;
        let mut ctx = CpuContext::new(entry);
        ctx.set_reg(Reg::SP, top);
        ctx.set_reg(Reg::R1, arg);
        self.threads.push(Thread::new(tid, ctx, VirtAddr(base), VirtAddr(top)));
        self.runq.push_back(tid);
        self.live += 1;
        Ok(tid)
    }

    /// Fills idle cores from the run queue. Returns the scheduling
    /// actions taken.
    pub fn place_runnable(&mut self, machine: &mut Machine) -> Vec<SchedEvent> {
        let mut events = Vec::new();
        let max_cycles =
            (0..machine.num_cores()).map(|i| machine.core(CoreId(i as u8)).cycles()).max().unwrap_or(0);
        for i in 0..machine.num_cores() {
            let core = CoreId(i as u8);
            if self.core_thread[i].is_some() {
                continue;
            }
            let Some(tid) = self.runq.pop_front() else { break };
            let thread = &mut self.threads[tid.index()];
            let ctx = thread.saved.take().expect("runnable thread has a saved context");
            thread.state = ThreadState::Running(core);
            machine.core_mut(core).swap_context(Some(ctx));
            // A core that sat idle re-enters time at "now", not in the past.
            machine.core_mut(core).advance_to(max_cycles);
            self.core_thread[i] = Some(tid);
            self.core_sched_cycle[i] = machine.core(core).cycles();
            events.push(SchedEvent::ScheduledOn { core, tid });
        }
        events
    }

    fn deschedule(&mut self, machine: &mut Machine, core: CoreId, new_state: ThreadState) -> SchedEvent {
        let tid = self.core_thread[core.index()].take().expect("deschedule of an idle core");
        let ctx = machine.core_mut(core).swap_context(None).expect("running thread has a context");
        let thread = &mut self.threads[tid.index()];
        match new_state {
            ThreadState::Exited(_) => {
                thread.saved = None;
                self.live -= 1;
            }
            _ => thread.saved = Some(ctx),
        }
        thread.state = new_state;
        SchedEvent::DescheduledFrom { core, tid }
    }

    /// Whether the thread on `core` has exhausted its quantum and someone
    /// is waiting.
    pub fn quantum_expired(&self, machine: &Machine, core: CoreId) -> bool {
        self.core_thread[core.index()].is_some()
            && !self.runq.is_empty()
            && machine.core(core).cycles() - self.core_sched_cycle[core.index()]
                >= self.cfg.quantum_cycles
    }

    /// Preempts the thread on `core`, scheduling the next runnable one.
    pub fn preempt(&mut self, machine: &mut Machine, core: CoreId) -> SyscallOutcome {
        let mut out = SyscallOutcome::default();
        let tid = match self.core_thread[core.index()] {
            Some(t) => t,
            None => return out,
        };
        out.sched.push(self.deschedule(machine, core, ThreadState::Runnable));
        self.runq.push_back(tid);
        out.kernel_cycles += self.cfg.context_switch_cycles;
        machine.core_mut(core).add_cycles(self.cfg.context_switch_cycles);
        out.sched.extend(self.place_runnable(machine));
        out
    }

    // ----- trap handlers --------------------------------------------------

    /// Services the `halt` instruction (thread exit with code 0).
    pub fn handle_halt(&mut self, machine: &mut Machine, core: CoreId) -> SyscallOutcome {
        self.exit_thread(machine, core, 0)
    }

    /// Services a fault: the thread is killed with a recognizable code.
    pub fn handle_fault(&mut self, machine: &mut Machine, core: CoreId, _err: &QrError) -> SyscallOutcome {
        self.exit_thread(machine, core, 0xdead_0000)
    }

    /// Supplies the value for a nondeterministic read.
    pub fn nondet_value(&mut self, machine: &Machine, kind: NondetKind) -> u32 {
        match kind {
            NondetKind::Rdtsc => machine.mem().now().0 as u32,
            NondetKind::Rdrand => self.device_rng.next_u32(),
        }
    }

    fn exit_thread(&mut self, machine: &mut Machine, core: CoreId, code: u32) -> SyscallOutcome {
        let mut out = SyscallOutcome::default();
        let tid = self.core_thread[core.index()].expect("exit from an idle core");
        // Every thread death — explicit exit, halt or fault — produces an
        // exit record so the replayer learns the code uniformly.
        out.records.push(SyscallRecord { tid, number: abi::SYS_EXIT, result: code, writes: Vec::new() });
        out.sched.push(self.deschedule(machine, core, ThreadState::Exited(code)));
        // Release joiners.
        let joiners = std::mem::take(&mut self.threads[tid.index()].joiners);
        for j in joiners {
            self.complete_blocked(j, code, &mut out);
        }
        out.kernel_cycles += self.cfg.syscall_base_cycles;
        machine.core_mut(core).add_cycles(self.cfg.syscall_base_cycles);
        out.sched.extend(self.place_runnable(machine));
        out
    }

    /// Finishes a blocked syscall for `tid` with `result`, making the
    /// thread runnable again and emitting its deferred record.
    fn complete_blocked(&mut self, tid: ThreadId, result: u32, out: &mut SyscallOutcome) {
        let thread = &mut self.threads[tid.index()];
        let number = thread.blocked_in.take().expect("blocked thread has a pending syscall");
        thread
            .saved
            .as_mut()
            .expect("blocked thread has a saved context")
            .set_reg(Reg::R0, result);
        thread.state = ThreadState::Runnable;
        self.runq.push_back(tid);
        out.records.push(SyscallRecord { tid, number, result, writes: Vec::new() });
    }

    /// Services the syscall the thread on `core` just trapped with.
    ///
    /// # Errors
    ///
    /// Only internal inconsistencies return errors; guest mistakes (bad
    /// pointers, bad arguments) produce [`EFAULT`] results.
    pub fn handle_syscall(&mut self, machine: &mut Machine, core: CoreId) -> Result<SyscallOutcome> {
        let tid = self.core_thread[core.index()].expect("syscall from an idle core");
        let number = machine.read_reg(core, Reg::R0);
        let a1 = machine.read_reg(core, Reg::R1);
        let a2 = machine.read_reg(core, Reg::R2);
        let mut out = SyscallOutcome::default();
        out.kernel_cycles += self.cfg.syscall_base_cycles;

        // Completed-in-place syscalls set `result`; blocking and exiting
        // paths return early.
        let result: u32 = match number {
            abi::SYS_EXIT => {
                return Ok(self.exit_thread(machine, core, a1));
            }
            abi::SYS_WRITE => {
                let len = a2.min(MAX_COPY_BYTES);
                match machine.mem_mut().kernel_read_bytes(core, VirtAddr(a1), len) {
                    Ok((bytes, access)) => {
                        out.kernel_cycles += access.cycles
                            + self.cfg.copy_cycles_per_byte * len as u64;
                        out.mem_events.extend(access.events);
                        self.console.extend_from_slice(&bytes);
                        len
                    }
                    Err(_) => EFAULT,
                }
            }
            abi::SYS_SPAWN => {
                let entry = VirtAddr(a1);
                let code_end = CODE_BASE + machine.program().len() as u32 * INSTR_BYTES;
                if entry.0 < CODE_BASE || entry.0 >= code_end || !(entry.0 - CODE_BASE).is_multiple_of(INSTR_BYTES)
                {
                    EFAULT
                } else {
                    let new_tid = self.create_thread(machine, entry, a2)?;
                    out.kernel_cycles += self.cfg.context_switch_cycles;
                    out.sched.extend(self.place_runnable(machine));
                    new_tid.0
                }
            }
            abi::SYS_JOIN => {
                let target = ThreadId(a1);
                match self.threads.get(target.index()) {
                    None => EFAULT,
                    Some(t) if t.tid == tid => EFAULT,
                    Some(t) => match t.exit_code() {
                        Some(code) => code,
                        None => {
                            // Block until the target exits; the record is
                            // deferred to completion time.
                            self.block_current(
                                machine,
                                core,
                                BlockReason::Join(target),
                                number,
                                &mut out,
                            );
                            self.threads[target.index()].joiners.push(tid);
                            out.sched.extend(self.place_runnable(machine));
                            self.charge(machine, core, &out);
                            return Ok(out);
                        }
                    },
                }
            }
            abi::SYS_FUTEX_WAIT => {
                match machine.mem_mut().kernel_read_bytes(core, VirtAddr(a1), 4) {
                    Err(_) => EFAULT,
                    Ok((bytes, access)) => {
                        out.kernel_cycles += access.cycles;
                        out.mem_events.extend(access.events);
                        let current = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
                        if current != a2 {
                            1 // value already changed; do not sleep
                        } else {
                            self.block_current(
                                machine,
                                core,
                                BlockReason::Futex(VirtAddr(a1)),
                                number,
                                &mut out,
                            );
                            self.futex_waiters.entry(a1).or_default().push_back(tid);
                            out.sched.extend(self.place_runnable(machine));
                            self.charge(machine, core, &out);
                            return Ok(out);
                        }
                    }
                }
            }
            abi::SYS_FUTEX_WAKE => {
                let mut to_wake = Vec::new();
                if let Some(waiters) = self.futex_waiters.get_mut(&a1) {
                    while (to_wake.len() as u32) < a2.max(1) {
                        let Some(w) = waiters.pop_front() else { break };
                        to_wake.push(w);
                    }
                    if waiters.is_empty() {
                        self.futex_waiters.remove(&a1);
                    }
                }
                // The waker's record precedes the woken waiters' records:
                // the wake causally happens before each wait returns, and
                // replay-time analyses (the race detector's futex edges)
                // rely on that order.
                let woken = to_wake.len() as u32;
                machine.write_reg(core, Reg::R0, woken);
                out.records.push(SyscallRecord { tid, number, result: woken, writes: Vec::new() });
                for w in to_wake {
                    self.complete_blocked(w, 0, &mut out);
                }
                out.sched.extend(self.place_runnable(machine));
                self.charge(machine, core, &out);
                return Ok(out);
            }
            abi::SYS_YIELD => {
                machine.write_reg(core, Reg::R0, 0);
                out.records.push(SyscallRecord { tid, number, result: 0, writes: Vec::new() });
                if !self.runq.is_empty() {
                    let preempt_out = self.preempt(machine, core);
                    out.merge(preempt_out);
                }
                self.charge(machine, core, &out);
                return Ok(out);
            }
            abi::SYS_TIME => machine.mem().now().0 as u32,
            abi::SYS_SBRK => {
                let grow = align_up(a1, 64);
                let old = self.brk;
                if grow > 0 {
                    if machine.mem_mut().map_region(old, grow).is_err() {
                        machine.write_reg(core, Reg::R0, EFAULT);
                        out.records.push(SyscallRecord {
                            tid,
                            number,
                            result: EFAULT,
                            writes: Vec::new(),
                        });
                        self.charge(machine, core, &out);
                        return Ok(out);
                    }
                    self.brk = VirtAddr(old.0 + grow);
                }
                old.0
            }
            abi::SYS_GETTID => tid.0,
            abi::SYS_READ => {
                let len = a2.min(4096);
                let mut bytes = Vec::with_capacity(len as usize);
                for _ in 0..len {
                    bytes.push(self.device_rng.next_u64() as u8);
                }
                match machine.mem_mut().kernel_write_bytes(core, VirtAddr(a1), &bytes) {
                    Ok(access) => {
                        out.kernel_cycles += access.cycles
                            + self.cfg.copy_cycles_per_byte * len as u64;
                        out.mem_events.extend(access.events);
                        out.records.push(SyscallRecord {
                            tid,
                            number,
                            result: len,
                            writes: vec![(VirtAddr(a1), bytes)],
                        });
                        machine.write_reg(core, Reg::R0, len);
                        self.charge(machine, core, &out);
                        return Ok(out);
                    }
                    Err(_) => EFAULT,
                }
            }
            abi::SYS_NCORES => machine.num_cores() as u32,
            abi::SYS_RAND => self.device_rng.next_u32(),
            abi::SYS_SIGACTION => {
                let thread = &mut self.threads[tid.index()];
                let old = thread.signal_handler.map_or(0, |a| a.0);
                thread.signal_handler = (a1 != 0).then_some(VirtAddr(a1));
                old
            }
            abi::SYS_KILL => {
                let target = ThreadId(a1);
                match self.threads.get_mut(target.index()) {
                    Some(t) if !t.is_exited() => {
                        t.pending_signals += 1;
                        0
                    }
                    _ => EFAULT,
                }
            }
            abi::SYS_SIGRETURN => {
                let thread = &mut self.threads[tid.index()];
                match thread.signal_saved.take() {
                    Some(saved) => {
                        machine.core_mut(core).swap_context(Some(saved));
                        out.records.push(SyscallRecord {
                            tid,
                            number,
                            result: 0,
                            writes: Vec::new(),
                        });
                        self.charge(machine, core, &out);
                        return Ok(out);
                    }
                    None => EFAULT,
                }
            }
            _ => EFAULT,
        };

        machine.write_reg(core, Reg::R0, result);
        out.records.push(SyscallRecord { tid, number, result, writes: Vec::new() });
        self.charge(machine, core, &out);
        Ok(out)
    }

    fn charge(&self, machine: &mut Machine, core: CoreId, out: &SyscallOutcome) {
        machine.core_mut(core).add_cycles(out.kernel_cycles);
    }

    fn block_current(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        reason: BlockReason,
        number: u32,
        out: &mut SyscallOutcome,
    ) {
        out.sched.push(self.deschedule(machine, core, ThreadState::Blocked(reason)));
        let tid = match out.sched.last() {
            Some(SchedEvent::DescheduledFrom { tid, .. }) => *tid,
            _ => unreachable!("deschedule emits DescheduledFrom"),
        };
        self.threads[tid.index()].blocked_in = Some(number);
    }

    // ----- signals ---------------------------------------------------------

    /// Whether the thread on `core` has a deliverable signal.
    pub fn signal_ready(&self, core: CoreId) -> bool {
        self.core_thread[core.index()]
            .and_then(|tid| self.threads.get(tid.index()))
            .is_some_and(Thread::signal_deliverable)
    }

    /// Delivers one pending SIGUSR to the thread on `core`: saves the
    /// interrupted context and redirects execution to the handler with
    /// the signal number in `R1`. Returns the target tid.
    ///
    /// # Panics
    ///
    /// Panics if no signal is deliverable — check [`Kernel::signal_ready`]
    /// first.
    pub fn deliver_signal(&mut self, machine: &mut Machine, core: CoreId) -> ThreadId {
        let tid = self.core_thread[core.index()].expect("signal to an idle core");
        let thread = &mut self.threads[tid.index()];
        assert!(thread.signal_deliverable(), "deliver_signal without a deliverable signal");
        thread.pending_signals -= 1;
        let handler = thread.signal_handler.expect("deliverable implies handler");
        let current = machine
            .core_mut(core)
            .swap_context(None)
            .expect("running thread has a context");
        let mut frame = current.clone();
        thread.signal_saved = Some(current);
        frame.set_pc(handler);
        frame.set_reg(Reg::R1, 1); // signal number
        machine.core_mut(core).swap_context(Some(frame));
        machine.core_mut(core).add_cycles(self.cfg.context_switch_cycles / 2);
        tid
    }
}

fn align_up(v: u32, align: u32) -> u32 {
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_cpu::CpuConfig;
    use qr_isa::Asm;

    fn machine(asm: Asm, cores: usize) -> Machine {
        Machine::new(asm.finish().unwrap(), CpuConfig { num_cores: cores, ..CpuConfig::default() })
            .unwrap()
    }

    #[test]
    fn boot_creates_main_thread_with_stack() {
        let mut a = Asm::new();
        a.halt();
        let mut m = machine(a, 2);
        let mut k = Kernel::new(OsConfig::default(), &mut m).unwrap();
        let events = k.place_runnable(&mut m);
        assert_eq!(events, vec![SchedEvent::ScheduledOn { core: CoreId(0), tid: ThreadId(0) }]);
        assert_eq!(k.live_threads(), 1);
        assert_eq!(m.read_reg(CoreId(0), Reg::SP), STACK_TOP);
        assert!(m.mem().memory().is_mapped(VirtAddr(STACK_TOP - 4), 4));
        assert!(!m.mem().memory().is_mapped(VirtAddr(STACK_TOP), 4), "top is exclusive");
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
    }
}
