//! The native (recording-off) run loop — the baseline of the overhead
//! experiments.

use crate::kernel::Kernel;
use crate::OsConfig;
use qr_common::{Fingerprint, QrError, Result};
use qr_cpu::{Machine, StepOutcome};

/// Result of running a program to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Makespan: the largest per-core cycle count.
    pub cycles: u64,
    /// Total instructions retired across cores.
    pub instructions: u64,
    /// Console output.
    pub console: Vec<u8>,
    /// Main thread's exit code.
    pub exit_code: u32,
    /// Architectural-outcome digest: memory image, console, per-thread
    /// exit codes. Two executions with equal fingerprints ended in the
    /// same state.
    pub fingerprint: u64,
}

/// Computes the architectural-outcome fingerprint from its parts. The
/// replayer uses this same function, so record and replay digests are
/// directly comparable.
pub fn fingerprint_of(machine: &Machine, console: &[u8], exit_codes: &[Option<u32>]) -> u64 {
    let mut fp = Fingerprint::new();
    machine.mem().memory().fingerprint_into(&mut fp);
    fp.field("console", console);
    for code in exit_codes {
        fp.u32(code.map_or(u32::MAX, |c| c.wrapping_add(1)));
    }
    fp.digest()
}

/// Computes the architectural-outcome fingerprint of a finished (or
/// paused) machine+kernel pair.
pub fn state_fingerprint(machine: &Machine, kernel: &Kernel) -> u64 {
    fingerprint_of(machine, kernel.console(), &kernel.exit_codes())
}

/// Runs the loaded program natively (no recording) to completion.
///
/// # Errors
///
/// Returns [`QrError::BudgetExceeded`] if the instruction budget runs
/// out, or [`QrError::Execution`] on a scheduling deadlock (every thread
/// blocked).
pub fn run_native(machine: &mut Machine, os_cfg: OsConfig) -> Result<RunOutcome> {
    let mut kernel = Kernel::new(os_cfg, machine)?;
    kernel.place_runnable(machine);
    let mut instructions = 0u64;
    let budget = kernel.config().max_instructions;
    while !kernel.all_done() {
        let Some(core) = machine.least_advanced_busy_core() else {
            kernel.place_runnable(machine);
            if machine.least_advanced_busy_core().is_none() {
                return Err(QrError::Execution {
                    detail: format!("deadlock: {} threads blocked forever", kernel.live_threads()),
                });
            }
            continue;
        };
        let step = machine.step(core);
        if step.instruction_retired() {
            instructions += 1;
            if instructions > budget {
                return Err(QrError::BudgetExceeded { executed: instructions });
            }
        }
        match step.outcome {
            StepOutcome::Retired => {
                if kernel.quantum_expired(machine, core) {
                    kernel.preempt(machine, core);
                }
                if kernel.signal_ready(core) {
                    kernel.deliver_signal(machine, core);
                }
            }
            StepOutcome::Syscall => {
                machine.drain_store_buffer(core)?;
                kernel.handle_syscall(machine, core)?;
                kernel.place_runnable(machine);
            }
            StepOutcome::Nondet { kind, rd } => {
                let value = kernel.nondet_value(machine, kind);
                machine.write_reg(core, rd, value);
            }
            StepOutcome::Halt => {
                machine.drain_store_buffer(core)?;
                kernel.handle_halt(machine, core);
                kernel.place_runnable(machine);
            }
            StepOutcome::Fault(ref err) => {
                machine.drain_store_buffer(core)?;
                kernel.handle_fault(machine, core, err);
                kernel.place_runnable(machine);
            }
            StepOutcome::Idle => {}
        }
    }
    let cycles = (0..machine.num_cores())
        .map(|i| machine.core(qr_common::CoreId(i as u8)).cycles())
        .max()
        .unwrap_or(0);
    Ok(RunOutcome {
        cycles,
        instructions,
        console: kernel.console().to_vec(),
        exit_code: kernel.exit_code(),
        fingerprint: state_fingerprint(machine, &kernel),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_cpu::CpuConfig;
    use qr_isa::abi;
    use qr_isa::{Asm, Reg};

    fn run(asm: Asm, cores: usize) -> RunOutcome {
        let mut machine = Machine::new(
            asm.finish().unwrap(),
            CpuConfig { num_cores: cores, ..CpuConfig::default() },
        )
        .unwrap();
        run_native(&mut machine, OsConfig::default()).unwrap()
    }

    /// Emits `syscall(number, a1, a2)`; result lands in R0.
    fn sys(a: &mut Asm, number: u32, set_args: impl FnOnce(&mut Asm)) {
        a.movi_u(Reg::R0, number);
        set_args(a);
        a.syscall();
    }

    #[test]
    fn hello_world_reaches_console() {
        let mut a = Asm::new();
        a.data_bytes("msg", b"hello\n");
        sys(&mut a, abi::SYS_WRITE, |a| {
            a.movi_sym(Reg::R1, "msg");
            a.movi(Reg::R2, 6);
        });
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi(Reg::R1, 0);
        });
        let out = run(a, 1);
        assert_eq!(out.console, b"hello\n");
        assert_eq!(out.exit_code, 0);
        assert!(out.instructions > 0);
    }

    #[test]
    fn spawn_join_collects_exit_code() {
        let mut a = Asm::new();
        // main: spawn worker(arg=5), join, exit(join result)
        sys(&mut a, abi::SYS_SPAWN, |a| {
            a.movi_sym(Reg::R1, "worker");
            a.movi(Reg::R2, 5);
        });
        a.mov(Reg::R6, Reg::R0); // worker tid
        sys(&mut a, abi::SYS_JOIN, |a| {
            a.mov(Reg::R1, Reg::R6);
        });
        a.mov(Reg::R1, Reg::R0);
        a.movi_u(Reg::R0, abi::SYS_EXIT);
        a.syscall();
        // worker: exit(arg * 2)
        a.label("worker");
        a.add(Reg::R1, Reg::R1, Reg::R1);
        a.movi_u(Reg::R0, abi::SYS_EXIT);
        a.syscall();
        let out = run(a, 2);
        assert_eq!(out.exit_code, 10);
    }

    #[test]
    fn futex_wait_wake_round_trip() {
        let mut a = Asm::new();
        a.data_word("flag", &[0]);
        // main: spawn waiter; busy-set flag=1; wake; join; exit(0)
        sys(&mut a, abi::SYS_SPAWN, |a| {
            a.movi_sym(Reg::R1, "waiter");
            a.movi(Reg::R2, 0);
        });
        a.mov(Reg::R6, Reg::R0);
        // Give the waiter time to block.
        sys(&mut a, abi::SYS_YIELD, |_| {});
        a.movi_sym(Reg::R3, "flag");
        a.movi(Reg::R4, 1);
        a.st(Reg::R3, 0, Reg::R4);
        a.fence();
        sys(&mut a, abi::SYS_FUTEX_WAKE, |a| {
            a.movi_sym(Reg::R1, "flag");
            a.movi(Reg::R2, 8);
        });
        sys(&mut a, abi::SYS_JOIN, |a| {
            a.mov(Reg::R1, Reg::R6);
        });
        a.mov(Reg::R1, Reg::R0);
        a.movi_u(Reg::R0, abi::SYS_EXIT);
        a.syscall();
        // waiter: while flag == 0: futex_wait(flag, 0); exit(flag + 100)
        a.label("waiter");
        a.movi_sym(Reg::R3, "flag");
        a.label("check");
        a.ld(Reg::R4, Reg::R3, 0);
        a.bnez(Reg::R4, "done");
        sys(&mut a, abi::SYS_FUTEX_WAIT, |a| {
            a.movi_sym(Reg::R1, "flag");
            a.movi(Reg::R2, 0);
        });
        a.jmp("check");
        a.label("done");
        a.addi(Reg::R1, Reg::R4, 100);
        a.movi_u(Reg::R0, abi::SYS_EXIT);
        a.syscall();
        let out = run(a, 2);
        assert_eq!(out.exit_code, 101);
    }

    #[test]
    fn single_core_runs_multithreaded_programs() {
        // Same futex program but on one core: requires preemption and
        // blocking to make progress.
        let mut a = Asm::new();
        a.data_word("turns", &[0]);
        sys(&mut a, abi::SYS_SPAWN, |a| {
            a.movi_sym(Reg::R1, "worker");
            a.movi(Reg::R2, 0);
        });
        a.mov(Reg::R6, Reg::R0);
        sys(&mut a, abi::SYS_JOIN, |a| {
            a.mov(Reg::R1, Reg::R6);
        });
        a.mov(Reg::R1, Reg::R0);
        a.movi_u(Reg::R0, abi::SYS_EXIT);
        a.syscall();
        a.label("worker");
        a.movi(Reg::R1, 77);
        a.movi_u(Reg::R0, abi::SYS_EXIT);
        a.syscall();
        let out = run(a, 1);
        assert_eq!(out.exit_code, 77);
    }

    #[test]
    fn sbrk_grows_heap() {
        let mut a = Asm::new();
        sys(&mut a, abi::SYS_SBRK, |a| {
            a.movi(Reg::R1, 4096);
        });
        a.mov(Reg::R6, Reg::R0); // old brk
        // Store to the new memory and read it back.
        a.movi(Reg::R4, 123);
        a.st(Reg::R6, 0, Reg::R4);
        a.ld(Reg::R5, Reg::R6, 0);
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.mov(Reg::R1, Reg::R5);
        });
        let out = run(a, 1);
        assert_eq!(out.exit_code, 123);
    }

    #[test]
    fn read_syscall_fills_buffer_deterministically() {
        let mut a = Asm::new();
        a.data_space("buf", 4);
        sys(&mut a, abi::SYS_READ, |a| {
            a.movi_sym(Reg::R1, "buf");
            a.movi(Reg::R2, 16);
        });
        a.movi_sym(Reg::R3, "buf");
        a.ld(Reg::R1, Reg::R3, 0);
        a.movi_u(Reg::R0, abi::SYS_EXIT);
        a.syscall();
        let o1 = run(a.clone(), 1);
        let o2 = run(a, 1);
        assert_eq!(o1.exit_code, o2.exit_code, "same seed, same input data");
        assert_ne!(o1.exit_code, 0, "the device produced nonzero data");
    }

    #[test]
    fn signals_interrupt_and_sigreturn_resumes() {
        let mut a = Asm::new();
        a.data_word("hits", &[0]);
        // main: install handler, spawn worker that kills us, loop until
        // the handler ran, exit(hits).
        sys(&mut a, abi::SYS_SIGACTION, |a| {
            a.movi_sym(Reg::R1, "handler");
        });
        sys(&mut a, abi::SYS_GETTID, |_| {});
        a.mov(Reg::R7, Reg::R0);
        sys(&mut a, abi::SYS_SPAWN, |a| {
            a.movi_sym(Reg::R1, "killer");
            a.mov(Reg::R2, Reg::R7); // pass main's tid
        });
        a.mov(Reg::R6, Reg::R0);
        a.movi_sym(Reg::R3, "hits");
        a.label("wait");
        a.ld(Reg::R4, Reg::R3, 0);
        a.beqz(Reg::R4, "wait");
        sys(&mut a, abi::SYS_JOIN, |a| {
            a.mov(Reg::R1, Reg::R6);
        });
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi_sym(Reg::R3, "hits");
            a.ld(Reg::R1, Reg::R3, 0);
        });
        // handler: hits += 1; sigreturn
        a.label("handler");
        a.movi_sym(Reg::R3, "hits");
        a.ld(Reg::R4, Reg::R3, 0);
        a.addi(Reg::R4, Reg::R4, 1);
        a.st(Reg::R3, 0, Reg::R4);
        a.fence();
        a.movi_u(Reg::R0, abi::SYS_SIGRETURN);
        a.syscall();
        // killer: kill(arg); exit(0)
        a.label("killer");
        a.movi_u(Reg::R0, abi::SYS_KILL);
        a.syscall();
        a.movi(Reg::R1, 0);
        a.movi_u(Reg::R0, abi::SYS_EXIT);
        a.syscall();
        let out = run(a, 2);
        assert_eq!(out.exit_code, 1, "handler ran exactly once");
    }

    #[test]
    fn deadlock_is_detected() {
        let mut a = Asm::new();
        a.data_word("never", &[0]);
        sys(&mut a, abi::SYS_FUTEX_WAIT, |a| {
            a.movi_sym(Reg::R1, "never");
            a.movi(Reg::R2, 0);
        });
        a.halt();
        let mut machine = Machine::new(
            a.finish().unwrap(),
            CpuConfig { num_cores: 1, ..CpuConfig::default() },
        )
        .unwrap();
        match run_native(&mut machine, OsConfig::default()) {
            Err(QrError::Execution { detail }) => assert!(detail.contains("deadlock")),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let mut a = Asm::new();
        a.label("spin");
        a.jmp("spin");
        let mut machine = Machine::new(
            a.finish().unwrap(),
            CpuConfig { num_cores: 1, ..CpuConfig::default() },
        )
        .unwrap();
        let cfg = OsConfig { max_instructions: 1000, ..OsConfig::default() };
        assert!(matches!(
            run_native(&mut machine, cfg),
            Err(QrError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn identical_runs_have_identical_fingerprints() {
        let build = || {
            let mut a = Asm::new();
            a.data_space("buf", 8);
            sys(&mut a, abi::SYS_READ, |a| {
                a.movi_sym(Reg::R1, "buf");
                a.movi(Reg::R2, 32);
            });
            a.rdrand(Reg::R5);
            sys(&mut a, abi::SYS_EXIT, |a| {
                a.mov(Reg::R1, Reg::R5);
            });
            a
        };
        let o1 = run(build(), 2);
        let o2 = run(build(), 2);
        assert_eq!(o1.fingerprint, o2.fingerprint);
        assert_eq!(o1.cycles, o2.cycles, "the whole simulation is deterministic");
    }

    #[test]
    fn rdtsc_and_rdrand_get_values() {
        let mut a = Asm::new();
        a.rdtsc(Reg::R4);
        a.rdrand(Reg::R5);
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi(Reg::R1, 0);
        });
        let out = run(a, 1);
        assert_eq!(out.exit_code, 0);
    }

    #[test]
    fn fault_kills_thread_not_machine() {
        let mut a = Asm::new();
        sys(&mut a, abi::SYS_SPAWN, |a| {
            a.movi_sym(Reg::R1, "crasher");
            a.movi(Reg::R2, 0);
        });
        a.mov(Reg::R6, Reg::R0);
        sys(&mut a, abi::SYS_JOIN, |a| {
            a.mov(Reg::R1, Reg::R6);
        });
        a.mov(Reg::R1, Reg::R0);
        a.movi_u(Reg::R0, abi::SYS_EXIT);
        a.syscall();
        a.label("crasher");
        a.movi_u(Reg::R1, 0x9000_0000);
        a.ld(Reg::R2, Reg::R1, 0); // unmapped
        a.halt();
        let out = run(a, 2);
        assert_eq!(out.exit_code, 0xdead_0000, "join saw the fault exit code");
    }
}
