//! The chunk-ordered replayer.

use crate::outcome::ReplayOutcome;
use crate::races::{RaceDetector, RaceReport};
use qr_capo::{InputEvent, Recording};
use qr_common::{CoreId, Cycle, QrError, Result, ThreadId, VirtAddr};
use qr_cpu::{CpuConfig, CpuContext, Machine, NondetKind, StepOutcome};
use qr_isa::program::STACK_TOP;
use qr_isa::{abi, Program, Reg};
use qr_mem::{MemEvent, TsoMode};
use qr_os::kernel::EFAULT;
use qr_os::SyscallRecord;
use quickrec_core::{ChunkPacket, TerminationReason};
use std::collections::VecDeque;

/// Replays `recording` of `program` and verifies the outcome matches.
///
/// # Errors
///
/// Returns [`QrError::ReplayDivergence`] on any mismatch, or the
/// underlying error for malformed logs.
pub fn replay_and_verify(program: &Program, recording: &Recording) -> Result<ReplayOutcome> {
    let outcome = replay(program, recording)?;
    outcome.verify_against(recording)?;
    Ok(outcome)
}

/// Replays `recording` of `program` without verification.
///
/// # Errors
///
/// See [`replay_and_verify`].
pub fn replay(program: &Program, recording: &Recording) -> Result<ReplayOutcome> {
    Replayer::new(program, recording)?.run()
}

/// Replays `recording` with the dynamic race detector attached,
/// returning both the (verified) outcome and the race report.
///
/// Because replay is deterministic, the report is stable: the same
/// recording always yields the same races.
///
/// # Errors
///
/// See [`replay_and_verify`].
pub fn replay_with_race_detection(
    program: &Program,
    recording: &Recording,
) -> Result<(ReplayOutcome, RaceReport)> {
    let mut replayer = Replayer::new(program, recording)?;
    replayer.enable_race_detection();
    let (outcome, report) = replayer.run_with_report()?;
    outcome.verify_against(recording)?;
    Ok((outcome, report))
}

#[derive(Debug, Clone)]
struct ReplayThread {
    created: bool,
    exit_code: Option<u32>,
    handler: Option<VirtAddr>,
    signal_saved: Option<CpuContext>,
    nondet: VecDeque<(NondetKind, u32)>,
    /// Reason of the thread's most recently replayed chunk, used to
    /// cross-check syscall records against the replayed register state.
    last_reason: Option<TerminationReason>,
}

/// One replay in progress.
#[derive(Debug)]
pub struct Replayer<'a> {
    recording: &'a Recording,
    machine: Machine,
    threads: Vec<ReplayThread>,
    console: Vec<u8>,
    instructions: u64,
    chunks_replayed: usize,
    inputs_injected: usize,
    timeline_pos: usize,
    timeline: Vec<TimelineEvent>,
    detector: Option<RaceDetector>,
}

/// A resumable snapshot of an in-progress replay.
///
/// Checkpoints bound replay latency: instead of replaying a long
/// recording from the start to inspect a late event, resume from the
/// nearest checkpoint (the paper discusses periodic checkpointing as the
/// way to make replay-based debugging interactive).
///
/// A checkpoint is bound to the (program, recording) pair it came from;
/// [`Replayer::resume`] verifies the binding.
#[derive(Debug, Clone)]
pub struct ReplayCheckpoint {
    machine: Machine,
    threads: Vec<ReplayThread>,
    console: Vec<u8>,
    instructions: u64,
    chunks_replayed: usize,
    inputs_injected: usize,
    timeline_pos: usize,
    program_fingerprint: u64,
}

impl ReplayCheckpoint {
    /// Position in the merged timeline (events already replayed).
    pub fn position(&self) -> usize {
        self.timeline_pos
    }

    /// Instructions replayed up to this checkpoint.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Chunks replayed up to this checkpoint.
    pub fn chunks_replayed(&self) -> usize {
        self.chunks_replayed
    }

    /// Input events injected up to this checkpoint.
    pub fn inputs_injected(&self) -> usize {
        self.inputs_injected
    }

    /// Serializes the snapshot (machine state, per-thread replay state,
    /// console, counters) so it can be persisted in a `checkpoints.qrc`
    /// sidecar. The bytes are a deterministic function of the state.
    pub fn to_bytes(&self) -> Vec<u8> {
        use qr_common::varint::write_u64;
        let mut out = Vec::new();
        let mut machine = Vec::new();
        self.machine.save_state(&mut machine);
        write_u64(&mut out, machine.len() as u64);
        out.extend_from_slice(&machine);
        write_u64(&mut out, self.threads.len() as u64);
        for t in &self.threads {
            out.push(t.created as u8);
            match t.exit_code {
                Some(code) => {
                    out.push(1);
                    out.extend_from_slice(&code.to_le_bytes());
                }
                None => out.push(0),
            }
            match t.handler {
                Some(addr) => {
                    out.push(1);
                    out.extend_from_slice(&addr.0.to_le_bytes());
                }
                None => out.push(0),
            }
            match &t.signal_saved {
                Some(ctx) => {
                    out.push(1);
                    ctx.save_state(&mut out);
                }
                None => out.push(0),
            }
            write_u64(&mut out, t.nondet.len() as u64);
            for &(kind, value) in &t.nondet {
                out.push(match kind {
                    NondetKind::Rdtsc => 0,
                    NondetKind::Rdrand => 1,
                });
                out.extend_from_slice(&value.to_le_bytes());
            }
            match t.last_reason {
                Some(reason) => {
                    out.push(1);
                    out.push(reason.code());
                }
                None => out.push(0),
            }
        }
        write_u64(&mut out, self.console.len() as u64);
        out.extend_from_slice(&self.console);
        write_u64(&mut out, self.instructions);
        write_u64(&mut out, self.chunks_replayed as u64);
        write_u64(&mut out, self.inputs_injected as u64);
        write_u64(&mut out, self.timeline_pos as u64);
        out.extend_from_slice(&self.program_fingerprint.to_le_bytes());
        out
    }

    /// Inverse of [`ReplayCheckpoint::to_bytes`]: rebuilds a snapshot
    /// for the given (program, recording) pair. The machine is
    /// reconstructed from the recording's configuration, then overwritten
    /// with the serialized state, so a resumed replay is bit-for-bit
    /// identical to one resumed from the in-memory checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::Corrupt`] on malformed bytes.
    pub fn from_bytes(program: &Program, recording: &Recording, buf: &[u8]) -> Result<ReplayCheckpoint> {
        let mut r = qr_common::cursor::ByteReader::new(buf, "checkpoint snapshot");
        let machine_len = r.count(buf.len() as u64)?;
        let machine_bytes = r.bytes(machine_len)?;
        let mut machine = Machine::new(program.clone(), replay_cpu_config(recording)?)?;
        let mut mr = qr_common::cursor::ByteReader::new(machine_bytes, "checkpoint machine state");
        machine.restore_state(&mut mr)?;
        mr.finish()?;
        let num_threads = r.count(250)?;
        let mut threads = Vec::with_capacity(num_threads);
        for _ in 0..num_threads {
            let created = r.u8()? != 0;
            let exit_code = match r.u8()? {
                0 => None,
                _ => Some(r.u32()?),
            };
            let handler = match r.u8()? {
                0 => None,
                _ => Some(VirtAddr(r.u32()?)),
            };
            let signal_saved = match r.u8()? {
                0 => None,
                _ => Some(CpuContext::load_state(&mut r)?),
            };
            let nondet_len = r.count(1 << 24)?;
            let mut nondet = VecDeque::with_capacity(nondet_len);
            for _ in 0..nondet_len {
                let kind = match r.u8()? {
                    0 => NondetKind::Rdtsc,
                    1 => NondetKind::Rdrand,
                    code => {
                        return Err(QrError::Corrupt {
                            what: "checkpoint snapshot".into(),
                            offset: r.pos() as u64,
                            detail: format!("unknown nondet kind {code}"),
                        })
                    }
                };
                nondet.push_back((kind, r.u32()?));
            }
            let last_reason = match r.u8()? {
                0 => None,
                _ => {
                    let code = r.u8()?;
                    Some(TerminationReason::from_code(code).ok_or_else(|| QrError::Corrupt {
                        what: "checkpoint snapshot".into(),
                        offset: r.pos() as u64,
                        detail: format!("unknown termination reason {code}"),
                    })?)
                }
            };
            threads.push(ReplayThread {
                created,
                exit_code,
                handler,
                signal_saved,
                nondet,
                last_reason,
            });
        }
        let console_len = r.count(1 << 30)?;
        let console = r.bytes(console_len)?.to_vec();
        let instructions = r.varint()?;
        let chunks_replayed = r.varint()? as usize;
        let inputs_injected = r.varint()? as usize;
        let timeline_pos = r.varint()? as usize;
        let program_fingerprint = r.u64()?;
        r.finish()?;
        Ok(ReplayCheckpoint {
            machine,
            threads,
            console,
            instructions,
            chunks_replayed,
            inputs_injected,
            timeline_pos,
            program_fingerprint,
        })
    }
}

/// The CPU configuration a replay of `recording` runs under: one virtual
/// core per recorded thread, the recorded drain interval and memory
/// hierarchy. Shared by [`Replayer::new`] and checkpoint restoration so
/// a deserialized snapshot resumes on an identically-configured machine.
///
/// # Errors
///
/// Returns [`QrError::Unsupported`] for recordings with more than 250
/// threads.
pub(crate) fn replay_cpu_config(recording: &Recording) -> Result<CpuConfig> {
    let max_tid = recording
        .chunks
        .packets()
        .iter()
        .map(|p| p.tid.0)
        .chain(recording.inputs.events().iter().map(|e| e.tid().0))
        .max()
        .unwrap_or(0);
    let num_threads = max_tid as usize + 1;
    if num_threads > 250 {
        return Err(QrError::Unsupported(format!(
            "replay supports at most 250 threads, recording has {num_threads}"
        )));
    }
    Ok(CpuConfig {
        num_cores: num_threads,
        drain_interval: recording.meta.cpu.drain_interval,
        mem: recording.meta.cpu.mem.clone(),
    })
}

/// Builds the merged, timestamp-ordered timeline of chunks and input
/// events for `recording` — the event sequence every replay (full,
/// checkpointed, or seeked) steps through.
///
/// # Errors
///
/// Returns [`QrError::ReplayDivergence`] for duplicate timestamps, or
/// log-decode errors from the chunk schedule.
pub(crate) fn merged_timeline(recording: &Recording) -> Result<Vec<TimelineEvent>> {
    let schedule = recording.chunks.replay_schedule()?;
    let mut timeline: Vec<(Cycle, TimelineEvent)> = schedule
        .into_iter()
        .map(|p| (p.timestamp, TimelineEvent::Chunk(p)))
        .chain(
            recording
                .inputs
                .events()
                .iter()
                .map(|e| (e.ts(), TimelineEvent::Input(e.clone()))),
        )
        .collect();
    timeline.sort_by_key(|(ts, _)| *ts);
    for window in timeline.windows(2) {
        if window[0].0 == window[1].0 {
            return Err(QrError::ReplayDivergence(format!(
                "duplicate timeline timestamp {}",
                window[0].0
            )));
        }
    }
    Ok(timeline.into_iter().map(|(_, e)| e).collect())
}

impl<'a> Replayer<'a> {
    /// Prepares a replay: builds a machine with one virtual core per
    /// recorded thread (each thread keeps its own store buffer, which is
    /// what makes TSO reproduction exact) and creates the main thread.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::ReplayDivergence`] if the program does not
    /// match the recording, or [`QrError::Unsupported`] for recordings
    /// with more than 250 threads.
    pub fn new(program: &Program, recording: &'a Recording) -> Result<Replayer<'a>> {
        if program.fingerprint() != recording.meta.program_fingerprint {
            return Err(QrError::ReplayDivergence(
                "program image does not match the recording".into(),
            ));
        }
        let cpu = replay_cpu_config(recording)?;
        let num_threads = cpu.num_cores;
        let machine = Machine::new(program.clone(), cpu)?;
        let threads = (0..num_threads)
            .map(|i| ReplayThread {
                created: false,
                exit_code: None,
                handler: None,
                signal_saved: None,
                nondet: recording.inputs.nondet_for(ThreadId(i as u32)).iter().copied().collect(),
                last_reason: None,
            })
            .collect();
        let mut replayer = Replayer {
            recording,
            machine,
            threads,
            console: Vec::new(),
            instructions: 0,
            chunks_replayed: 0,
            inputs_injected: 0,
            timeline_pos: 0,
            timeline: Vec::new(),
            detector: None,
        };
        replayer.timeline = replayer.build_timeline()?;
        replayer.create_thread(ThreadId(0), program.entry(), 0)?;
        Ok(replayer)
    }

    /// Attaches the dynamic race detector for this replay.
    pub fn enable_race_detection(&mut self) {
        self.detector = Some(RaceDetector::new(self.threads.len()));
    }

    fn diverged(&self, msg: impl Into<String>) -> QrError {
        QrError::ReplayDivergence(msg.into())
    }

    /// The stack the kernel gave thread `tid` (allocation is sequential
    /// in tid order, so the address is a pure function of the tid).
    fn stack_range(&self, tid: ThreadId) -> (VirtAddr, VirtAddr) {
        let os = &self.recording.meta.os;
        let stride = os.stack_bytes + os.stack_guard_bytes;
        let top = STACK_TOP - tid.0 * stride;
        (VirtAddr(top - os.stack_bytes), VirtAddr(top))
    }

    fn create_thread(&mut self, tid: ThreadId, entry: VirtAddr, arg: u32) -> Result<()> {
        let slot = self
            .threads
            .get_mut(tid.index())
            .ok_or_else(|| QrError::ReplayDivergence(format!("spawn of unknown thread {tid}")))?;
        if slot.created {
            return Err(QrError::ReplayDivergence(format!("{tid} created twice")));
        }
        slot.created = true;
        let (base, top) = self.stack_range(tid);
        self.machine.mem_mut().map_region(base, top.0 - base.0)?;
        let mut ctx = CpuContext::new(entry);
        ctx.set_reg(Reg::SP, top.0);
        ctx.set_reg(Reg::R1, arg);
        self.machine.core_mut(CoreId(tid.0 as u8)).swap_context(Some(ctx));
        Ok(())
    }

    /// Runs the merged timeline to completion.
    ///
    /// # Errors
    ///
    /// See [`replay_and_verify`].
    pub fn run(self) -> Result<ReplayOutcome> {
        self.run_with_report().map(|(outcome, _)| outcome)
    }

    /// Runs the merged timeline to completion, returning the race report
    /// (empty unless [`Replayer::enable_race_detection`] was called).
    ///
    /// # Errors
    ///
    /// See [`replay_and_verify`].
    pub fn run_with_report(mut self) -> Result<(ReplayOutcome, RaceReport)> {
        crate::obs::run_started("serial");
        while self.step_timeline()? {}
        crate::obs::nodes_executed("serial", self.timeline_pos as u64);
        self.finish()
    }

    // ----- time-travel inspection ------------------------------------

    /// Replays exactly one timeline event (a whole chunk or one input
    /// injection). Returns `false` when the timeline is exhausted.
    ///
    /// Between steps the replayed state can be inspected with
    /// [`Replayer::inspect_memory`], [`Replayer::thread_registers`] and
    /// [`Replayer::console_so_far`] — deterministic time-travel
    /// debugging over a recorded execution.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::ReplayDivergence`] like a full run would.
    pub fn step_timeline(&mut self) -> Result<bool> {
        if self.timeline_pos >= self.timeline.len() {
            return Ok(false);
        }
        let event = self.timeline[self.timeline_pos].clone();
        self.timeline_pos += 1;
        self.process_event(&event)?;
        Ok(true)
    }

    /// Current position in the merged timeline (events replayed so far).
    pub fn position(&self) -> usize {
        self.timeline_pos
    }

    /// Total number of timeline events.
    pub fn timeline_len(&self) -> usize {
        self.timeline.len()
    }

    /// The global timestamp of the next event to replay, if any.
    pub fn next_timestamp(&self) -> Option<Cycle> {
        self.timeline.get(self.timeline_pos).map(|e| match e {
            TimelineEvent::Chunk(p) => p.timestamp,
            TimelineEvent::Input(ev) => ev.ts(),
        })
    }

    /// Reads replayed guest memory at the current position.
    ///
    /// # Errors
    ///
    /// Faults on unmapped ranges, like the guest would.
    pub fn inspect_memory(&self, addr: VirtAddr, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.machine.mem().memory().read_bytes(addr, &mut buf)?;
        Ok(buf)
    }

    /// The registers of a live thread at the current position (`None`
    /// for exited or not-yet-created threads).
    pub fn thread_registers(&self, tid: ThreadId) -> Option<[u32; 16]> {
        let t = self.threads.get(tid.index())?;
        if !t.created || t.exit_code.is_some() {
            return None;
        }
        self.machine.core(CoreId(tid.0 as u8)).context().map(|c| *c.regs())
    }

    /// Console output produced up to the current position.
    pub fn console_so_far(&self) -> &[u8] {
        &self.console
    }

    /// Architectural fingerprint of the replay state at the current
    /// position, computed with the same digest the recorder used but
    /// *without* requiring every thread to have exited — the
    /// partial-progress view salvage replay reports.
    pub fn partial_fingerprint(&self) -> u64 {
        let exit_codes: Vec<Option<u32>> = self.threads.iter().map(|t| t.exit_code).collect();
        qr_os::native::fingerprint_of(&self.machine, &self.console, &exit_codes)
    }

    /// Instructions re-executed up to the current position.
    pub fn instructions_so_far(&self) -> u64 {
        self.instructions
    }

    /// Chunks replayed up to the current position.
    pub fn chunks_replayed_so_far(&self) -> usize {
        self.chunks_replayed
    }

    /// Input events injected up to the current position.
    pub fn inputs_injected_so_far(&self) -> usize {
        self.inputs_injected
    }

    /// Validates terminal state and produces the outcome.
    fn finish(mut self) -> Result<(ReplayOutcome, RaceReport)> {
        // Every created thread must have exited.
        for (i, t) in self.threads.iter().enumerate() {
            if t.created && t.exit_code.is_none() {
                return Err(self.diverged(format!("tid{i} never exited during replay")));
            }
        }
        let exit_codes: Vec<Option<u32>> = self.threads.iter().map(|t| t.exit_code).collect();
        let fingerprint = qr_os::native::fingerprint_of(&self.machine, &self.console, &exit_codes);
        let cycles = (0..self.machine.num_cores())
            .map(|i| self.machine.core(CoreId(i as u8)).cycles())
            .sum();
        let report = self.detector.take().map(RaceDetector::into_report).unwrap_or_default();
        Ok((
            ReplayOutcome {
                console: self.console,
                exit_code: exit_codes.first().copied().flatten().unwrap_or(0),
                fingerprint,
                cycles,
                instructions: self.instructions,
                chunks_replayed: self.chunks_replayed,
                inputs_injected: self.inputs_injected,
            },
            report,
        ))
    }

    /// Builds the merged, timestamp-ordered timeline of chunks and
    /// input events.
    fn build_timeline(&self) -> Result<Vec<TimelineEvent>> {
        merged_timeline(self.recording)
    }

    fn process_event(&mut self, event: &TimelineEvent) -> Result<()> {
        match event {
            TimelineEvent::Chunk(packet) => self.exec_chunk(packet)?,
            TimelineEvent::Input(InputEvent::Syscall { record, .. }) => {
                self.apply_syscall(record)?;
                self.inputs_injected += 1;
            }
            TimelineEvent::Input(InputEvent::Signal { tid, .. }) => {
                self.deliver_signal(*tid)?;
                self.inputs_injected += 1;
            }
        }
        Ok(())
    }

    /// Runs to completion, taking a [`ReplayCheckpoint`] every
    /// `every_events` timeline events.
    ///
    /// # Errors
    ///
    /// Returns [`qr_common::QrError::Unsupported`] when the race detector
    /// is attached (its analysis state is not checkpointable), plus the
    /// usual replay errors.
    pub fn run_with_checkpoints(
        mut self,
        every_events: usize,
    ) -> Result<(ReplayOutcome, Vec<ReplayCheckpoint>)> {
        if self.detector.is_some() {
            return Err(QrError::Unsupported(
                "checkpointing cannot be combined with race detection".into(),
            ));
        }
        if every_events == 0 {
            return Err(QrError::InvalidConfig("checkpoint interval must be nonzero".into()));
        }
        let mut checkpoints = Vec::new();
        while self.timeline_pos < self.timeline.len() {
            if self.timeline_pos > 0 && self.timeline_pos.is_multiple_of(every_events) {
                checkpoints.push(self.checkpoint());
            }
            if !self.step_timeline()? {
                break;
            }
        }
        let (outcome, _) = self.finish()?;
        Ok((outcome, checkpoints))
    }

    /// Snapshots the current replay state.
    fn checkpoint(&self) -> ReplayCheckpoint {
        ReplayCheckpoint {
            machine: self.machine.clone(),
            threads: self.threads.clone(),
            console: self.console.clone(),
            instructions: self.instructions,
            chunks_replayed: self.chunks_replayed,
            inputs_injected: self.inputs_injected,
            timeline_pos: self.timeline_pos,
            program_fingerprint: self.recording.meta.program_fingerprint,
        }
    }

    /// Resumes a replay from a checkpoint taken on the same
    /// (program, recording) pair.
    ///
    /// # Errors
    ///
    /// Returns [`QrError::ReplayDivergence`] if the checkpoint does not
    /// belong to this program/recording.
    pub fn resume(
        program: &Program,
        recording: &'a Recording,
        checkpoint: ReplayCheckpoint,
    ) -> Result<Replayer<'a>> {
        if program.fingerprint() != recording.meta.program_fingerprint
            || checkpoint.program_fingerprint != recording.meta.program_fingerprint
        {
            return Err(QrError::ReplayDivergence(
                "checkpoint does not belong to this program/recording".into(),
            ));
        }
        let mut replayer = Replayer {
            recording,
            machine: checkpoint.machine,
            threads: checkpoint.threads,
            console: checkpoint.console,
            instructions: checkpoint.instructions,
            chunks_replayed: checkpoint.chunks_replayed,
            inputs_injected: checkpoint.inputs_injected,
            timeline_pos: checkpoint.timeline_pos,
            timeline: Vec::new(),
            detector: None,
        };
        replayer.timeline = replayer.build_timeline()?;
        Ok(replayer)
    }

    fn exec_chunk(&mut self, packet: &ChunkPacket) -> Result<()> {
        let tid = packet.tid;
        let core = CoreId(tid.0 as u8);
        if !self.threads[tid.index()].created {
            return Err(self.diverged(format!("chunk for never-created {tid}")));
        }
        if self.threads[tid.index()].exit_code.is_some() {
            return Err(self.diverged(format!("chunk for exited {tid}")));
        }
        for i in 0..packet.icount {
            let last = i + 1 == packet.icount;
            let step = self.machine.step(core);
            if step.instruction_retired() {
                self.instructions += 1;
            }
            if let Some(detector) = &mut self.detector {
                for event in &step.events {
                    match *event {
                        MemEvent::LocalRead { addr, width, atomic, .. } => {
                            detector.on_read(tid, addr, width, atomic);
                        }
                        MemEvent::LocalWrite { addr, width, atomic, .. } => {
                            detector.on_write(tid, addr, width, atomic);
                        }
                        _ => {}
                    }
                }
            }
            match step.outcome {
                StepOutcome::Retired => {}
                StepOutcome::Nondet { kind, rd } => {
                    let (rec_kind, value) = self.threads[tid.index()]
                        .nondet
                        .pop_front()
                        .ok_or_else(|| {
                            QrError::ReplayDivergence(format!("{tid} ran out of nondet values"))
                        })?;
                    if rec_kind != kind {
                        return Err(self.diverged(format!(
                            "{tid} nondet kind mismatch: replayed {kind:?}, recorded {rec_kind:?}"
                        )));
                    }
                    self.machine.write_reg(core, rd, value);
                }
                StepOutcome::Syscall => {
                    if !(last && packet.reason == TerminationReason::Syscall) {
                        return Err(self.diverged(format!(
                            "{tid} trapped into a syscall mid-chunk (instruction {i} of {})",
                            packet.icount
                        )));
                    }
                }
                StepOutcome::Halt => {
                    if !(last && packet.reason == TerminationReason::SphereEnd) {
                        return Err(self.diverged(format!("{tid} halted mid-chunk")));
                    }
                }
                StepOutcome::Fault(err) => {
                    return Err(self.diverged(format!("{tid} faulted during replay: {err}")));
                }
                StepOutcome::Idle => {
                    return Err(self.diverged(format!("{tid} has no context during its chunk")));
                }
            }
        }
        // Boundary drain: same rule the recorder applied.
        let drains = match packet.reason {
            TerminationReason::Syscall
            | TerminationReason::Trap
            | TerminationReason::ContextSwitch
            | TerminationReason::SphereEnd => true,
            TerminationReason::IcOverflow | TerminationReason::SigSaturation => {
                self.recording.meta.tso_mode == TsoMode::DrainAtChunk
            }
            TerminationReason::ConflictRaw
            | TerminationReason::ConflictWar
            | TerminationReason::ConflictWaw => false,
        };
        if drains {
            crate::obs::store_buffer_drain();
            let access = self.machine.drain_store_buffer(core)?;
            if let Some(detector) = &mut self.detector {
                for event in &access.events {
                    if let MemEvent::LocalWrite { addr, width, atomic, .. } = *event {
                        detector.on_write(tid, addr, width, atomic);
                    }
                }
            }
        }
        let pending = self.machine.mem().pending_stores(core).min(u8::MAX as usize) as u8;
        if pending != packet.rsw {
            return Err(self.diverged(format!(
                "{tid} pending-store count {pending} != recorded rsw {}",
                packet.rsw
            )));
        }
        self.threads[tid.index()].last_reason = Some(packet.reason);
        self.chunks_replayed += 1;
        Ok(())
    }

    fn apply_syscall(&mut self, record: &SyscallRecord) -> Result<()> {
        let tid = record.tid;
        let core = CoreId(tid.0 as u8);
        if !self.threads[tid.index()].created {
            return Err(self.diverged(format!("syscall record for never-created {tid}")));
        }
        // Cross-check the record against the replayed register state: the
        // thread stopped right after its syscall instruction, so `R0`
        // still holds the syscall number it actually invoked. A mismatch
        // means the log was reordered or tampered with.
        if self.threads[tid.index()].last_reason == Some(TerminationReason::Syscall) {
            let replayed_number = self.machine.read_reg(core, Reg::R0);
            if replayed_number != record.number {
                return Err(self.diverged(format!(
                    "{tid} invoked syscall {replayed_number} but the log records {}",
                    record.number
                )));
            }
            // An explicit exit's code comes from the replayed R1; the
            // injected result must agree.
            if record.number == abi::SYS_EXIT {
                let replayed_code = self.machine.read_reg(core, Reg::R1);
                if replayed_code != record.result {
                    return Err(self.diverged(format!(
                        "{tid} exited with {replayed_code} but the log records {}",
                        record.result
                    )));
                }
            }
        }
        // Kernel writes into user memory (read payloads) land first, at
        // this timeline position.
        for (addr, data) in &record.writes {
            self.machine.mem_mut().memory_mut().write_bytes(*addr, data)?;
        }
        match record.number {
            abi::SYS_EXIT => {
                if let Some(detector) = &mut self.detector {
                    detector.on_exit(tid);
                }
                self.threads[tid.index()].exit_code = Some(record.result);
                self.machine.core_mut(core).swap_context(None);
                return Ok(());
            }
            abi::SYS_SIGRETURN => {
                let saved = self.threads[tid.index()]
                    .signal_saved
                    .take()
                    .ok_or_else(|| QrError::ReplayDivergence(format!("{tid} sigreturn without a frame")))?;
                self.machine.core_mut(core).swap_context(Some(saved));
                return Ok(());
            }
            _ => {}
        }
        // Structural effects read the caller's argument registers, which
        // replay has reproduced.
        let a1 = self.machine.read_reg(core, Reg::R1);
        let a2 = self.machine.read_reg(core, Reg::R2);
        // Happens-before edges for the race detector.
        if let Some(detector) = &mut self.detector {
            match record.number {
                abi::SYS_SPAWN if record.result != EFAULT => {
                    detector.on_spawn(tid, ThreadId(record.result));
                }
                abi::SYS_JOIN if record.result != EFAULT => {
                    detector.on_join(tid, ThreadId(a1));
                }
                abi::SYS_FUTEX_WAKE => detector.on_futex_wake(tid, VirtAddr(a1)),
                abi::SYS_FUTEX_WAIT => detector.on_futex_wait(tid, VirtAddr(a1)),
                abi::SYS_KILL if record.result != EFAULT => {
                    detector.on_kill(tid, ThreadId(a1));
                }
                abi::SYS_WRITE if record.result != EFAULT => {
                    detector.on_kernel_read(tid, VirtAddr(a1), record.result as usize);
                }
                abi::SYS_READ if record.result != EFAULT => {
                    for (addr, data) in &record.writes {
                        detector.on_kernel_write(tid, *addr, data.len());
                    }
                }
                _ => {}
            }
        }
        match record.number {
            abi::SYS_SPAWN if record.result != EFAULT => {
                self.create_thread(ThreadId(record.result), VirtAddr(a1), a2)?;
            }
            abi::SYS_SBRK if record.result != EFAULT => {
                let grow = a1.div_ceil(64) * 64;
                if grow > 0 {
                    self.machine.mem_mut().map_region(VirtAddr(record.result), grow)?;
                }
            }
            abi::SYS_WRITE if record.result != EFAULT => {
                let mut buf = vec![0u8; record.result as usize];
                self.machine.mem().memory().read_bytes(VirtAddr(a1), &mut buf)?;
                self.console.extend_from_slice(&buf);
            }
            abi::SYS_SIGACTION => {
                self.threads[tid.index()].handler = (a1 != 0).then_some(VirtAddr(a1));
            }
            _ => {}
        }
        self.machine.write_reg(core, Reg::R0, record.result);
        Ok(())
    }

    fn deliver_signal(&mut self, tid: ThreadId) -> Result<()> {
        if let Some(detector) = &mut self.detector {
            detector.on_signal_delivery(tid);
        }
        let core = CoreId(tid.0 as u8);
        let handler = self.threads[tid.index()]
            .handler
            .ok_or_else(|| QrError::ReplayDivergence(format!("signal for {tid} without a handler")))?;
        let current = self
            .machine
            .core_mut(core)
            .swap_context(None)
            .ok_or_else(|| QrError::ReplayDivergence(format!("signal for contextless {tid}")))?;
        let mut frame = current.clone();
        self.threads[tid.index()].signal_saved = Some(current);
        frame.set_pc(handler);
        frame.set_reg(Reg::R1, 1);
        self.machine.core_mut(core).swap_context(Some(frame));
        Ok(())
    }
}

#[derive(Debug, Clone)]
pub(crate) enum TimelineEvent {
    Chunk(ChunkPacket),
    Input(InputEvent),
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_capo::{record, RecordingConfig};
    use qr_isa::Asm;

    fn sys(a: &mut Asm, number: u32, set_args: impl FnOnce(&mut Asm)) {
        a.movi_u(Reg::R0, number);
        set_args(a);
        a.syscall();
    }

    /// Locked-counter program with two threads (same as the capo test).
    fn racy_program() -> Program {
        let mut a = Asm::new();
        a.data_word("counter", &[0]);
        a.align_data_line();
        a.data_word("lock", &[0]);
        sys(&mut a, abi::SYS_SPAWN, |a| {
            a.movi_sym(Reg::R1, "work");
            a.movi(Reg::R2, 0);
        });
        a.mov(Reg::R6, Reg::R0);
        a.call("work_body");
        sys(&mut a, abi::SYS_JOIN, |a| {
            a.mov(Reg::R1, Reg::R6);
        });
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi_sym(Reg::R2, "counter");
            a.ld(Reg::R1, Reg::R2, 0);
        });
        a.label("work");
        a.call("work_body");
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi(Reg::R1, 0);
        });
        a.label("work_body");
        a.movi(Reg::R8, 40);
        a.label("iter");
        a.movi_sym(Reg::R2, "lock");
        a.label("acquire");
        a.movi(Reg::R3, 0);
        a.movi(Reg::R4, 1);
        a.cas(Reg::R3, Reg::R2, Reg::R4);
        a.beqz(Reg::R3, "locked");
        a.pause();
        a.jmp("acquire");
        a.label("locked");
        a.movi_sym(Reg::R5, "counter");
        a.ld(Reg::R7, Reg::R5, 0);
        a.addi(Reg::R7, Reg::R7, 1);
        a.st(Reg::R5, 0, Reg::R7);
        a.movi(Reg::R3, 0);
        a.xchg(Reg::R3, Reg::R2);
        a.addi(Reg::R8, Reg::R8, -1);
        a.bnez(Reg::R8, "iter");
        a.ret();
        a.finish().unwrap()
    }

    #[test]
    fn racy_recording_replays_exactly() {
        let program = racy_program();
        let recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
        let outcome = replay_and_verify(&program, &recording).unwrap();
        assert_eq!(outcome.exit_code, 80);
        assert_eq!(outcome.chunks_replayed, recording.chunks.len());
        assert!(outcome.inputs_injected >= recording.inputs.events().len());
    }

    #[test]
    fn four_core_recording_replays() {
        let program = racy_program();
        let recording = record(program.clone(), RecordingConfig::with_cores(4)).unwrap();
        replay_and_verify(&program, &recording).unwrap();
    }

    #[test]
    fn single_core_preemptive_recording_replays() {
        let program = racy_program();
        let mut cfg = RecordingConfig::with_cores(1);
        cfg.os.quantum_cycles = 2_000; // force many context switches
        let recording = record(program.clone(), cfg).unwrap();
        assert!(
            recording
                .recorder_stats
                .chunks_by_reason[TerminationReason::ContextSwitch.code() as usize]
                > 0,
            "short quantum must produce context-switch chunks"
        );
        replay_and_verify(&program, &recording).unwrap();
    }

    #[test]
    fn read_payloads_and_nondet_replay() {
        let mut a = Asm::new();
        a.data_space("buf", 16);
        sys(&mut a, abi::SYS_READ, |a| {
            a.movi_sym(Reg::R1, "buf");
            a.movi(Reg::R2, 64);
        });
        a.rdtsc(Reg::R4);
        a.rdrand(Reg::R5);
        a.movi_sym(Reg::R3, "buf");
        a.ld(Reg::R6, Reg::R3, 0);
        a.add(Reg::R6, Reg::R6, Reg::R4);
        a.add(Reg::R6, Reg::R6, Reg::R5);
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.mov(Reg::R1, Reg::R6);
        });
        let program = a.finish().unwrap();
        let recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
        let outcome = replay_and_verify(&program, &recording).unwrap();
        assert_eq!(outcome.exit_code, recording.exit_code);
    }

    #[test]
    fn console_output_is_reproduced() {
        let mut a = Asm::new();
        a.data_bytes("msg", b"quickrec replay\n");
        sys(&mut a, abi::SYS_WRITE, |a| {
            a.movi_sym(Reg::R1, "msg");
            a.movi(Reg::R2, 16);
        });
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi(Reg::R1, 0);
        });
        let program = a.finish().unwrap();
        let recording = record(program.clone(), RecordingConfig::with_cores(1)).unwrap();
        let outcome = replay_and_verify(&program, &recording).unwrap();
        assert_eq!(outcome.console, b"quickrec replay\n");
    }

    #[test]
    fn signals_replay_at_the_recorded_point() {
        let mut a = Asm::new();
        a.data_word("hits", &[0]);
        sys(&mut a, abi::SYS_SIGACTION, |a| {
            a.movi_sym(Reg::R1, "handler");
        });
        sys(&mut a, abi::SYS_GETTID, |_| {});
        a.mov(Reg::R7, Reg::R0);
        sys(&mut a, abi::SYS_SPAWN, |a| {
            a.movi_sym(Reg::R1, "killer");
            a.mov(Reg::R2, Reg::R7);
        });
        a.mov(Reg::R6, Reg::R0);
        a.movi_sym(Reg::R3, "hits");
        a.label("wait");
        a.ld(Reg::R4, Reg::R3, 0);
        a.beqz(Reg::R4, "wait");
        sys(&mut a, abi::SYS_JOIN, |a| {
            a.mov(Reg::R1, Reg::R6);
        });
        sys(&mut a, abi::SYS_EXIT, |a| {
            a.movi_sym(Reg::R3, "hits");
            a.ld(Reg::R1, Reg::R3, 0);
        });
        a.label("handler");
        a.movi_sym(Reg::R3, "hits");
        a.ld(Reg::R4, Reg::R3, 0);
        a.addi(Reg::R4, Reg::R4, 1);
        a.st(Reg::R3, 0, Reg::R4);
        a.fence();
        a.movi_u(Reg::R0, abi::SYS_SIGRETURN);
        a.syscall();
        a.label("killer");
        a.movi_u(Reg::R0, abi::SYS_KILL);
        a.syscall();
        a.movi(Reg::R1, 0);
        a.movi_u(Reg::R0, abi::SYS_EXIT);
        a.syscall();
        let program = a.finish().unwrap();
        let recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
        assert_eq!(recording.exit_code, 1);
        replay_and_verify(&program, &recording).unwrap();
    }

    #[test]
    fn rsw_mode_recordings_replay_too() {
        let program = racy_program();
        let mut cfg = RecordingConfig::with_cores(2);
        cfg.cpu.mem.tso_mode = TsoMode::Rsw;
        cfg.cpu.drain_interval = 12; // more reordering pressure
        let recording = record(program.clone(), cfg).unwrap();
        replay_and_verify(&program, &recording).unwrap();
    }

    #[test]
    fn wrong_program_is_rejected() {
        let program = racy_program();
        let recording = record(program, RecordingConfig::with_cores(2)).unwrap();
        let mut other = Asm::new();
        other.halt();
        let other = other.finish().unwrap();
        match replay(&other, &recording) {
            Err(QrError::ReplayDivergence(msg)) => assert!(msg.contains("does not match")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tampered_chunk_log_is_detected() {
        let program = racy_program();
        let mut recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
        // Corrupt one chunk's instruction count.
        let mut packets: Vec<ChunkPacket> = recording.chunks.packets().to_vec();
        let mid = packets.len() / 2;
        packets[mid].icount += 1;
        recording.chunks = packets.into_iter().collect();
        assert!(
            replay_and_verify(&program, &recording).is_err(),
            "a perturbed chunk schedule must not verify"
        );
    }

    #[test]
    fn replay_timing_metrics_are_populated() {
        let program = racy_program();
        let recording = record(program.clone(), RecordingConfig::with_cores(4)).unwrap();
        let outcome = replay(&program, &recording).unwrap();
        assert!(outcome.cycles > 0);
        assert_eq!(outcome.instructions, recording.instructions);
        assert!(outcome.slowdown_vs(&recording) > 0.0);
        // The replay executes serially, so its execution-cycle total must
        // at least cover every recorded instruction.
        assert!(outcome.cycles >= recording.instructions);
    }
}
