//! Dynamic data-race detection on top of deterministic replay.
//!
//! The paper motivates record/replay with debugging concurrency bugs;
//! this module closes the loop: once an execution is recorded, replaying
//! it with [`RaceDetector`] attached finds the *actual* data races that
//! occurred — deterministically, every run.
//!
//! The detector is a FastTrack-style vector-clock analysis at word
//! granularity over the replayed event stream:
//!
//! - **Happens-before edges** come from atomic read-modify-writes
//!   (acquire + release on the word's sync clock — locks built on
//!   `cas`/`xchg`/`fetch_add` synchronize through this), from kernel
//!   operations (`spawn` publishes the parent's clock to the child,
//!   `exit`→`join` and `futex_wake`→`futex_wait` transfer clocks), and
//!   from signal delivery.
//! - **Plain accesses** are checked against the per-word shadow state:
//!   an unordered write-write or read-write pair on overlapping words is
//!   reported as a race.
//!
//! Atomic accesses also participate in conflict checks (an atomic that
//! is unordered with a plain access to the same word is a race, as in
//! C11). Store visibility timing does not matter to the analysis: the
//! happens-before relation is computed from synchronization operations
//! only, so checking writes at their replay-visibility point is
//! equivalent to checking them at issue.

use qr_common::{ThreadId, VirtAddr};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A vector clock over thread ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock {
    ticks: Vec<u32>,
}

impl VectorClock {
    fn of(n: usize) -> VectorClock {
        VectorClock { ticks: vec![0; n] }
    }

    fn get(&self, t: ThreadId) -> u32 {
        self.ticks.get(t.index()).copied().unwrap_or(0)
    }

    fn tick(&mut self, t: ThreadId) {
        self.ticks[t.index()] += 1;
    }

    fn join(&mut self, other: &VectorClock) {
        for (a, &b) in self.ticks.iter_mut().zip(&other.ticks) {
            *a = (*a).max(b);
        }
    }

    /// Whether the epoch `(t, c)` happened before this clock.
    fn covers(&self, t: ThreadId, c: u32) -> bool {
        c <= self.get(t)
    }
}

/// Which kind of access participated in a race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store (at its visibility point).
    Write,
    /// Atomic read-modify-write.
    Atomic,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Atomic => "atomic",
        })
    }
}

/// One detected race (deduplicated per word).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Word-aligned address the conflicting accesses overlapped on.
    pub addr: VirtAddr,
    /// The earlier access (thread, kind).
    pub first: (ThreadId, AccessKind),
    /// The later, unordered access (thread, kind).
    pub second: (ThreadId, AccessKind),
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race on {}: {} by {} unordered with {} by {}",
            self.addr, self.first.1, self.first.0, self.second.1, self.second.0
        )
    }
}

/// The detector's report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RaceReport {
    races: Vec<Race>,
}

impl RaceReport {
    /// Detected races, one per racy word, in detection order.
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// Whether the execution was race-free.
    pub fn is_empty(&self) -> bool {
        self.races.is_empty()
    }

    /// Number of racy words.
    pub fn len(&self) -> usize {
        self.races.len()
    }
}

#[derive(Debug, Clone, Default)]
struct Shadow {
    /// Last write epoch (thread, clock) and kind.
    last_write: Option<(ThreadId, u32, AccessKind)>,
    /// Last read clock per thread.
    reads: BTreeMap<ThreadId, (u32, AccessKind)>,
}

/// FastTrack-style vector-clock race detector.
#[derive(Debug)]
pub struct RaceDetector {
    clocks: Vec<VectorClock>,
    /// Release clocks of sync objects, keyed by word address.
    sync: HashMap<u32, VectorClock>,
    /// Exit clocks, joined by `join`.
    exits: Vec<Option<VectorClock>>,
    /// Signal-delivery clocks per target thread.
    signal_sync: Vec<VectorClock>,
    shadow: HashMap<u32, Shadow>,
    /// Racy words already reported (dedup).
    reported: HashMap<u32, ()>,
    races: Vec<Race>,
    num_threads: usize,
}

impl RaceDetector {
    /// Creates a detector for `num_threads` threads.
    pub fn new(num_threads: usize) -> RaceDetector {
        RaceDetector {
            // Each thread's own component starts at 1 so that a thread's
            // very first access has a nonzero epoch (epoch 0 would be
            // vacuously covered by every clock).
            clocks: (0..num_threads)
                .map(|i| {
                    let mut vc = VectorClock::of(num_threads);
                    vc.tick(ThreadId(i as u32));
                    vc
                })
                .collect(),
            sync: HashMap::new(),
            exits: vec![None; num_threads],
            signal_sync: (0..num_threads).map(|_| VectorClock::of(num_threads)).collect(),
            shadow: HashMap::new(),
            reported: HashMap::new(),
            races: Vec::new(),
            num_threads,
        }
    }

    fn words(addr: VirtAddr, width: u8) -> impl Iterator<Item = u32> {
        let first = addr.0 & !3;
        let last = (addr.0 + width.max(1) as u32 - 1) & !3;
        (first..=last).step_by(4)
    }

    fn report(&mut self, word: u32, first: (ThreadId, AccessKind), second: (ThreadId, AccessKind)) {
        if self.reported.insert(word, ()).is_none() {
            self.races.push(Race { addr: VirtAddr(word), first, second });
        }
    }

    /// Processes a read by `t` (plain or the read half of an atomic).
    pub fn on_read(&mut self, t: ThreadId, addr: VirtAddr, width: u8, atomic: bool) {
        if atomic {
            // Acquire before the access so lock handoffs order the data.
            self.acquire(t, addr);
        }
        let kind = if atomic { AccessKind::Atomic } else { AccessKind::Read };
        for word in Self::words(addr, width) {
            let clock = &self.clocks[t.index()];
            let mut conflict = None;
            let shadow = self.shadow.entry(word).or_default();
            if let Some((wt, wc, wk)) = shadow.last_write {
                if wt != t && !clock.covers(wt, wc) && !(atomic && wk == AccessKind::Atomic) {
                    conflict = Some(((wt, wk), (t, kind)));
                }
            }
            shadow.reads.insert(t, (self.clocks[t.index()].get(t), kind));
            if let Some((first, second)) = conflict {
                self.report(word, first, second);
            }
        }
        self.clocks[t.index()].tick(t);
    }

    /// Processes a write by `t` (plain drain or the write half of an
    /// atomic).
    pub fn on_write(&mut self, t: ThreadId, addr: VirtAddr, width: u8, atomic: bool) {
        let kind = if atomic { AccessKind::Atomic } else { AccessKind::Write };
        for word in Self::words(addr, width) {
            let clock = self.clocks[t.index()].clone();
            let epoch = clock.get(t);
            let shadow = self.shadow.entry(word).or_default();
            let mut conflicts = Vec::new();
            if let Some((wt, wc, wk)) = shadow.last_write {
                if wt != t && !clock.covers(wt, wc) && !(atomic && wk == AccessKind::Atomic) {
                    conflicts.push(((wt, wk), (t, kind)));
                }
            }
            for (&rt, &(rc, rk)) in &shadow.reads {
                if rt != t && !clock.covers(rt, rc) && !(atomic && rk == AccessKind::Atomic) {
                    conflicts.push(((rt, rk), (t, kind)));
                }
            }
            shadow.last_write = Some((t, epoch, kind));
            shadow.reads.clear();
            for (first, second) in conflicts {
                self.report(word, first, second);
            }
        }
        if atomic {
            // Release after the access: publish everything up to and
            // including this write.
            self.clocks[t.index()].tick(t);
            self.release(t, addr);
        } else {
            self.clocks[t.index()].tick(t);
        }
    }

    fn acquire(&mut self, t: ThreadId, addr: VirtAddr) {
        if let Some(clock) = self.sync.get(&(addr.0 & !3)) {
            let clock = clock.clone();
            self.clocks[t.index()].join(&clock);
        }
    }

    fn release(&mut self, t: ThreadId, addr: VirtAddr) {
        let entry = self
            .sync
            .entry(addr.0 & !3)
            .or_insert_with(|| VectorClock::of(self.num_threads));
        entry.join(&self.clocks[t.index()]);
    }

    /// Spawn edge: the child starts with everything the parent did.
    pub fn on_spawn(&mut self, parent: ThreadId, child: ThreadId) {
        let parent_clock = self.clocks[parent.index()].clone();
        self.clocks[child.index()].join(&parent_clock);
        self.clocks[parent.index()].tick(parent);
    }

    /// Exit edge: capture the thread's final clock for joiners.
    pub fn on_exit(&mut self, t: ThreadId) {
        self.exits[t.index()] = Some(self.clocks[t.index()].clone());
    }

    /// Join edge: the joiner observes everything the target did.
    pub fn on_join(&mut self, joiner: ThreadId, target: ThreadId) {
        if let Some(exit) = self.exits.get(target.index()).and_then(Clone::clone) {
            self.clocks[joiner.index()].join(&exit);
        }
    }

    /// Futex-wake edge: release the waker's clock to the futex word.
    pub fn on_futex_wake(&mut self, waker: ThreadId, addr: VirtAddr) {
        self.release(waker, addr);
        self.clocks[waker.index()].tick(waker);
    }

    /// Futex-wait-return edge: acquire from the futex word.
    pub fn on_futex_wait(&mut self, waiter: ThreadId, addr: VirtAddr) {
        self.acquire(waiter, addr);
    }

    /// Kill edge: publish the sender's clock toward the target's signal
    /// channel.
    pub fn on_kill(&mut self, sender: ThreadId, target: ThreadId) {
        let clock = self.clocks[sender.index()].clone();
        self.signal_sync[target.index()].join(&clock);
        self.clocks[sender.index()].tick(sender);
    }

    /// Signal-delivery edge: the handler observes the sender.
    pub fn on_signal_delivery(&mut self, target: ThreadId) {
        let clock = self.signal_sync[target.index()].clone();
        self.clocks[target.index()].join(&clock);
    }

    /// Kernel write into user memory (read-syscall payloads): a plain
    /// write by the calling thread.
    pub fn on_kernel_write(&mut self, t: ThreadId, addr: VirtAddr, len: usize) {
        let mut remaining = len;
        let mut at = addr;
        while remaining > 0 {
            let chunk = remaining.min(255);
            self.on_write(t, at, chunk as u8, false);
            at = at.wrapping_add(chunk as u32);
            remaining -= chunk;
        }
    }

    /// Kernel read of user memory (write-syscall payloads): a plain read
    /// by the calling thread.
    pub fn on_kernel_read(&mut self, t: ThreadId, addr: VirtAddr, len: usize) {
        let mut remaining = len;
        let mut at = addr;
        while remaining > 0 {
            let chunk = remaining.min(255);
            self.on_read(t, at, chunk as u8, false);
            at = at.wrapping_add(chunk as u32);
            remaining -= chunk;
        }
    }

    /// Finishes the analysis.
    pub fn into_report(self) -> RaceReport {
        RaceReport { races: self.races }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const A: VirtAddr = VirtAddr(0x1000);
    const LOCK: VirtAddr = VirtAddr(0x2000);

    #[test]
    fn unordered_write_write_is_a_race() {
        let mut d = RaceDetector::new(2);
        d.on_write(T0, A, 4, false);
        d.on_write(T1, A, 4, false);
        let report = d.into_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report.races()[0].addr, A);
    }

    #[test]
    fn unordered_read_write_is_a_race() {
        let mut d = RaceDetector::new(2);
        d.on_read(T0, A, 4, false);
        d.on_write(T1, A, 4, false);
        assert_eq!(d.into_report().len(), 1);
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut d = RaceDetector::new(2);
        d.on_read(T0, A, 4, false);
        d.on_read(T1, A, 4, false);
        assert!(d.into_report().is_empty());
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut d = RaceDetector::new(2);
        // T0: acquire(lock); write A; release(lock)
        d.on_read(T0, LOCK, 4, true); // cas read half
        d.on_write(T0, LOCK, 4, true); // cas write half (release)
        d.on_write(T0, A, 4, false);
        d.on_read(T0, LOCK, 4, true);
        d.on_write(T0, LOCK, 4, true); // unlock xchg
        // T1: acquire(lock); write A
        d.on_read(T1, LOCK, 4, true);
        d.on_write(T1, LOCK, 4, true);
        d.on_write(T1, A, 4, false);
        assert!(d.into_report().is_empty(), "mutex must order the data");
    }

    #[test]
    fn release_must_precede_acquire_to_order() {
        let mut d = RaceDetector::new(2);
        // T1 acquires the lock BEFORE T0 ever released anything useful.
        d.on_read(T1, LOCK, 4, true);
        d.on_write(T1, LOCK, 4, true);
        d.on_write(T1, A, 4, false);
        // T0 writes A with no synchronization at all.
        d.on_write(T0, A, 4, false);
        assert_eq!(d.into_report().len(), 1);
    }

    #[test]
    fn spawn_and_join_edges_order_accesses() {
        let mut d = RaceDetector::new(2);
        d.on_write(T0, A, 4, false); // parent writes before spawn
        d.on_spawn(T0, T1);
        d.on_read(T1, A, 4, false); // child reads: ordered
        d.on_write(T1, A, 4, false);
        d.on_exit(T1);
        d.on_join(T0, T1);
        d.on_read(T0, A, 4, false); // parent reads after join: ordered
        assert!(d.into_report().is_empty());
    }

    #[test]
    fn futex_wake_wait_edge_orders() {
        let mut d = RaceDetector::new(2);
        let futex = VirtAddr(0x3000);
        d.on_write(T0, A, 4, false);
        d.on_futex_wake(T0, futex);
        d.on_futex_wait(T1, futex);
        d.on_read(T1, A, 4, false);
        assert!(d.into_report().is_empty());
    }

    #[test]
    fn partial_word_overlap_is_detected() {
        let mut d = RaceDetector::new(2);
        d.on_write(T0, VirtAddr(0x1000), 1, false); // byte 0x1000
        d.on_write(T1, VirtAddr(0x1002), 1, false); // byte 0x1002: same word
        assert_eq!(d.into_report().len(), 1, "word-granular conflict");
    }

    #[test]
    fn distinct_words_do_not_conflict() {
        let mut d = RaceDetector::new(2);
        d.on_write(T0, VirtAddr(0x1000), 4, false);
        d.on_write(T1, VirtAddr(0x1004), 4, false);
        assert!(d.into_report().is_empty());
    }

    #[test]
    fn races_are_deduplicated_per_word() {
        let mut d = RaceDetector::new(2);
        for _ in 0..5 {
            d.on_write(T0, A, 4, false);
            d.on_write(T1, A, 4, false);
        }
        assert_eq!(d.into_report().len(), 1);
    }

    #[test]
    fn atomic_vs_plain_unordered_is_a_race() {
        let mut d = RaceDetector::new(2);
        d.on_write(T0, A, 4, false);
        d.on_read(T1, A, 4, true); // atomic RMW on the same word, unordered
        d.on_write(T1, A, 4, true);
        assert_eq!(d.into_report().len(), 1);
    }

    #[test]
    fn signal_edges_order_handler_accesses() {
        let mut d = RaceDetector::new(2);
        d.on_write(T0, A, 4, false);
        d.on_kill(T0, T1);
        d.on_signal_delivery(T1);
        d.on_read(T1, A, 4, false);
        assert!(d.into_report().is_empty());
    }
}
