#![warn(missing_docs)]

//! Deterministic replay of QuickRec recordings.
//!
//! The replayer consumes a [`qr_capo::Recording`] and re-executes the
//! program so that every load observes the same value it did during
//! recording:
//!
//! - **Chunk ordering.** Chunk packets and timestamped input events are
//!   merged into one timeline by their global timestamps. Chunks execute
//!   to completion (exactly `icount` instructions) in that order; every
//!   cross-thread dependency forced its source chunk to terminate — and
//!   be stamped — before the dependent access committed, so timestamp
//!   order is a legal serialization.
//! - **TSO reproduction.** Each thread replays with its own store
//!   buffer. Drain points are re-derived deterministically: background
//!   drains key on the thread's own retired-instruction counter,
//!   instruction-triggered drains (fences, atomics, overlaps) recur
//!   naturally, and boundary drains follow each chunk's termination
//!   reason exactly as during recording. The packet's RSW field is
//!   checked after every chunk — a pending-store-count mismatch is a
//!   divergence.
//! - **Input injection.** Syscalls are *not* re-executed: results are
//!   injected into `R0`, kernel writes (`read` payloads) are applied to
//!   user memory at the recorded timeline position, and structural
//!   syscalls (`spawn`, `exit`, `sbrk`, signal management) are
//!   re-applied from the replayed thread's own registers. `rdtsc` and
//!   `rdrand` values come from per-thread FIFO queues.
//!
//! [`replay`] returns a [`ReplayOutcome`]; [`replay_and_verify`] also
//! checks the fingerprint, console and exit code against the recording.

mod obs;
pub mod order;
pub mod outcome;
pub mod parallel;
pub mod races;
pub mod replayer;
pub mod salvage;
pub mod timetravel;

pub use order::{replay_ordered, replay_ordered_and_verify};
pub use outcome::ReplayOutcome;
pub use parallel::{replay_parallel, replay_parallel_and_verify, ParallelReplayer};
pub use races::{Race, RaceDetector, RaceReport};
pub use replayer::{replay, replay_and_verify, replay_with_race_detection, ReplayCheckpoint, Replayer};
pub use salvage::{salvage_replay, salvage_replay_dir, SalvageReport};
pub use timetravel::{
    timeline_descriptors, CheckpointIndex, CheckpointKey, EventDescriptor, EventKind, QueryEngine,
    QueryPlan, QueryResult, ReplayQuery, CHECKPOINT_INDEX_VERSION,
};
