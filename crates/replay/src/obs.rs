//! Replay metrics (`qr-obs` hooks): serial vs parallel scheduler
//! traffic, DAG stalls, ready-queue occupancy, and store-buffer
//! activity. Observational only — replay outcomes and fingerprints
//! never read these back (see the determinism rule in `qr-obs`).

use std::sync::{Arc, OnceLock};

use qr_obs::{Counter, Histogram};

fn mode_counter(
    cell: &'static OnceLock<[Arc<Counter>; 2]>,
    name: &'static str,
    help: &'static str,
    mode: &'static str,
) -> &'static Arc<Counter> {
    let pair = cell.get_or_init(|| {
        ["serial", "parallel"]
            .map(|m| qr_obs::global().counter(name, help, &[("mode", m)]))
    });
    &pair[usize::from(mode == "parallel")]
}

/// Accounts the start of one replay run.
pub(crate) fn run_started(mode: &'static str) {
    static HANDLES: OnceLock<[Arc<Counter>; 2]> = OnceLock::new();
    if qr_obs::enabled() {
        mode_counter(&HANDLES, "qr_replay_runs_total", "Replay runs, by scheduler mode", mode)
            .inc();
    }
}

/// Accounts the timeline events a finished run executed.
pub(crate) fn nodes_executed(mode: &'static str, n: u64) {
    static HANDLES: OnceLock<[Arc<Counter>; 2]> = OnceLock::new();
    if qr_obs::enabled() {
        mode_counter(
            &HANDLES,
            "qr_replay_nodes_total",
            "Timeline events executed, by scheduler mode",
            mode,
        )
        .add(n);
    }
}

/// Accounts one parallel worker blocking on an empty ready queue.
pub(crate) fn dag_stall() {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    if qr_obs::enabled() {
        HANDLE
            .get_or_init(|| {
                qr_obs::global().counter(
                    "qr_replay_dag_stalls_total",
                    "Parallel workers that blocked waiting for a ready DAG node",
                    &[],
                )
            })
            .inc();
    }
}

/// Observes the ready-queue depth at a dispatch — the scheduler's
/// occupancy signal (deep queue = workers starved for slots, depth 0
/// after pop = the DAG's critical path is binding).
pub(crate) fn queue_depth(depth: usize) {
    static HANDLE: OnceLock<Arc<Histogram>> = OnceLock::new();
    if qr_obs::enabled() {
        HANDLE
            .get_or_init(|| {
                qr_obs::global().histogram(
                    "qr_replay_ready_queue_depth",
                    "Ready-queue depth observed at each parallel dispatch",
                    &[],
                    &[1, 2, 4, 8, 16, 32, 64, 128, 256],
                )
            })
            .observe(depth as u64);
    }
}

fn line_counter(
    cell: &'static OnceLock<Arc<Counter>>,
    direction: &'static str,
) -> &'static Arc<Counter> {
    cell.get_or_init(|| {
        qr_obs::global().counter(
            "qr_replay_lines_total",
            "Cache lines copied between lanes and canonical memory",
            &[("direction", direction)],
        )
    })
}

/// Accounts lines pulled canonical → lane before a node executes.
pub(crate) fn lines_pulled(n: usize) {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    if qr_obs::enabled() && n > 0 {
        line_counter(&HANDLE, "pulled").add(n as u64);
    }
}

/// Accounts lines pushed lane → canonical after a node executes.
pub(crate) fn lines_pushed(n: usize) {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    if qr_obs::enabled() && n > 0 {
        line_counter(&HANDLE, "pushed").add(n as u64);
    }
}

/// Accounts one corrupt (or mismatched) persisted checkpoint index that
/// was silently degraded to from-scratch replay. The degradation is
/// invisible in results — this counter is the only way to see it.
pub(crate) fn index_corrupt() {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    if qr_obs::enabled() {
        HANDLE
            .get_or_init(|| {
                qr_obs::global().counter(
                    "qr_replay_index_corrupt_total",
                    "Persisted checkpoint indexes rejected and degraded to from-scratch replay",
                    &[],
                )
            })
            .inc();
    }
}

/// Accounts one seek, labeled by whether a persisted checkpoint cut the
/// re-execution distance or the replay started from scratch.
pub(crate) fn seek(used_index: bool) {
    static HANDLES: OnceLock<[Arc<Counter>; 2]> = OnceLock::new();
    if qr_obs::enabled() {
        let pair = HANDLES.get_or_init(|| {
            ["scratch", "index"].map(|source| {
                qr_obs::global().counter(
                    "qr_replay_seeks_total",
                    "Time-travel seeks, by whether a checkpoint index was used",
                    &[("source", source)],
                )
            })
        });
        pair[usize::from(used_index)].inc();
    }
}

/// Observes one order-log DAG reconstruction (microsecond resolution,
/// like the other latency histograms).
pub(crate) fn order_reconstructed(started: std::time::Instant) {
    static HANDLE: OnceLock<Arc<Histogram>> = OnceLock::new();
    if qr_obs::enabled() {
        HANDLE
            .get_or_init(|| {
                qr_obs::global().histogram(
                    "qr_replay_order_reconstruct_seconds",
                    "Microseconds spent rebuilding the replay DAG from a recorded order log",
                    &[],
                    qr_obs::LATENCY_US,
                )
            })
            .observe_since(started);
    }
}

/// Accounts one TSO store-buffer boundary drain.
pub(crate) fn store_buffer_drain() {
    static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
    if qr_obs::enabled() {
        HANDLE
            .get_or_init(|| {
                qr_obs::global().counter(
                    "qr_replay_store_buffer_drains_total",
                    "Chunk-boundary store-buffer drains during replay",
                    &[],
                )
            })
            .inc();
    }
}
