//! Salvage replay: extract a correct execution prefix from a torn or
//! corrupted recording.
//!
//! An always-on recorder's logs matter most when the recorded process
//! crashed — exactly when they are likeliest to be torn mid-drain. The
//! all-or-nothing [`crate::replay_and_verify`] path refuses such logs;
//! salvage replay instead replays the longest complete, checksum-valid
//! prefix the framed containers preserve and reports precisely what was
//! recovered and what was lost:
//!
//! 1. [`qr_capo::Recording::load_salvaged`] trims each log to its valid
//!    record prefix (the [`qr_capo::RecoveryInfo`] carries the fault
//!    kind and byte offset per file).
//! 2. The merged timeline of salvaged chunks and inputs is replayed
//!    event by event until it ends — or until the prefix itself stops
//!    making sense (a chunk whose matching syscall record was lost, a
//!    thread spawn that was dropped), which is reported, not fatal.
//! 3. The whole prefix replay is run **twice** and the partial
//!    architectural fingerprints compared: replay is deterministic, so
//!    any disagreement means the salvaged prefix is internally
//!    inconsistent and cannot be trusted.

use crate::replayer::Replayer;
use qr_capo::{Recording, RecoveryInfo};
use qr_common::QrError;
use qr_isa::Program;

/// What salvage replay recovered from a damaged recording.
#[derive(Debug, Clone)]
pub struct SalvageReport {
    /// Chunk packets replayed from the salvaged prefix.
    pub chunks_replayed: usize,
    /// Input events injected from the salvaged prefix.
    pub inputs_injected: usize,
    /// Timeline events replayed (chunks + inputs).
    pub events_replayed: usize,
    /// Total events in the salvaged timeline.
    pub timeline_len: usize,
    /// Chunk-log bytes lost to the tear/corruption.
    pub chunk_bytes_dropped: usize,
    /// Input-log bytes lost to the tear/corruption.
    pub input_bytes_dropped: usize,
    /// Chunk-log fault (kind + byte offset), if any.
    pub chunk_corruption: Option<QrError>,
    /// Input-log fault (kind + byte offset), if any.
    pub input_corruption: Option<QrError>,
    /// What stopped the prefix replay early, if anything. `None` means
    /// every salvaged event replayed.
    pub replay_stopped: Option<QrError>,
    /// Partial architectural fingerprint at the stopping point, if the
    /// replay could start at all.
    pub fingerprint: Option<u64>,
    /// Whether two independent replays of the prefix produced the same
    /// fingerprint (internal consistency of the salvaged data).
    pub fingerprint_consistent: bool,
    /// Console output reproduced up to the stopping point.
    pub console: Vec<u8>,
    /// Instructions re-executed up to the stopping point.
    pub instructions: u64,
}

impl SalvageReport {
    /// Whether the recording was actually intact end to end: no log
    /// corruption, every event replayed, fingerprints agree.
    pub fn is_complete(&self) -> bool {
        self.chunk_corruption.is_none()
            && self.input_corruption.is_none()
            && self.replay_stopped.is_none()
            && self.events_replayed == self.timeline_len
            && self.fingerprint_consistent
    }

    /// Whether the salvaged prefix itself replayed cleanly (the logs may
    /// still have lost a tail).
    pub fn prefix_ok(&self) -> bool {
        self.replay_stopped.is_none() && self.fingerprint_consistent
    }

    /// Multi-line human-readable summary for reports.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "replayed {}/{} timeline events ({} chunks, {} inputs, {} instructions)\n",
            self.events_replayed,
            self.timeline_len,
            self.chunks_replayed,
            self.inputs_injected,
            self.instructions
        ));
        match &self.chunk_corruption {
            Some(e) => out.push_str(&format!(
                "chunk log: {e} ({} bytes dropped)\n",
                self.chunk_bytes_dropped
            )),
            None => out.push_str("chunk log: intact\n"),
        }
        match &self.input_corruption {
            Some(e) => out.push_str(&format!(
                "input log: {e} ({} bytes dropped)\n",
                self.input_bytes_dropped
            )),
            None => out.push_str("input log: intact\n"),
        }
        match &self.replay_stopped {
            Some(e) => out.push_str(&format!("prefix replay stopped: {e}\n")),
            None => out.push_str("prefix replay: ran to the end of the salvaged timeline\n"),
        }
        match self.fingerprint {
            Some(fp) if self.fingerprint_consistent => {
                out.push_str(&format!("prefix fingerprint: {fp:016x} (consistent)\n"))
            }
            Some(fp) => out.push_str(&format!("prefix fingerprint: {fp:016x} (INCONSISTENT)\n")),
            None => out.push_str("prefix fingerprint: unavailable (replay could not start)\n"),
        }
        out
    }
}

/// One deterministic replay of the salvaged prefix.
struct PrefixRun {
    events: usize,
    timeline_len: usize,
    chunks: usize,
    inputs: usize,
    instructions: u64,
    console: Vec<u8>,
    fingerprint: Option<u64>,
    stopped: Option<QrError>,
}

fn replay_prefix(program: &Program, recording: &Recording) -> PrefixRun {
    let mut replayer = match Replayer::new(program, recording) {
        Ok(r) => r,
        Err(e) => {
            return PrefixRun {
                events: 0,
                timeline_len: 0,
                chunks: 0,
                inputs: 0,
                instructions: 0,
                console: Vec::new(),
                fingerprint: None,
                stopped: Some(e),
            }
        }
    };
    let mut stopped = None;
    loop {
        match replayer.step_timeline() {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                stopped = Some(e);
                break;
            }
        }
    }
    PrefixRun {
        events: replayer.position(),
        timeline_len: replayer.timeline_len(),
        chunks: replayer.chunks_replayed_so_far(),
        inputs: replayer.inputs_injected_so_far(),
        instructions: replayer.instructions_so_far(),
        console: replayer.console_so_far().to_vec(),
        fingerprint: Some(replayer.partial_fingerprint()),
        stopped,
    }
}

/// Replays the salvaged prefix of a damaged recording (as produced by
/// [`Recording::load_salvaged`]) and reports what was recovered.
///
/// Never fails: a recording so damaged that no event replays still
/// yields a report saying so. The prefix is replayed twice to confirm
/// its internal consistency.
pub fn salvage_replay(
    program: &Program,
    recording: &Recording,
    recovery: &RecoveryInfo,
) -> SalvageReport {
    let first = replay_prefix(program, recording);
    let second = replay_prefix(program, recording);
    let fingerprint_consistent = first.fingerprint.is_some()
        && first.fingerprint == second.fingerprint
        && first.events == second.events;
    SalvageReport {
        chunks_replayed: first.chunks,
        inputs_injected: first.inputs,
        events_replayed: first.events,
        timeline_len: first.timeline_len,
        chunk_bytes_dropped: recovery.chunks.bytes_dropped,
        input_bytes_dropped: recovery.inputs.bytes_dropped,
        chunk_corruption: recovery.chunks.corruption.clone(),
        input_corruption: recovery.inputs.corruption.clone(),
        replay_stopped: first.stopped,
        fingerprint: first.fingerprint,
        fingerprint_consistent,
        console: first.console,
        instructions: first.instructions,
    }
}

/// Convenience wrapper: [`Recording::load_salvaged`] + [`salvage_replay`]
/// on a saved recording directory.
///
/// # Errors
///
/// Fails only when the metadata file is unreadable — without it the
/// recording cannot anchor a replay at all.
pub fn salvage_replay_dir(
    program: &Program,
    dir: &std::path::Path,
) -> qr_common::Result<SalvageReport> {
    let (recording, recovery) = Recording::load_salvaged(dir)?;
    Ok(salvage_replay(program, &recording, &recovery))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_capo::{record, RecordingConfig};
    use quickrec_core::Encoding;

    fn recorded() -> (Program, Recording) {
        let mut a = qr_isa::Asm::new();
        a.data_bytes("msg", b"salvage-me\n");
        a.movi_u(qr_isa::Reg::R0, qr_isa::abi::SYS_WRITE);
        a.movi_sym(qr_isa::Reg::R1, "msg");
        a.movi(qr_isa::Reg::R2, 11);
        a.syscall();
        a.movi_u(qr_isa::Reg::R0, qr_isa::abi::SYS_EXIT);
        a.movi(qr_isa::Reg::R1, 7);
        a.syscall();
        let program = a.finish().unwrap();
        let recording = record(program.clone(), RecordingConfig::with_cores(2)).unwrap();
        (program, recording)
    }

    fn saved(recording: &Recording, tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("quickrec-salvage-{tag}-{}", std::process::id()));
        recording.save(&dir, Encoding::Delta).unwrap();
        dir
    }

    #[test]
    fn intact_recording_salvages_completely() {
        let (program, recording) = recorded();
        let dir = saved(&recording, "intact");
        let report = salvage_replay_dir(&program, &dir).unwrap();
        assert!(report.is_complete(), "{}", report.summary());
        assert_eq!(report.chunks_replayed, recording.chunks.len());
        assert_eq!(report.console, recording.console);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_chunk_log_salvages_a_prefix() {
        let (program, recording) = recorded();
        let dir = saved(&recording, "torn");
        let path = dir.join(Recording::CHUNKS_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let report = salvage_replay_dir(&program, &dir).unwrap();
        assert!(!report.is_complete());
        assert!(report.chunk_corruption.is_some());
        assert!(report.chunk_bytes_dropped > 0);
        assert!(report.chunks_replayed <= recording.chunks.len());
        // Whatever replayed must be a prefix of the clean run's console.
        assert!(recording.console.starts_with(&report.console));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flipped_input_log_is_reported_not_fatal() {
        let (program, recording) = recorded();
        let dir = saved(&recording, "flip");
        let path = dir.join(Recording::INPUTS_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let report = salvage_replay_dir(&program, &dir).unwrap();
        assert!(!report.is_complete());
        assert!(report.input_corruption.is_some());
        assert!(recording.console.starts_with(&report.console));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_meta_is_the_only_fatal_case() {
        let (program, recording) = recorded();
        let dir = saved(&recording, "meta");
        std::fs::remove_file(dir.join(Recording::META_FILE)).unwrap();
        let err = salvage_replay_dir(&program, &dir).unwrap_err();
        assert!(err.to_string().contains(Recording::META_FILE), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
